//! The multi-version key-value store.
//!
//! [`KvStore`] models the non-relational stores (Redis, document stores)
//! that the paper's §5 wants to bring under TROD's principles. It keeps a
//! full version chain per key — value plus the commit timestamp that
//! installed it, with deletions as tombstones — which is what gives the
//! unified transaction surface snapshot reads and what gives TROD
//! time-travel over key-value data.
//!
//! Each namespace carries its own **commit lock** (an `Arc<Mutex<()>>`
//! handed to the commit coordinator as the `kv:<namespace>` resource; see
//! [`trod_db::CommitParticipant`]) and its own last-applied timestamp.
//! Commit timestamps are therefore monotone *per namespace* — the same
//! per-resource invariant the relational tables keep — and commits over
//! disjoint namespaces install concurrently without any store-wide lock.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use trod_db::{CheckpointContributor, CheckpointNamespace, Ts};

pub use trod_db::{KvError, KvResult};

/// One buffered write destined for a namespace; `value: None` is a delete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvWrite {
    pub namespace: String,
    pub key: String,
    pub value: Option<String>,
}

impl KvWrite {
    /// A put.
    pub fn put(namespace: &str, key: &str, value: &str) -> Self {
        KvWrite {
            namespace: namespace.to_string(),
            key: key.to_string(),
            value: Some(value.to_string()),
        }
    }

    /// A delete (tombstone).
    pub fn delete(namespace: &str, key: &str) -> Self {
        KvWrite {
            namespace: namespace.to_string(),
            key: key.to_string(),
            value: None,
        }
    }
}

/// Size statistics for one namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NamespaceStats {
    /// Keys with a live (non-tombstone) latest version.
    pub live_keys: usize,
    /// Total stored versions including tombstones.
    pub versions: usize,
}

#[derive(Debug, Clone)]
struct KvVersion {
    ts: Ts,
    value: Option<String>,
}

/// One namespace: key version chains plus the per-namespace commit state.
#[derive(Debug, Default)]
struct Namespace {
    /// key → version chain ordered by ascending timestamp.
    keys: BTreeMap<String, Vec<KvVersion>>,
    /// Largest commit timestamp applied to this namespace.
    last_commit_ts: Ts,
    /// This namespace's commit lock — the `kv:<namespace>` resource the
    /// commit coordinator acquires (in global sorted order with table
    /// locks) for any transaction reading or writing the namespace.
    commit_lock: Arc<Mutex<()>>,
}

#[derive(Debug, Default)]
struct KvInner {
    namespaces: BTreeMap<String, Namespace>,
    /// Largest commit timestamp applied to any namespace (for
    /// [`KvStore::current_ts`] and standalone timestamp allocation).
    last_commit_ts: Ts,
    /// The coordinating database's publication clock, when bound
    /// ([`KvStore::bind_publication_clock`]). A bound store is
    /// **clock-aware**: coordinated commits install versions stamped with
    /// a *claimed* timestamp before that timestamp publishes, and every
    /// read clamps its visibility to the published horizon — so the
    /// coordinator can move participant installs out of its ordered
    /// publication window without readers ever seeing an unpublished
    /// (possibly torn across stores) commit. Unbound stores read raw.
    publication_clock: Option<Arc<AtomicU64>>,
    /// Highest timestamp that is visible *without* having passed through
    /// the bound publication clock: everything applied before binding,
    /// plus every standalone-allocated timestamp
    /// ([`KvStore::allocate_standalone_ts`] — store-level commits publish
    /// by applying, they never tick the database clock). Only meaningful
    /// when a clock is bound; the visibility horizon is
    /// `max(clock, standalone_high)`.
    standalone_high: Ts,
}

impl KvInner {
    /// The highest timestamp reads may observe. `Ts::MAX` (no clamping)
    /// when no publication clock is bound.
    fn visible_horizon(&self) -> Ts {
        match &self.publication_clock {
            Some(clock) => clock.load(Ordering::SeqCst).max(self.standalone_high),
            None => Ts::MAX,
        }
    }
}

/// A multi-version, namespaced key-value store.
///
/// The store itself offers only per-batch atomic application
/// ([`KvStore::apply`]); multi-key transactional access comes from
/// [`crate::KvTransaction`] (single-store) or the unified
/// [`crate::Txn`] (aligned with the relational database through the
/// commit coordinator).
#[derive(Debug, Clone, Default)]
pub struct KvStore {
    inner: Arc<RwLock<KvInner>>,
}

impl KvStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        KvStore::default()
    }

    /// Creates a namespace (bucket / collection) with its own commit lock.
    pub fn create_namespace(&self, name: &str) -> KvResult<()> {
        let mut inner = self.inner.write();
        if inner.namespaces.contains_key(name) {
            return Err(KvError::NamespaceExists(name.to_string()));
        }
        inner
            .namespaces
            .insert(name.to_string(), Namespace::default());
        Ok(())
    }

    /// Names of all namespaces.
    pub fn namespaces(&self) -> Vec<String> {
        self.inner.read().namespaces.keys().cloned().collect()
    }

    /// Whether a namespace exists.
    pub fn has_namespace(&self, name: &str) -> bool {
        self.inner.read().namespaces.contains_key(name)
    }

    /// The commit lock of a namespace — the `kv:<namespace>` commit
    /// resource handed to the coordinator. Shared so guards can be taken
    /// in the coordinator's global sorted order.
    pub fn commit_lock_of(&self, namespace: &str) -> KvResult<Arc<Mutex<()>>> {
        let inner = self.inner.read();
        inner
            .namespaces
            .get(namespace)
            .map(|ns| ns.commit_lock.clone())
            .ok_or_else(|| KvError::UnknownNamespace(namespace.to_string()))
    }

    /// Binds the coordinating database's publication clock
    /// ([`trod_db::Database::publication_clock`]), making the store
    /// clock-aware: versions installed at a claimed-but-unpublished
    /// timestamp stay invisible to every read until the clock reaches it.
    /// Everything applied before binding stays visible (the horizon
    /// starts at the current high-water mark). [`crate::Session`] binds
    /// automatically when it couples a store to a database.
    pub fn bind_publication_clock(&self, clock: Arc<AtomicU64>) {
        let mut inner = self.inner.write();
        inner.standalone_high = inner.standalone_high.max(inner.last_commit_ts);
        inner.publication_clock = Some(clock);
    }

    /// The largest *visible* commit timestamp applied so far (over all
    /// namespaces). On a clock-bound store this excludes versions
    /// installed at claimed-but-unpublished timestamps, so a snapshot
    /// taken here never moves under the reader.
    pub fn current_ts(&self) -> Ts {
        let inner = self.inner.read();
        inner.last_commit_ts.min(inner.visible_horizon())
    }

    /// The largest commit timestamp applied to one namespace (0 if the
    /// namespace was never written). [`KvStore::apply`] rejects anything
    /// at or below it for that namespace.
    pub fn last_commit_ts_of(&self, namespace: &str) -> KvResult<Ts> {
        let inner = self.inner.read();
        inner
            .namespaces
            .get(namespace)
            .map(|ns| ns.last_commit_ts)
            .ok_or_else(|| KvError::UnknownNamespace(namespace.to_string()))
    }

    /// The latest value of a key, if any.
    pub fn get_latest(&self, namespace: &str, key: &str) -> KvResult<Option<String>> {
        self.get_as_of(namespace, key, Ts::MAX)
    }

    /// The value of a key as of a commit timestamp (inclusive). On a
    /// clock-bound store the timestamp is clamped to the published
    /// horizon — an installed version whose claimed timestamp has not
    /// published yet is invisible.
    pub fn get_as_of(&self, namespace: &str, key: &str, ts: Ts) -> KvResult<Option<String>> {
        let inner = self.inner.read();
        let ts = ts.min(inner.visible_horizon());
        let ns = inner
            .namespaces
            .get(namespace)
            .ok_or_else(|| KvError::UnknownNamespace(namespace.to_string()))?;
        Ok(ns
            .keys
            .get(key)
            .and_then(|versions| versions.iter().rev().find(|v| v.ts <= ts))
            .and_then(|v| v.value.clone()))
    }

    /// All live `(key, value)` pairs in a namespace whose key starts with
    /// `prefix`, as of a commit timestamp.
    pub fn scan_prefix_as_of(
        &self,
        namespace: &str,
        prefix: &str,
        ts: Ts,
    ) -> KvResult<Vec<(String, String)>> {
        let inner = self.inner.read();
        let ts = ts.min(inner.visible_horizon());
        let ns = inner
            .namespaces
            .get(namespace)
            .ok_or_else(|| KvError::UnknownNamespace(namespace.to_string()))?;
        let mut out = Vec::new();
        for (key, versions) in ns.keys.range(prefix.to_string()..) {
            if !key.starts_with(prefix) {
                break;
            }
            if let Some(value) = versions
                .iter()
                .rev()
                .find(|v| v.ts <= ts)
                .and_then(|v| v.value.clone())
            {
                out.push((key.clone(), value));
            }
        }
        Ok(out)
    }

    /// All live `(key, value)` pairs in a namespace at the latest state.
    pub fn scan_prefix(&self, namespace: &str, prefix: &str) -> KvResult<Vec<(String, String)>> {
        self.scan_prefix_as_of(namespace, prefix, Ts::MAX)
    }

    /// The commit timestamp of the latest version of a key (0 if the key
    /// was never written). Used for optimistic validation — deliberately
    /// *raw* (no published-horizon clamp): an installed version whose
    /// timestamp has not published yet belongs to a commit that claimed
    /// its timestamp and will certainly publish, so aborting early on it
    /// is always correct.
    pub fn version_of(&self, namespace: &str, key: &str) -> KvResult<Ts> {
        let inner = self.inner.read();
        let ns = inner
            .namespaces
            .get(namespace)
            .ok_or_else(|| KvError::UnknownNamespace(namespace.to_string()))?;
        Ok(ns
            .keys
            .get(key)
            .and_then(|versions| versions.last())
            .map(|v| v.ts)
            .unwrap_or(0))
    }

    /// True if `key` gained a version with timestamp in the open interval
    /// `(after, upto)`. The SSI in-window read re-check: called at a
    /// committing transaction's publication turn with
    /// `(snapshot_ts, commit_ts)`, where the interval is exact — every
    /// smaller timestamp is fully published (or installed and certain to
    /// publish) and every larger one is excluded. Raw, like
    /// [`KvStore::version_of`], for the same reason.
    pub fn key_modified_in(
        &self,
        namespace: &str,
        key: &str,
        after: Ts,
        upto: Ts,
    ) -> KvResult<bool> {
        let inner = self.inner.read();
        let ns = inner
            .namespaces
            .get(namespace)
            .ok_or_else(|| KvError::UnknownNamespace(namespace.to_string()))?;
        Ok(ns
            .keys
            .get(key)
            .map(|versions| {
                versions
                    .iter()
                    .rev()
                    .take_while(|v| v.ts > after)
                    .any(|v| v.ts < upto)
            })
            .unwrap_or(false))
    }

    /// Atomically applies a batch of writes, stamping every new version
    /// with `commit_ts`. The timestamp must be strictly newer than every
    /// version previously applied to *the namespaces the batch touches* —
    /// the per-resource monotonicity the coordinator relies on (guaranteed
    /// when applied under the namespaces' commit locks with a timestamp
    /// allocated while holding them). Namespaces outside the batch may
    /// already hold newer timestamps: disjoint-namespace commits install
    /// in lock order, not global timestamp order.
    ///
    /// This is the *store-level* commit: the batch is immediately visible
    /// (on a clock-bound store the standalone horizon is raised to cover
    /// it). Coordinated commits install through
    /// [`KvStore::apply_claimed`] instead, whose visibility waits on the
    /// bound publication clock.
    pub fn apply(&self, writes: &[KvWrite], commit_ts: Ts) -> KvResult<()> {
        self.apply_inner(writes, commit_ts, true)
    }

    /// [`KvStore::apply`] for a *claimed* (coordinated) commit timestamp:
    /// the versions are installed but the visibility horizon is not
    /// raised — on a clock-bound store they stay invisible until the
    /// coordinator publishes `commit_ts`. Called by commit participants,
    /// which may install before their ordered publication turn.
    pub(crate) fn apply_claimed(&self, writes: &[KvWrite], commit_ts: Ts) -> KvResult<()> {
        self.apply_inner(writes, commit_ts, false)
    }

    fn apply_inner(&self, writes: &[KvWrite], commit_ts: Ts, publish: bool) -> KvResult<()> {
        let mut inner = self.inner.write();
        // Validate namespaces and per-namespace freshness first so the
        // batch is all-or-nothing.
        for write in writes {
            let ns = inner
                .namespaces
                .get(&write.namespace)
                .ok_or_else(|| KvError::UnknownNamespace(write.namespace.clone()))?;
            if commit_ts <= ns.last_commit_ts {
                return Err(KvError::StaleCommitTimestamp {
                    given: commit_ts,
                    latest: ns.last_commit_ts,
                });
            }
        }
        for write in writes {
            let ns = inner
                .namespaces
                .get_mut(&write.namespace)
                .expect("namespace validated above");
            ns.keys
                .entry(write.key.clone())
                .or_default()
                .push(KvVersion {
                    ts: commit_ts,
                    value: write.value.clone(),
                });
            ns.last_commit_ts = commit_ts;
        }
        inner.last_commit_ts = inner.last_commit_ts.max(commit_ts);
        if publish {
            inner.standalone_high = inner.standalone_high.max(commit_ts);
        }
        Ok(())
    }

    /// Allocates the next standalone commit timestamp (used by
    /// [`crate::KvTransaction`] when the store is not coordinated with a
    /// relational database). The global high-water mark is advanced at
    /// allocation time, so concurrent standalone commits — even over
    /// disjoint namespaces, holding disjoint commit locks — can never
    /// claim the same timestamp.
    pub(crate) fn allocate_standalone_ts(&self) -> Ts {
        let mut inner = self.inner.write();
        inner.last_commit_ts += 1;
        // Standalone commits never tick a bound publication clock; raise
        // the standalone horizon so the commit is visible once applied.
        inner.standalone_high = inner.standalone_high.max(inner.last_commit_ts);
        inner.last_commit_ts
    }

    /// Creates a new, independent store containing the state visible at
    /// `ts` — the key-value half of the debugger's "development
    /// database" fork, mirroring [`trod_db::Database::fork_at`]'s
    /// semantics: every namespace is recreated (with a fresh commit
    /// lock), each key's value as of `ts` is installed as a single
    /// version stamped `ts.max(1)`, keys that were absent or tombstoned
    /// at `ts` are dropped, and every namespace's `last_commit_ts` starts
    /// at `ts.max(1)` — so per-namespace timestamp monotonicity lines up
    /// with a database forked at the same timestamp (whose allocator also
    /// resumes from `ts.max(1)`), and a forked [`crate::Session`] commits
    /// into both stores without a veto.
    /// The fork never captures claimed-but-unpublished versions: on a
    /// clock-bound store `ts` is clamped to the published horizon, so a
    /// fork taken while a coordinated commit is mid-install (installed,
    /// not yet published) sees the state strictly before that commit —
    /// the same cut [`trod_db::Database::fork_at`] takes on the
    /// relational side.
    pub fn fork_at(&self, ts: Ts) -> KvStore {
        let inner = self.inner.read();
        let ts = ts.min(inner.visible_horizon());
        let fork_ts = ts.max(1);
        let mut fork = KvInner {
            last_commit_ts: fork_ts,
            ..KvInner::default()
        };
        for (name, ns) in &inner.namespaces {
            let mut fork_ns = Namespace {
                last_commit_ts: fork_ts,
                ..Namespace::default()
            };
            for (key, versions) in &ns.keys {
                if let Some(value) = versions
                    .iter()
                    .rev()
                    .find(|v| v.ts <= ts)
                    .and_then(|v| v.value.clone())
                {
                    fork_ns.keys.insert(
                        key.clone(),
                        vec![KvVersion {
                            ts: fork_ts,
                            value: Some(value),
                        }],
                    );
                }
            }
            fork.namespaces.insert(name.clone(), fork_ns);
        }
        KvStore {
            inner: Arc::new(RwLock::new(fork)),
        }
    }

    /// Creates a new, empty store with the same namespaces (each with a
    /// fresh commit lock) — the key-value analogue of
    /// [`trod_db::Database::fork_empty`], used when a past environment is
    /// reconstructed by replaying spilled aligned history instead of
    /// materialising live state.
    pub fn fork_empty(&self) -> KvStore {
        let inner = self.inner.read();
        let mut fork = KvInner::default();
        for name in inner.namespaces.keys() {
            fork.namespaces.insert(name.clone(), Namespace::default());
        }
        KvStore {
            inner: Arc::new(RwLock::new(fork)),
        }
    }

    /// Statistics for one namespace.
    pub fn namespace_stats(&self, namespace: &str) -> KvResult<NamespaceStats> {
        let inner = self.inner.read();
        let ns = inner
            .namespaces
            .get(namespace)
            .ok_or_else(|| KvError::UnknownNamespace(namespace.to_string()))?;
        let mut stats = NamespaceStats::default();
        for versions in ns.keys.values() {
            stats.versions += versions.len();
            if versions.last().map(|v| v.value.is_some()).unwrap_or(false) {
                stats.live_keys += 1;
            }
        }
        Ok(stats)
    }

    /// Drops versions strictly older than `ts` that are shadowed by a
    /// newer version (simple garbage collection). Returns the number of
    /// versions removed.
    pub fn gc_before(&self, ts: Ts) -> usize {
        let mut inner = self.inner.write();
        let mut removed = 0;
        for ns in inner.namespaces.values_mut() {
            for versions in ns.keys.values_mut() {
                if versions.len() <= 1 {
                    continue;
                }
                // Keep the newest version at or before `ts` (it is still
                // visible to as-of reads at `ts`), plus everything after.
                let keep_from = versions.iter().rposition(|v| v.ts <= ts).unwrap_or(0);
                removed += keep_from;
                versions.drain(..keep_from);
            }
        }
        removed
    }
}

/// Contributes the store's state to environment checkpoints: every
/// namespace with its live entries visible at the checkpoint timestamp.
/// [`crate::Session`] registers this on its database
/// ([`trod_db::Database::set_checkpoint_source`]) so checkpoints capture
/// the whole polyglot environment.
impl CheckpointContributor for KvStore {
    fn capture_kv(&self, ts: Ts) -> Vec<CheckpointNamespace> {
        self.namespaces()
            .into_iter()
            .map(|name| {
                let entries = self
                    .scan_prefix_as_of(&name, "", ts)
                    .expect("namespace listed by the store itself");
                CheckpointNamespace { name, entries }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> KvStore {
        let kv = KvStore::new();
        kv.create_namespace("sessions").unwrap();
        kv
    }

    #[test]
    fn namespace_management() {
        let kv = store();
        assert!(kv.has_namespace("sessions"));
        assert_eq!(kv.namespaces(), vec!["sessions".to_string()]);
        assert_eq!(
            kv.create_namespace("sessions"),
            Err(KvError::NamespaceExists("sessions".into()))
        );
        assert_eq!(
            kv.get_latest("missing", "k"),
            Err(KvError::UnknownNamespace("missing".into()))
        );
        assert!(kv.commit_lock_of("sessions").is_ok());
        assert!(kv.commit_lock_of("missing").is_err());
    }

    #[test]
    fn versions_and_as_of_reads() {
        let kv = store();
        kv.apply(&[KvWrite::put("sessions", "u1", "cart:a")], 10)
            .unwrap();
        kv.apply(&[KvWrite::put("sessions", "u1", "cart:b")], 20)
            .unwrap();
        kv.apply(&[KvWrite::delete("sessions", "u1")], 30).unwrap();

        assert_eq!(kv.get_latest("sessions", "u1").unwrap(), None);
        assert_eq!(
            kv.get_as_of("sessions", "u1", 10).unwrap(),
            Some("cart:a".into())
        );
        assert_eq!(
            kv.get_as_of("sessions", "u1", 25).unwrap(),
            Some("cart:b".into())
        );
        assert_eq!(kv.get_as_of("sessions", "u1", 5).unwrap(), None);
        assert_eq!(kv.version_of("sessions", "u1").unwrap(), 30);
        assert_eq!(kv.version_of("sessions", "nope").unwrap(), 0);
        assert_eq!(kv.current_ts(), 30);
    }

    #[test]
    fn prefix_scans_respect_snapshots() {
        let kv = store();
        kv.apply(
            &[
                KvWrite::put("sessions", "user:1", "a"),
                KvWrite::put("sessions", "user:2", "b"),
                KvWrite::put("sessions", "admin:1", "c"),
            ],
            10,
        )
        .unwrap();
        kv.apply(&[KvWrite::put("sessions", "user:3", "d")], 20)
            .unwrap();

        let at_10 = kv.scan_prefix_as_of("sessions", "user:", 10).unwrap();
        assert_eq!(at_10.len(), 2);
        let latest = kv.scan_prefix("sessions", "user:").unwrap();
        assert_eq!(latest.len(), 3);
        let admins = kv.scan_prefix("sessions", "admin:").unwrap();
        assert_eq!(admins, vec![("admin:1".to_string(), "c".to_string())]);
    }

    #[test]
    fn apply_rejects_stale_timestamps_and_unknown_namespaces() {
        let kv = store();
        kv.apply(&[KvWrite::put("sessions", "k", "v")], 10).unwrap();
        assert_eq!(
            kv.apply(&[KvWrite::put("sessions", "k", "v2")], 10),
            Err(KvError::StaleCommitTimestamp {
                given: 10,
                latest: 10
            })
        );
        assert_eq!(
            kv.apply(&[KvWrite::put("nope", "k", "v")], 20),
            Err(KvError::UnknownNamespace("nope".into()))
        );
        // The failed batches changed nothing.
        assert_eq!(kv.get_latest("sessions", "k").unwrap(), Some("v".into()));
        assert_eq!(kv.current_ts(), 10);
    }

    #[test]
    fn timestamps_are_monotone_per_namespace_not_globally() {
        // Disjoint-namespace commits may install out of global timestamp
        // order (the coordinator publishes in order; installs race).
        let kv = store();
        kv.create_namespace("carts").unwrap();
        kv.apply(&[KvWrite::put("sessions", "k", "s10")], 10)
            .unwrap();
        // An older timestamp is fine on a namespace that never saw 10.
        kv.apply(&[KvWrite::put("carts", "k", "c9")], 9).unwrap();
        assert_eq!(kv.get_latest("carts", "k").unwrap(), Some("c9".into()));
        assert_eq!(kv.current_ts(), 10, "current_ts is the global max");
        // But within one namespace the check still holds.
        assert!(matches!(
            kv.apply(&[KvWrite::put("carts", "k", "c9b")], 9),
            Err(KvError::StaleCommitTimestamp { .. })
        ));
    }

    #[test]
    fn stats_and_gc() {
        let kv = store();
        kv.apply(&[KvWrite::put("sessions", "a", "1")], 10).unwrap();
        kv.apply(&[KvWrite::put("sessions", "a", "2")], 20).unwrap();
        kv.apply(&[KvWrite::put("sessions", "b", "3")], 30).unwrap();
        kv.apply(&[KvWrite::delete("sessions", "b")], 40).unwrap();

        let stats = kv.namespace_stats("sessions").unwrap();
        assert_eq!(stats.live_keys, 1);
        assert_eq!(stats.versions, 4);

        let removed = kv.gc_before(40);
        assert_eq!(removed, 2, "one shadowed version of `a`, one of `b`");
        // As-of reads at the GC horizon still work.
        assert_eq!(kv.get_as_of("sessions", "a", 40).unwrap(), Some("2".into()));
        assert_eq!(kv.get_latest("sessions", "b").unwrap(), None);
    }

    #[test]
    fn fork_at_captures_the_state_visible_at_the_timestamp() {
        let kv = store();
        kv.create_namespace("carts").unwrap();
        kv.apply(&[KvWrite::put("sessions", "a", "v1")], 10)
            .unwrap();
        kv.apply(&[KvWrite::put("sessions", "b", "gone")], 15)
            .unwrap();
        kv.apply(
            &[
                KvWrite::put("sessions", "a", "v2"),
                KvWrite::delete("sessions", "b"),
            ],
            20,
        )
        .unwrap();
        kv.apply(&[KvWrite::put("sessions", "c", "late")], 30)
            .unwrap();

        let fork = kv.fork_at(20);
        // The fork holds exactly the state at ts 20: a=v2, b tombstoned
        // away, c not yet written — and the empty namespace exists.
        assert_eq!(fork.get_latest("sessions", "a").unwrap(), Some("v2".into()));
        assert_eq!(fork.get_latest("sessions", "b").unwrap(), None);
        assert_eq!(fork.get_latest("sessions", "c").unwrap(), None);
        assert!(fork.has_namespace("carts"));
        let stats = fork.namespace_stats("sessions").unwrap();
        assert_eq!(stats.live_keys, 1);
        assert_eq!(stats.versions, 1, "history is not copied");
        // Per-namespace monotonicity resumes at the fork timestamp: the
        // next commit must be strictly newer than 20...
        assert_eq!(fork.last_commit_ts_of("sessions").unwrap(), 20);
        assert!(matches!(
            fork.apply(&[KvWrite::put("sessions", "x", "y")], 20),
            Err(KvError::StaleCommitTimestamp { .. })
        ));
        fork.apply(&[KvWrite::put("sessions", "x", "y")], 21)
            .unwrap();
        // ...and the fork is independent of the origin.
        assert_eq!(kv.get_latest("sessions", "x").unwrap(), None);
        kv.apply(&[KvWrite::put("sessions", "a", "v3")], 40)
            .unwrap();
        assert_eq!(fork.get_latest("sessions", "a").unwrap(), Some("v2".into()));
    }

    #[test]
    fn fork_at_zero_and_fork_empty_copy_namespaces_only() {
        let kv = store();
        kv.apply(&[KvWrite::put("sessions", "a", "v")], 10).unwrap();
        let at_zero = kv.fork_at(0);
        assert_eq!(at_zero.get_latest("sessions", "a").unwrap(), None);
        assert_eq!(at_zero.last_commit_ts_of("sessions").unwrap(), 1);
        let empty = kv.fork_empty();
        assert!(empty.has_namespace("sessions"));
        assert_eq!(empty.get_latest("sessions", "a").unwrap(), None);
        assert_eq!(empty.last_commit_ts_of("sessions").unwrap(), 0);
        // The empty fork accepts history replayed from ts 1 up.
        empty
            .apply(&[KvWrite::put("sessions", "a", "v")], 1)
            .unwrap();
        assert_eq!(empty.get_latest("sessions", "a").unwrap(), Some("v".into()));
    }

    #[test]
    fn claimed_installs_stay_invisible_until_published() {
        let kv = store();
        kv.apply(&[KvWrite::put("sessions", "k", "published")], 10)
            .unwrap();

        let clock = Arc::new(AtomicU64::new(10));
        kv.bind_publication_clock(clock.clone());

        // Mid-install: a coordinated commit claimed ts 11 and installed
        // its writes, but the publication clock has not advanced yet.
        kv.apply_claimed(
            &[
                KvWrite::put("sessions", "k", "pending"),
                KvWrite::put("sessions", "k2", "pending"),
            ],
            11,
        )
        .unwrap();

        // Reads, scans and forks all resolve against the published
        // horizon — even when asked for "latest".
        assert_eq!(kv.current_ts(), 10);
        assert_eq!(
            kv.get_latest("sessions", "k").unwrap(),
            Some("published".into())
        );
        assert_eq!(kv.get_as_of("sessions", "k2", Ts::MAX).unwrap(), None);
        assert_eq!(
            kv.scan_prefix("sessions", "k").unwrap(),
            vec![("k".to_string(), "published".to_string())]
        );
        let fork = kv.fork_at(Ts::MAX);
        assert_eq!(
            fork.get_latest("sessions", "k").unwrap(),
            Some("published".into())
        );
        assert_eq!(fork.get_latest("sessions", "k2").unwrap(), None);
        // Version metadata stays raw: the claimed install will certainly
        // publish, so optimistic validation must already abort on it.
        assert_eq!(kv.version_of("sessions", "k").unwrap(), 11);

        // Publication makes the install visible everywhere at once.
        clock.store(11, Ordering::SeqCst);
        assert_eq!(kv.current_ts(), 11);
        assert_eq!(
            kv.get_latest("sessions", "k").unwrap(),
            Some("pending".into())
        );
        let fork = kv.fork_at(Ts::MAX);
        assert_eq!(
            fork.get_latest("sessions", "k2").unwrap(),
            Some("pending".into())
        );
    }

    #[test]
    fn standalone_applies_stay_visible_on_a_clock_bound_store() {
        let kv = store();
        kv.apply(&[KvWrite::put("sessions", "old", "v")], 5)
            .unwrap();
        // Binding snapshots already-applied history into the horizon...
        kv.bind_publication_clock(Arc::new(AtomicU64::new(0)));
        assert_eq!(kv.get_latest("sessions", "old").unwrap(), Some("v".into()));
        // ...and store-level applies publish immediately (they never go
        // through the coordinator's publication pipeline).
        kv.apply(&[KvWrite::put("sessions", "new", "w")], 7)
            .unwrap();
        assert_eq!(kv.get_latest("sessions", "new").unwrap(), Some("w".into()));
        assert_eq!(kv.current_ts(), 7);
    }

    #[test]
    fn error_display() {
        assert!(KvError::UnknownNamespace("x".into())
            .to_string()
            .contains("x"));
        assert!(KvError::Conflict {
            namespace: "s".into(),
            key: "k".into()
        }
        .to_string()
        .contains("s/k"));
        assert!(KvError::StaleCommitTimestamp {
            given: 1,
            latest: 2
        }
        .to_string()
        .contains("not newer"));
    }
}
