//! The multi-version key-value store.
//!
//! [`KvStore`] models the non-relational stores (Redis, document stores)
//! that the paper's §5 wants to bring under TROD's principles. It keeps a
//! full version chain per key — value plus the commit timestamp that
//! installed it, with deletions as tombstones — which is what gives the
//! cross-store transaction manager snapshot reads and what gives TROD
//! time-travel over key-value data.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use trod_db::Ts;

/// Errors raised by the key-value store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvError {
    /// The namespace does not exist.
    UnknownNamespace(String),
    /// The namespace already exists.
    NamespaceExists(String),
    /// Optimistic validation failed: a key read or written by the
    /// transaction changed after its snapshot.
    Conflict { namespace: String, key: String },
    /// A commit timestamp older than an already-applied version was used.
    StaleCommitTimestamp { given: Ts, latest: Ts },
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::UnknownNamespace(ns) => write!(f, "unknown namespace `{ns}`"),
            KvError::NamespaceExists(ns) => write!(f, "namespace `{ns}` already exists"),
            KvError::Conflict { namespace, key } => {
                write!(
                    f,
                    "conflict on `{namespace}/{key}`: key changed since snapshot"
                )
            }
            KvError::StaleCommitTimestamp { given, latest } => write!(
                f,
                "commit timestamp {given} is not newer than the latest applied version {latest}"
            ),
        }
    }
}

impl std::error::Error for KvError {}

/// Convenient result alias.
pub type KvResult<T> = Result<T, KvError>;

/// One buffered write destined for a namespace; `value: None` is a delete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvWrite {
    pub namespace: String,
    pub key: String,
    pub value: Option<String>,
}

impl KvWrite {
    /// A put.
    pub fn put(namespace: &str, key: &str, value: &str) -> Self {
        KvWrite {
            namespace: namespace.to_string(),
            key: key.to_string(),
            value: Some(value.to_string()),
        }
    }

    /// A delete (tombstone).
    pub fn delete(namespace: &str, key: &str) -> Self {
        KvWrite {
            namespace: namespace.to_string(),
            key: key.to_string(),
            value: None,
        }
    }
}

/// Size statistics for one namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NamespaceStats {
    /// Keys with a live (non-tombstone) latest version.
    pub live_keys: usize,
    /// Total stored versions including tombstones.
    pub versions: usize,
}

#[derive(Debug, Clone)]
struct KvVersion {
    ts: Ts,
    value: Option<String>,
}

#[derive(Debug, Default)]
struct KvInner {
    /// namespace → key → version chain ordered by ascending timestamp.
    namespaces: BTreeMap<String, BTreeMap<String, Vec<KvVersion>>>,
    /// Largest commit timestamp applied so far.
    last_commit_ts: Ts,
}

/// A multi-version, namespaced key-value store.
///
/// The store itself offers only per-batch atomic application
/// ([`KvStore::apply`]); multi-key transactional access comes from
/// [`crate::KvTransaction`] (single-store) or [`crate::CrossStore`]
/// (aligned with the relational database).
#[derive(Debug, Clone, Default)]
pub struct KvStore {
    inner: Arc<RwLock<KvInner>>,
}

impl KvStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        KvStore::default()
    }

    /// Creates a namespace (bucket / collection).
    pub fn create_namespace(&self, name: &str) -> KvResult<()> {
        let mut inner = self.inner.write();
        if inner.namespaces.contains_key(name) {
            return Err(KvError::NamespaceExists(name.to_string()));
        }
        inner.namespaces.insert(name.to_string(), BTreeMap::new());
        Ok(())
    }

    /// Names of all namespaces.
    pub fn namespaces(&self) -> Vec<String> {
        self.inner.read().namespaces.keys().cloned().collect()
    }

    /// Whether a namespace exists.
    pub fn has_namespace(&self, name: &str) -> bool {
        self.inner.read().namespaces.contains_key(name)
    }

    /// The largest commit timestamp applied so far.
    pub fn current_ts(&self) -> Ts {
        self.inner.read().last_commit_ts
    }

    /// The latest value of a key, if any.
    pub fn get_latest(&self, namespace: &str, key: &str) -> KvResult<Option<String>> {
        self.get_as_of(namespace, key, Ts::MAX)
    }

    /// The value of a key as of a commit timestamp (inclusive).
    pub fn get_as_of(&self, namespace: &str, key: &str, ts: Ts) -> KvResult<Option<String>> {
        let inner = self.inner.read();
        let ns = inner
            .namespaces
            .get(namespace)
            .ok_or_else(|| KvError::UnknownNamespace(namespace.to_string()))?;
        Ok(ns
            .get(key)
            .and_then(|versions| versions.iter().rev().find(|v| v.ts <= ts))
            .and_then(|v| v.value.clone()))
    }

    /// All live `(key, value)` pairs in a namespace whose key starts with
    /// `prefix`, as of a commit timestamp.
    pub fn scan_prefix_as_of(
        &self,
        namespace: &str,
        prefix: &str,
        ts: Ts,
    ) -> KvResult<Vec<(String, String)>> {
        let inner = self.inner.read();
        let ns = inner
            .namespaces
            .get(namespace)
            .ok_or_else(|| KvError::UnknownNamespace(namespace.to_string()))?;
        let mut out = Vec::new();
        for (key, versions) in ns.range(prefix.to_string()..) {
            if !key.starts_with(prefix) {
                break;
            }
            if let Some(value) = versions
                .iter()
                .rev()
                .find(|v| v.ts <= ts)
                .and_then(|v| v.value.clone())
            {
                out.push((key.clone(), value));
            }
        }
        Ok(out)
    }

    /// All live `(key, value)` pairs in a namespace at the latest state.
    pub fn scan_prefix(&self, namespace: &str, prefix: &str) -> KvResult<Vec<(String, String)>> {
        self.scan_prefix_as_of(namespace, prefix, Ts::MAX)
    }

    /// The commit timestamp of the latest version of a key (0 if the key
    /// was never written). Used for optimistic validation.
    pub fn version_of(&self, namespace: &str, key: &str) -> KvResult<Ts> {
        let inner = self.inner.read();
        let ns = inner
            .namespaces
            .get(namespace)
            .ok_or_else(|| KvError::UnknownNamespace(namespace.to_string()))?;
        Ok(ns
            .get(key)
            .and_then(|versions| versions.last())
            .map(|v| v.ts)
            .unwrap_or(0))
    }

    /// Atomically applies a batch of writes, stamping every new version
    /// with `commit_ts`. The timestamp must be strictly newer than every
    /// previously applied version — this is the alignment invariant the
    /// cross-store manager relies on.
    pub fn apply(&self, writes: &[KvWrite], commit_ts: Ts) -> KvResult<()> {
        let mut inner = self.inner.write();
        if commit_ts <= inner.last_commit_ts {
            return Err(KvError::StaleCommitTimestamp {
                given: commit_ts,
                latest: inner.last_commit_ts,
            });
        }
        // Validate namespaces first so the batch is all-or-nothing.
        for write in writes {
            if !inner.namespaces.contains_key(&write.namespace) {
                return Err(KvError::UnknownNamespace(write.namespace.clone()));
            }
        }
        for write in writes {
            let ns = inner
                .namespaces
                .get_mut(&write.namespace)
                .expect("namespace validated above");
            ns.entry(write.key.clone()).or_default().push(KvVersion {
                ts: commit_ts,
                value: write.value.clone(),
            });
        }
        inner.last_commit_ts = commit_ts;
        Ok(())
    }

    /// Allocates the next standalone commit timestamp (used by
    /// [`crate::KvTransaction`] when the store is not coordinated by a
    /// cross-store manager).
    pub(crate) fn next_standalone_ts(&self) -> Ts {
        self.inner.read().last_commit_ts + 1
    }

    /// Statistics for one namespace.
    pub fn namespace_stats(&self, namespace: &str) -> KvResult<NamespaceStats> {
        let inner = self.inner.read();
        let ns = inner
            .namespaces
            .get(namespace)
            .ok_or_else(|| KvError::UnknownNamespace(namespace.to_string()))?;
        let mut stats = NamespaceStats::default();
        for versions in ns.values() {
            stats.versions += versions.len();
            if versions.last().map(|v| v.value.is_some()).unwrap_or(false) {
                stats.live_keys += 1;
            }
        }
        Ok(stats)
    }

    /// Drops versions strictly older than `ts` that are shadowed by a
    /// newer version (simple garbage collection). Returns the number of
    /// versions removed.
    pub fn gc_before(&self, ts: Ts) -> usize {
        let mut inner = self.inner.write();
        let mut removed = 0;
        for ns in inner.namespaces.values_mut() {
            for versions in ns.values_mut() {
                if versions.len() <= 1 {
                    continue;
                }
                // Keep the newest version at or before `ts` (it is still
                // visible to as-of reads at `ts`), plus everything after.
                let keep_from = versions.iter().rposition(|v| v.ts <= ts).unwrap_or(0);
                removed += keep_from;
                versions.drain(..keep_from);
            }
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> KvStore {
        let kv = KvStore::new();
        kv.create_namespace("sessions").unwrap();
        kv
    }

    #[test]
    fn namespace_management() {
        let kv = store();
        assert!(kv.has_namespace("sessions"));
        assert_eq!(kv.namespaces(), vec!["sessions".to_string()]);
        assert_eq!(
            kv.create_namespace("sessions"),
            Err(KvError::NamespaceExists("sessions".into()))
        );
        assert_eq!(
            kv.get_latest("missing", "k"),
            Err(KvError::UnknownNamespace("missing".into()))
        );
    }

    #[test]
    fn versions_and_as_of_reads() {
        let kv = store();
        kv.apply(&[KvWrite::put("sessions", "u1", "cart:a")], 10)
            .unwrap();
        kv.apply(&[KvWrite::put("sessions", "u1", "cart:b")], 20)
            .unwrap();
        kv.apply(&[KvWrite::delete("sessions", "u1")], 30).unwrap();

        assert_eq!(kv.get_latest("sessions", "u1").unwrap(), None);
        assert_eq!(
            kv.get_as_of("sessions", "u1", 10).unwrap(),
            Some("cart:a".into())
        );
        assert_eq!(
            kv.get_as_of("sessions", "u1", 25).unwrap(),
            Some("cart:b".into())
        );
        assert_eq!(kv.get_as_of("sessions", "u1", 5).unwrap(), None);
        assert_eq!(kv.version_of("sessions", "u1").unwrap(), 30);
        assert_eq!(kv.version_of("sessions", "nope").unwrap(), 0);
        assert_eq!(kv.current_ts(), 30);
    }

    #[test]
    fn prefix_scans_respect_snapshots() {
        let kv = store();
        kv.apply(
            &[
                KvWrite::put("sessions", "user:1", "a"),
                KvWrite::put("sessions", "user:2", "b"),
                KvWrite::put("sessions", "admin:1", "c"),
            ],
            10,
        )
        .unwrap();
        kv.apply(&[KvWrite::put("sessions", "user:3", "d")], 20)
            .unwrap();

        let at_10 = kv.scan_prefix_as_of("sessions", "user:", 10).unwrap();
        assert_eq!(at_10.len(), 2);
        let latest = kv.scan_prefix("sessions", "user:").unwrap();
        assert_eq!(latest.len(), 3);
        let admins = kv.scan_prefix("sessions", "admin:").unwrap();
        assert_eq!(admins, vec![("admin:1".to_string(), "c".to_string())]);
    }

    #[test]
    fn apply_rejects_stale_timestamps_and_unknown_namespaces() {
        let kv = store();
        kv.apply(&[KvWrite::put("sessions", "k", "v")], 10).unwrap();
        assert_eq!(
            kv.apply(&[KvWrite::put("sessions", "k", "v2")], 10),
            Err(KvError::StaleCommitTimestamp {
                given: 10,
                latest: 10
            })
        );
        assert_eq!(
            kv.apply(&[KvWrite::put("nope", "k", "v")], 20),
            Err(KvError::UnknownNamespace("nope".into()))
        );
        // The failed batches changed nothing.
        assert_eq!(kv.get_latest("sessions", "k").unwrap(), Some("v".into()));
        assert_eq!(kv.current_ts(), 10);
    }

    #[test]
    fn stats_and_gc() {
        let kv = store();
        kv.apply(&[KvWrite::put("sessions", "a", "1")], 10).unwrap();
        kv.apply(&[KvWrite::put("sessions", "a", "2")], 20).unwrap();
        kv.apply(&[KvWrite::put("sessions", "b", "3")], 30).unwrap();
        kv.apply(&[KvWrite::delete("sessions", "b")], 40).unwrap();

        let stats = kv.namespace_stats("sessions").unwrap();
        assert_eq!(stats.live_keys, 1);
        assert_eq!(stats.versions, 4);

        let removed = kv.gc_before(40);
        assert_eq!(removed, 2, "one shadowed version of `a`, one of `b`");
        // As-of reads at the GC horizon still work.
        assert_eq!(kv.get_as_of("sessions", "a", 40).unwrap(), Some("2".into()));
        assert_eq!(kv.get_latest("sessions", "b").unwrap(), None);
    }

    #[test]
    fn error_display() {
        assert!(KvError::UnknownNamespace("x".into())
            .to_string()
            .contains("x"));
        assert!(KvError::Conflict {
            namespace: "s".into(),
            key: "k".into()
        }
        .to_string()
        .contains("s/k"));
        assert!(KvError::StaleCommitTimestamp {
            given: 1,
            latest: 2
        }
        .to_string()
        .contains("not newer"));
    }
}
