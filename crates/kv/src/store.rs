//! The multi-version key-value store.
//!
//! [`KvStore`] models the non-relational stores (Redis, document stores)
//! that the paper's §5 wants to bring under TROD's principles. It keeps a
//! full version chain per key — value plus the commit timestamp that
//! installed it, with deletions as tombstones — which is what gives the
//! unified transaction surface snapshot reads and what gives TROD
//! time-travel over key-value data.
//!
//! Each namespace carries its own **commit lock** (an `Arc<Mutex<()>>`
//! handed to the commit coordinator as the `kv:<namespace>` resource; see
//! [`trod_db::CommitParticipant`]) and its own last-applied timestamp.
//! Commit timestamps are therefore monotone *per namespace* — the same
//! per-resource invariant the relational tables keep — and commits over
//! disjoint namespaces install concurrently without any store-wide lock.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use trod_db::Ts;

pub use trod_db::{KvError, KvResult};

/// One buffered write destined for a namespace; `value: None` is a delete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvWrite {
    pub namespace: String,
    pub key: String,
    pub value: Option<String>,
}

impl KvWrite {
    /// A put.
    pub fn put(namespace: &str, key: &str, value: &str) -> Self {
        KvWrite {
            namespace: namespace.to_string(),
            key: key.to_string(),
            value: Some(value.to_string()),
        }
    }

    /// A delete (tombstone).
    pub fn delete(namespace: &str, key: &str) -> Self {
        KvWrite {
            namespace: namespace.to_string(),
            key: key.to_string(),
            value: None,
        }
    }
}

/// Size statistics for one namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NamespaceStats {
    /// Keys with a live (non-tombstone) latest version.
    pub live_keys: usize,
    /// Total stored versions including tombstones.
    pub versions: usize,
}

#[derive(Debug, Clone)]
struct KvVersion {
    ts: Ts,
    value: Option<String>,
}

/// One namespace: key version chains plus the per-namespace commit state.
#[derive(Debug, Default)]
struct Namespace {
    /// key → version chain ordered by ascending timestamp.
    keys: BTreeMap<String, Vec<KvVersion>>,
    /// Largest commit timestamp applied to this namespace.
    last_commit_ts: Ts,
    /// This namespace's commit lock — the `kv:<namespace>` resource the
    /// commit coordinator acquires (in global sorted order with table
    /// locks) for any transaction reading or writing the namespace.
    commit_lock: Arc<Mutex<()>>,
}

#[derive(Debug, Default)]
struct KvInner {
    namespaces: BTreeMap<String, Namespace>,
    /// Largest commit timestamp applied to any namespace (for
    /// [`KvStore::current_ts`] and standalone timestamp allocation).
    last_commit_ts: Ts,
}

/// A multi-version, namespaced key-value store.
///
/// The store itself offers only per-batch atomic application
/// ([`KvStore::apply`]); multi-key transactional access comes from
/// [`crate::KvTransaction`] (single-store) or the unified
/// [`crate::Txn`] (aligned with the relational database through the
/// commit coordinator).
#[derive(Debug, Clone, Default)]
pub struct KvStore {
    inner: Arc<RwLock<KvInner>>,
}

impl KvStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        KvStore::default()
    }

    /// Creates a namespace (bucket / collection) with its own commit lock.
    pub fn create_namespace(&self, name: &str) -> KvResult<()> {
        let mut inner = self.inner.write();
        if inner.namespaces.contains_key(name) {
            return Err(KvError::NamespaceExists(name.to_string()));
        }
        inner
            .namespaces
            .insert(name.to_string(), Namespace::default());
        Ok(())
    }

    /// Names of all namespaces.
    pub fn namespaces(&self) -> Vec<String> {
        self.inner.read().namespaces.keys().cloned().collect()
    }

    /// Whether a namespace exists.
    pub fn has_namespace(&self, name: &str) -> bool {
        self.inner.read().namespaces.contains_key(name)
    }

    /// The commit lock of a namespace — the `kv:<namespace>` commit
    /// resource handed to the coordinator. Shared so guards can be taken
    /// in the coordinator's global sorted order.
    pub fn commit_lock_of(&self, namespace: &str) -> KvResult<Arc<Mutex<()>>> {
        let inner = self.inner.read();
        inner
            .namespaces
            .get(namespace)
            .map(|ns| ns.commit_lock.clone())
            .ok_or_else(|| KvError::UnknownNamespace(namespace.to_string()))
    }

    /// The largest commit timestamp applied so far (over all namespaces).
    pub fn current_ts(&self) -> Ts {
        self.inner.read().last_commit_ts
    }

    /// The largest commit timestamp applied to one namespace (0 if the
    /// namespace was never written). [`KvStore::apply`] rejects anything
    /// at or below it for that namespace.
    pub fn last_commit_ts_of(&self, namespace: &str) -> KvResult<Ts> {
        let inner = self.inner.read();
        inner
            .namespaces
            .get(namespace)
            .map(|ns| ns.last_commit_ts)
            .ok_or_else(|| KvError::UnknownNamespace(namespace.to_string()))
    }

    /// The latest value of a key, if any.
    pub fn get_latest(&self, namespace: &str, key: &str) -> KvResult<Option<String>> {
        self.get_as_of(namespace, key, Ts::MAX)
    }

    /// The value of a key as of a commit timestamp (inclusive).
    pub fn get_as_of(&self, namespace: &str, key: &str, ts: Ts) -> KvResult<Option<String>> {
        let inner = self.inner.read();
        let ns = inner
            .namespaces
            .get(namespace)
            .ok_or_else(|| KvError::UnknownNamespace(namespace.to_string()))?;
        Ok(ns
            .keys
            .get(key)
            .and_then(|versions| versions.iter().rev().find(|v| v.ts <= ts))
            .and_then(|v| v.value.clone()))
    }

    /// All live `(key, value)` pairs in a namespace whose key starts with
    /// `prefix`, as of a commit timestamp.
    pub fn scan_prefix_as_of(
        &self,
        namespace: &str,
        prefix: &str,
        ts: Ts,
    ) -> KvResult<Vec<(String, String)>> {
        let inner = self.inner.read();
        let ns = inner
            .namespaces
            .get(namespace)
            .ok_or_else(|| KvError::UnknownNamespace(namespace.to_string()))?;
        let mut out = Vec::new();
        for (key, versions) in ns.keys.range(prefix.to_string()..) {
            if !key.starts_with(prefix) {
                break;
            }
            if let Some(value) = versions
                .iter()
                .rev()
                .find(|v| v.ts <= ts)
                .and_then(|v| v.value.clone())
            {
                out.push((key.clone(), value));
            }
        }
        Ok(out)
    }

    /// All live `(key, value)` pairs in a namespace at the latest state.
    pub fn scan_prefix(&self, namespace: &str, prefix: &str) -> KvResult<Vec<(String, String)>> {
        self.scan_prefix_as_of(namespace, prefix, Ts::MAX)
    }

    /// The commit timestamp of the latest version of a key (0 if the key
    /// was never written). Used for optimistic validation.
    pub fn version_of(&self, namespace: &str, key: &str) -> KvResult<Ts> {
        let inner = self.inner.read();
        let ns = inner
            .namespaces
            .get(namespace)
            .ok_or_else(|| KvError::UnknownNamespace(namespace.to_string()))?;
        Ok(ns
            .keys
            .get(key)
            .and_then(|versions| versions.last())
            .map(|v| v.ts)
            .unwrap_or(0))
    }

    /// Atomically applies a batch of writes, stamping every new version
    /// with `commit_ts`. The timestamp must be strictly newer than every
    /// version previously applied to *the namespaces the batch touches* —
    /// the per-resource monotonicity the coordinator relies on (guaranteed
    /// when applied under the namespaces' commit locks with a timestamp
    /// allocated while holding them). Namespaces outside the batch may
    /// already hold newer timestamps: disjoint-namespace commits install
    /// in lock order, not global timestamp order.
    pub fn apply(&self, writes: &[KvWrite], commit_ts: Ts) -> KvResult<()> {
        let mut inner = self.inner.write();
        // Validate namespaces and per-namespace freshness first so the
        // batch is all-or-nothing.
        for write in writes {
            let ns = inner
                .namespaces
                .get(&write.namespace)
                .ok_or_else(|| KvError::UnknownNamespace(write.namespace.clone()))?;
            if commit_ts <= ns.last_commit_ts {
                return Err(KvError::StaleCommitTimestamp {
                    given: commit_ts,
                    latest: ns.last_commit_ts,
                });
            }
        }
        for write in writes {
            let ns = inner
                .namespaces
                .get_mut(&write.namespace)
                .expect("namespace validated above");
            ns.keys
                .entry(write.key.clone())
                .or_default()
                .push(KvVersion {
                    ts: commit_ts,
                    value: write.value.clone(),
                });
            ns.last_commit_ts = commit_ts;
        }
        inner.last_commit_ts = inner.last_commit_ts.max(commit_ts);
        Ok(())
    }

    /// Allocates the next standalone commit timestamp (used by
    /// [`crate::KvTransaction`] when the store is not coordinated with a
    /// relational database). The global high-water mark is advanced at
    /// allocation time, so concurrent standalone commits — even over
    /// disjoint namespaces, holding disjoint commit locks — can never
    /// claim the same timestamp.
    pub(crate) fn allocate_standalone_ts(&self) -> Ts {
        let mut inner = self.inner.write();
        inner.last_commit_ts += 1;
        inner.last_commit_ts
    }

    /// Creates a new, independent store containing the state visible at
    /// `ts` — the key-value half of the debugger's "development
    /// database" fork, mirroring [`trod_db::Database::fork_at`]'s
    /// semantics: every namespace is recreated (with a fresh commit
    /// lock), each key's value as of `ts` is installed as a single
    /// version stamped `ts.max(1)`, keys that were absent or tombstoned
    /// at `ts` are dropped, and every namespace's `last_commit_ts` starts
    /// at `ts.max(1)` — so per-namespace timestamp monotonicity lines up
    /// with a database forked at the same timestamp (whose allocator also
    /// resumes from `ts.max(1)`), and a forked [`crate::Session`] commits
    /// into both stores without a veto.
    pub fn fork_at(&self, ts: Ts) -> KvStore {
        let inner = self.inner.read();
        let fork_ts = ts.max(1);
        let mut fork = KvInner {
            last_commit_ts: fork_ts,
            ..KvInner::default()
        };
        for (name, ns) in &inner.namespaces {
            let mut fork_ns = Namespace {
                last_commit_ts: fork_ts,
                ..Namespace::default()
            };
            for (key, versions) in &ns.keys {
                if let Some(value) = versions
                    .iter()
                    .rev()
                    .find(|v| v.ts <= ts)
                    .and_then(|v| v.value.clone())
                {
                    fork_ns.keys.insert(
                        key.clone(),
                        vec![KvVersion {
                            ts: fork_ts,
                            value: Some(value),
                        }],
                    );
                }
            }
            fork.namespaces.insert(name.clone(), fork_ns);
        }
        KvStore {
            inner: Arc::new(RwLock::new(fork)),
        }
    }

    /// Creates a new, empty store with the same namespaces (each with a
    /// fresh commit lock) — the key-value analogue of
    /// [`trod_db::Database::fork_empty`], used when a past environment is
    /// reconstructed by replaying spilled aligned history instead of
    /// materialising live state.
    pub fn fork_empty(&self) -> KvStore {
        let inner = self.inner.read();
        let mut fork = KvInner::default();
        for name in inner.namespaces.keys() {
            fork.namespaces.insert(name.clone(), Namespace::default());
        }
        KvStore {
            inner: Arc::new(RwLock::new(fork)),
        }
    }

    /// Statistics for one namespace.
    pub fn namespace_stats(&self, namespace: &str) -> KvResult<NamespaceStats> {
        let inner = self.inner.read();
        let ns = inner
            .namespaces
            .get(namespace)
            .ok_or_else(|| KvError::UnknownNamespace(namespace.to_string()))?;
        let mut stats = NamespaceStats::default();
        for versions in ns.keys.values() {
            stats.versions += versions.len();
            if versions.last().map(|v| v.value.is_some()).unwrap_or(false) {
                stats.live_keys += 1;
            }
        }
        Ok(stats)
    }

    /// Drops versions strictly older than `ts` that are shadowed by a
    /// newer version (simple garbage collection). Returns the number of
    /// versions removed.
    pub fn gc_before(&self, ts: Ts) -> usize {
        let mut inner = self.inner.write();
        let mut removed = 0;
        for ns in inner.namespaces.values_mut() {
            for versions in ns.keys.values_mut() {
                if versions.len() <= 1 {
                    continue;
                }
                // Keep the newest version at or before `ts` (it is still
                // visible to as-of reads at `ts`), plus everything after.
                let keep_from = versions.iter().rposition(|v| v.ts <= ts).unwrap_or(0);
                removed += keep_from;
                versions.drain(..keep_from);
            }
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> KvStore {
        let kv = KvStore::new();
        kv.create_namespace("sessions").unwrap();
        kv
    }

    #[test]
    fn namespace_management() {
        let kv = store();
        assert!(kv.has_namespace("sessions"));
        assert_eq!(kv.namespaces(), vec!["sessions".to_string()]);
        assert_eq!(
            kv.create_namespace("sessions"),
            Err(KvError::NamespaceExists("sessions".into()))
        );
        assert_eq!(
            kv.get_latest("missing", "k"),
            Err(KvError::UnknownNamespace("missing".into()))
        );
        assert!(kv.commit_lock_of("sessions").is_ok());
        assert!(kv.commit_lock_of("missing").is_err());
    }

    #[test]
    fn versions_and_as_of_reads() {
        let kv = store();
        kv.apply(&[KvWrite::put("sessions", "u1", "cart:a")], 10)
            .unwrap();
        kv.apply(&[KvWrite::put("sessions", "u1", "cart:b")], 20)
            .unwrap();
        kv.apply(&[KvWrite::delete("sessions", "u1")], 30).unwrap();

        assert_eq!(kv.get_latest("sessions", "u1").unwrap(), None);
        assert_eq!(
            kv.get_as_of("sessions", "u1", 10).unwrap(),
            Some("cart:a".into())
        );
        assert_eq!(
            kv.get_as_of("sessions", "u1", 25).unwrap(),
            Some("cart:b".into())
        );
        assert_eq!(kv.get_as_of("sessions", "u1", 5).unwrap(), None);
        assert_eq!(kv.version_of("sessions", "u1").unwrap(), 30);
        assert_eq!(kv.version_of("sessions", "nope").unwrap(), 0);
        assert_eq!(kv.current_ts(), 30);
    }

    #[test]
    fn prefix_scans_respect_snapshots() {
        let kv = store();
        kv.apply(
            &[
                KvWrite::put("sessions", "user:1", "a"),
                KvWrite::put("sessions", "user:2", "b"),
                KvWrite::put("sessions", "admin:1", "c"),
            ],
            10,
        )
        .unwrap();
        kv.apply(&[KvWrite::put("sessions", "user:3", "d")], 20)
            .unwrap();

        let at_10 = kv.scan_prefix_as_of("sessions", "user:", 10).unwrap();
        assert_eq!(at_10.len(), 2);
        let latest = kv.scan_prefix("sessions", "user:").unwrap();
        assert_eq!(latest.len(), 3);
        let admins = kv.scan_prefix("sessions", "admin:").unwrap();
        assert_eq!(admins, vec![("admin:1".to_string(), "c".to_string())]);
    }

    #[test]
    fn apply_rejects_stale_timestamps_and_unknown_namespaces() {
        let kv = store();
        kv.apply(&[KvWrite::put("sessions", "k", "v")], 10).unwrap();
        assert_eq!(
            kv.apply(&[KvWrite::put("sessions", "k", "v2")], 10),
            Err(KvError::StaleCommitTimestamp {
                given: 10,
                latest: 10
            })
        );
        assert_eq!(
            kv.apply(&[KvWrite::put("nope", "k", "v")], 20),
            Err(KvError::UnknownNamespace("nope".into()))
        );
        // The failed batches changed nothing.
        assert_eq!(kv.get_latest("sessions", "k").unwrap(), Some("v".into()));
        assert_eq!(kv.current_ts(), 10);
    }

    #[test]
    fn timestamps_are_monotone_per_namespace_not_globally() {
        // Disjoint-namespace commits may install out of global timestamp
        // order (the coordinator publishes in order; installs race).
        let kv = store();
        kv.create_namespace("carts").unwrap();
        kv.apply(&[KvWrite::put("sessions", "k", "s10")], 10)
            .unwrap();
        // An older timestamp is fine on a namespace that never saw 10.
        kv.apply(&[KvWrite::put("carts", "k", "c9")], 9).unwrap();
        assert_eq!(kv.get_latest("carts", "k").unwrap(), Some("c9".into()));
        assert_eq!(kv.current_ts(), 10, "current_ts is the global max");
        // But within one namespace the check still holds.
        assert!(matches!(
            kv.apply(&[KvWrite::put("carts", "k", "c9b")], 9),
            Err(KvError::StaleCommitTimestamp { .. })
        ));
    }

    #[test]
    fn stats_and_gc() {
        let kv = store();
        kv.apply(&[KvWrite::put("sessions", "a", "1")], 10).unwrap();
        kv.apply(&[KvWrite::put("sessions", "a", "2")], 20).unwrap();
        kv.apply(&[KvWrite::put("sessions", "b", "3")], 30).unwrap();
        kv.apply(&[KvWrite::delete("sessions", "b")], 40).unwrap();

        let stats = kv.namespace_stats("sessions").unwrap();
        assert_eq!(stats.live_keys, 1);
        assert_eq!(stats.versions, 4);

        let removed = kv.gc_before(40);
        assert_eq!(removed, 2, "one shadowed version of `a`, one of `b`");
        // As-of reads at the GC horizon still work.
        assert_eq!(kv.get_as_of("sessions", "a", 40).unwrap(), Some("2".into()));
        assert_eq!(kv.get_latest("sessions", "b").unwrap(), None);
    }

    #[test]
    fn fork_at_captures_the_state_visible_at_the_timestamp() {
        let kv = store();
        kv.create_namespace("carts").unwrap();
        kv.apply(&[KvWrite::put("sessions", "a", "v1")], 10)
            .unwrap();
        kv.apply(&[KvWrite::put("sessions", "b", "gone")], 15)
            .unwrap();
        kv.apply(
            &[
                KvWrite::put("sessions", "a", "v2"),
                KvWrite::delete("sessions", "b"),
            ],
            20,
        )
        .unwrap();
        kv.apply(&[KvWrite::put("sessions", "c", "late")], 30)
            .unwrap();

        let fork = kv.fork_at(20);
        // The fork holds exactly the state at ts 20: a=v2, b tombstoned
        // away, c not yet written — and the empty namespace exists.
        assert_eq!(fork.get_latest("sessions", "a").unwrap(), Some("v2".into()));
        assert_eq!(fork.get_latest("sessions", "b").unwrap(), None);
        assert_eq!(fork.get_latest("sessions", "c").unwrap(), None);
        assert!(fork.has_namespace("carts"));
        let stats = fork.namespace_stats("sessions").unwrap();
        assert_eq!(stats.live_keys, 1);
        assert_eq!(stats.versions, 1, "history is not copied");
        // Per-namespace monotonicity resumes at the fork timestamp: the
        // next commit must be strictly newer than 20...
        assert_eq!(fork.last_commit_ts_of("sessions").unwrap(), 20);
        assert!(matches!(
            fork.apply(&[KvWrite::put("sessions", "x", "y")], 20),
            Err(KvError::StaleCommitTimestamp { .. })
        ));
        fork.apply(&[KvWrite::put("sessions", "x", "y")], 21)
            .unwrap();
        // ...and the fork is independent of the origin.
        assert_eq!(kv.get_latest("sessions", "x").unwrap(), None);
        kv.apply(&[KvWrite::put("sessions", "a", "v3")], 40)
            .unwrap();
        assert_eq!(fork.get_latest("sessions", "a").unwrap(), Some("v2".into()));
    }

    #[test]
    fn fork_at_zero_and_fork_empty_copy_namespaces_only() {
        let kv = store();
        kv.apply(&[KvWrite::put("sessions", "a", "v")], 10).unwrap();
        let at_zero = kv.fork_at(0);
        assert_eq!(at_zero.get_latest("sessions", "a").unwrap(), None);
        assert_eq!(at_zero.last_commit_ts_of("sessions").unwrap(), 1);
        let empty = kv.fork_empty();
        assert!(empty.has_namespace("sessions"));
        assert_eq!(empty.get_latest("sessions", "a").unwrap(), None);
        assert_eq!(empty.last_commit_ts_of("sessions").unwrap(), 0);
        // The empty fork accepts history replayed from ts 1 up.
        empty
            .apply(&[KvWrite::put("sessions", "a", "v")], 1)
            .unwrap();
        assert_eq!(empty.get_latest("sessions", "a").unwrap(), Some("v".into()));
    }

    #[test]
    fn error_display() {
        assert!(KvError::UnknownNamespace("x".into())
            .to_string()
            .contains("x"));
        assert!(KvError::Conflict {
            namespace: "s".into(),
            key: "k".into()
        }
        .to_string()
        .contains("s/k"));
        assert!(KvError::StaleCommitTimestamp {
            given: 1,
            latest: 2
        }
        .to_string()
        .contains("not newer"));
    }
}
