//! # trod-kv
//!
//! A versioned key-value store and the **unified transaction surface**
//! ([`Session`] / [`Txn`]) of the TROD reproduction, built for the
//! "Handling Multiple Data Stores" research direction of *Transactions
//! Make Debugging Easy* (CIDR 2023, §5).
//!
//! Modern applications combine a relational DBMS with non-relational
//! stores (Redis-style key-value stores, document stores, …). TROD's
//! principles require that *all* shared state be accessed through ACID
//! transactions with aligned transaction logs. This crate provides:
//!
//! * [`KvStore`] — a multi-version key-value store with namespaces,
//!   per-namespace commit locks, tombstoned deletes, as-of reads and
//!   optimistic single-store transactions ([`KvTransaction`]).
//! * [`Session`] / [`Txn`] — the one transaction handle for everything:
//!   relational reads and writes, key-value reads and writes, optional
//!   provenance tracing, one snapshot and one atomic commit. Commits run
//!   through `trod-db`'s sharded commit coordinator
//!   ([`trod_db::CommitParticipant`]): key-value namespaces join the
//!   relational footprint as `kv:<namespace>` resources, so there is no
//!   cross-store global lock — commits over disjoint namespaces scale
//!   with threads exactly like disjoint-table relational commits — and
//!   every commit lands in one aligned transaction-log entry by
//!   construction ([`Session::aligned_log`]).
//!
//! ```
//! use trod_db::{Database, DataType, Schema, row};
//! use trod_kv::{KvStore, Session};
//!
//! let db = Database::new();
//! db.create_table(
//!     "orders",
//!     Schema::builder()
//!         .column("id", DataType::Int)
//!         .column("item", DataType::Text)
//!         .primary_key(&["id"])
//!         .build()
//!         .unwrap(),
//! )
//! .unwrap();
//! let kv = KvStore::new();
//! kv.create_namespace("sessions").unwrap();
//!
//! let session = Session::with_kv(db, kv);
//! let mut txn = session.begin();
//! txn.insert("orders", row![1i64, "widget"]).unwrap();
//! txn.kv_put("sessions", "user-1", "cart:widget").unwrap();
//! let commit = txn.commit().unwrap();
//! assert!(commit.commit_ts > 0);
//! assert_eq!(session.aligned_log().len(), 1);
//! ```

pub mod session;
pub mod store;
pub mod txn;

pub use session::{
    kv_image_key, kv_image_value, AlignedCommit, GcStats, Session, SessionBuilder, Txn, TxnCommit,
    TxnOptions,
};
pub use store::{KvError, KvResult, KvStore, KvWrite, NamespaceStats};
pub use txn::KvTransaction;

/// Event-table schema used when registering a KV namespace with the TROD
/// provenance database: the namespace's rows are exposed as
/// `(kv_key, kv_value)` pairs, so the paper's per-table provenance layout
/// (Table 2) applies to key-value data unchanged.
pub fn kv_provenance_schema() -> trod_db::Schema {
    trod_db::Schema::builder()
        .column("kv_key", trod_db::DataType::Text)
        .nullable("kv_value", trod_db::DataType::Text)
        .primary_key(&["kv_key"])
        .build()
        .expect("static schema must be valid")
}

/// The virtual "table" name under which a KV namespace appears in
/// provenance traces, commit footprints and the aligned transaction log
/// (e.g. `kv:sessions`).
pub fn kv_table_name(namespace: &str) -> String {
    format!("{}{namespace}", trod_db::KV_TABLE_PREFIX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provenance_schema_and_table_name() {
        let schema = kv_provenance_schema();
        assert_eq!(schema.arity(), 2);
        assert_eq!(schema.column_names(), vec!["kv_key", "kv_value"]);
        assert_eq!(kv_table_name("sessions"), "kv:sessions");
    }
}
