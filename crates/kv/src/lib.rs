//! # trod-kv
//!
//! A versioned key-value store and a cross-data-store transaction manager,
//! built for the "Handling Multiple Data Stores" research direction of
//! *Transactions Make Debugging Easy* (CIDR 2023, §5).
//!
//! Modern applications combine a relational DBMS with non-relational
//! stores (Redis-style key-value stores, document stores, …). TROD's
//! principles require that *all* shared state be accessed through ACID
//! transactions with aligned transaction logs; the paper points to
//! cross-data-store transaction managers (Cherry Garcia, polystore
//! isolation) as the way to get there. This crate provides both halves of
//! that substrate:
//!
//! * [`KvStore`] — a multi-version key-value store with namespaces,
//!   tombstoned deletes, as-of reads and optimistic single-store
//!   transactions ([`KvTransaction`]). On its own it models a
//!   non-relational store that lacks multi-key transactions.
//! * [`CrossStore`] — a transaction manager spanning a
//!   [`trod_db::Database`] and a [`KvStore`]. Every [`CrossTxn`] commits
//!   atomically across both stores, versions are stamped with a single
//!   commit timestamp, and an [`AlignedCommit`] log records the unified
//!   history. With a [`trod_trace::Tracer`] attached, each cross-store
//!   transaction emits one provenance record covering reads and writes in
//!   *both* stores, so the existing TROD provenance database, replay and
//!   declarative debugging work unchanged for polyglot applications.
//!
//! ```
//! use trod_db::{Database, DataType, Schema, row};
//! use trod_kv::{CrossStore, KvStore};
//!
//! let db = Database::new();
//! db.create_table(
//!     "orders",
//!     Schema::builder()
//!         .column("id", DataType::Int)
//!         .column("item", DataType::Text)
//!         .primary_key(&["id"])
//!         .build()
//!         .unwrap(),
//! )
//! .unwrap();
//! let kv = KvStore::new();
//! kv.create_namespace("sessions").unwrap();
//!
//! let cross = CrossStore::new(db, kv);
//! let mut txn = cross.begin();
//! txn.insert("orders", row![1i64, "widget"]).unwrap();
//! txn.kv_put("sessions", "user-1", "cart:widget").unwrap();
//! let commit = txn.commit().unwrap();
//! assert!(commit.commit_ts > 0);
//! assert_eq!(cross.aligned_log().len(), 1);
//! ```

pub mod cross;
pub mod store;
pub mod txn;

pub use cross::{
    AlignedCommit, CrossCommit, CrossError, CrossResult, CrossStore, CrossTxn, CROSS_COMMITS_TABLE,
};
pub use store::{KvError, KvResult, KvStore, KvWrite, NamespaceStats};
pub use txn::KvTransaction;

/// Event-table schema used when registering a KV namespace with the TROD
/// provenance database: the namespace's rows are exposed as
/// `(kv_key, kv_value)` pairs, so the paper's per-table provenance layout
/// (Table 2) applies to key-value data unchanged.
pub fn kv_provenance_schema() -> trod_db::Schema {
    trod_db::Schema::builder()
        .column("kv_key", trod_db::DataType::Text)
        .nullable("kv_value", trod_db::DataType::Text)
        .primary_key(&["kv_key"])
        .build()
        .expect("static schema must be valid")
}

/// The virtual "table" name under which a KV namespace appears in
/// provenance traces (e.g. `kv:sessions`).
pub fn kv_table_name(namespace: &str) -> String {
    format!("kv:{namespace}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provenance_schema_and_table_name() {
        let schema = kv_provenance_schema();
        assert_eq!(schema.arity(), 2);
        assert_eq!(schema.column_names(), vec!["kv_key", "kv_value"]);
        assert_eq!(kv_table_name("sessions"), "kv:sessions");
    }
}
