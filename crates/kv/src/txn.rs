//! Optimistic single-store transactions over [`KvStore`].
//!
//! A [`KvTransaction`] provides snapshot reads and buffered writes over a
//! single key-value store, validated optimistically at commit: if any key
//! the transaction read or wrote gained a newer version after the
//! transaction's snapshot, the commit fails with
//! [`KvError::Conflict`](crate::KvError::Conflict).
//!
//! This is the "data store that recently added ACID transactions" of the
//! paper's §3.2 trend (FoundationDB, MongoDB, …). Applications that
//! combine it with a relational database should use
//! [`Session`](crate::Session) instead, which additionally aligns
//! commit timestamps and transaction logs across the two stores.

use std::collections::BTreeMap;

use trod_db::Ts;

use crate::store::{KvError, KvResult, KvStore, KvWrite};

/// An optimistic transaction over one [`KvStore`].
#[derive(Debug)]
pub struct KvTransaction {
    store: KvStore,
    snapshot_ts: Ts,
    /// (namespace, key) → version observed at first read (0 = absent).
    read_versions: BTreeMap<(String, String), Ts>,
    /// (namespace, key) → buffered value (None = delete).
    writes: BTreeMap<(String, String), Option<String>>,
    finished: bool,
}

impl KvTransaction {
    /// Begins a transaction whose reads observe the store as of now.
    pub fn begin(store: &KvStore) -> Self {
        KvTransaction {
            snapshot_ts: store.current_ts(),
            store: store.clone(),
            read_versions: BTreeMap::new(),
            writes: BTreeMap::new(),
            finished: false,
        }
    }

    /// The snapshot timestamp this transaction reads at.
    pub fn snapshot_ts(&self) -> Ts {
        self.snapshot_ts
    }

    /// Reads a key: own buffered writes first, then the snapshot.
    pub fn get(&mut self, namespace: &str, key: &str) -> KvResult<Option<String>> {
        let id = (namespace.to_string(), key.to_string());
        if let Some(buffered) = self.writes.get(&id) {
            return Ok(buffered.clone());
        }
        let value = self.store.get_as_of(namespace, key, self.snapshot_ts)?;
        let version = self.store.version_of(namespace, key)?.min(self.snapshot_ts);
        self.read_versions.entry(id).or_insert(version);
        Ok(value)
    }

    /// Buffers a put.
    pub fn put(&mut self, namespace: &str, key: &str, value: &str) -> KvResult<()> {
        if !self.store.has_namespace(namespace) {
            return Err(KvError::UnknownNamespace(namespace.to_string()));
        }
        self.writes.insert(
            (namespace.to_string(), key.to_string()),
            Some(value.to_string()),
        );
        Ok(())
    }

    /// Buffers a delete.
    pub fn delete(&mut self, namespace: &str, key: &str) -> KvResult<()> {
        if !self.store.has_namespace(namespace) {
            return Err(KvError::UnknownNamespace(namespace.to_string()));
        }
        self.writes
            .insert((namespace.to_string(), key.to_string()), None);
        Ok(())
    }

    /// The buffered writes in deterministic (namespace, key) order.
    pub fn pending_writes(&self) -> Vec<KvWrite> {
        self.writes
            .iter()
            .map(|((namespace, key), value)| KvWrite {
                namespace: namespace.clone(),
                key: key.clone(),
                value: value.clone(),
            })
            .collect()
    }

    /// Validates reads and writes against the current store state; this is
    /// the "prepare" half used by the cross-store manager.
    pub(crate) fn validate(&self) -> KvResult<()> {
        for ((namespace, key), observed) in &self.read_versions {
            let latest = self.store.version_of(namespace, key)?;
            if latest > self.snapshot_ts && latest != *observed {
                return Err(KvError::Conflict {
                    namespace: namespace.clone(),
                    key: key.clone(),
                });
            }
        }
        for (namespace, key) in self.writes.keys() {
            let latest = self.store.version_of(namespace, key)?;
            if latest > self.snapshot_ts {
                return Err(KvError::Conflict {
                    namespace: namespace.clone(),
                    key: key.clone(),
                });
            }
        }
        Ok(())
    }

    /// Commits: takes the written namespaces' commit locks (in sorted
    /// order — the same locks the cross-store commit coordinator uses, so
    /// standalone and coordinated commits on shared namespaces serialize
    /// instead of racing), validates, then applies the buffered writes at
    /// the next standalone commit timestamp. Returns the commit timestamp
    /// (equal to the snapshot for read-only transactions).
    pub fn commit(mut self) -> KvResult<Ts> {
        self.finished = true;
        if self.writes.is_empty() {
            self.validate()?;
            return Ok(self.snapshot_ts);
        }
        let mut namespaces: Vec<&str> = self.writes.keys().map(|(ns, _)| ns.as_str()).collect();
        namespaces.sort_unstable();
        namespaces.dedup();
        let locks = namespaces
            .iter()
            .map(|ns| self.store.commit_lock_of(ns))
            .collect::<KvResult<Vec<_>>>()?;
        let _guards: Vec<_> = locks.iter().map(|l| l.lock()).collect();
        self.validate()?;
        let commit_ts = self.store.allocate_standalone_ts();
        let writes = self.pending_writes();
        self.store.apply(&writes, commit_ts)?;
        Ok(commit_ts)
    }

    /// Discards the transaction.
    pub fn abort(mut self) {
        self.finished = true;
        self.writes.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> KvStore {
        let kv = KvStore::new();
        kv.create_namespace("sessions").unwrap();
        kv
    }

    #[test]
    fn read_your_own_writes_and_commit() {
        let kv = store();
        let mut txn = KvTransaction::begin(&kv);
        assert_eq!(txn.get("sessions", "u1").unwrap(), None);
        txn.put("sessions", "u1", "cart:a").unwrap();
        assert_eq!(txn.get("sessions", "u1").unwrap(), Some("cart:a".into()));
        let ts = txn.commit().unwrap();
        assert!(ts > 0);
        assert_eq!(
            kv.get_latest("sessions", "u1").unwrap(),
            Some("cart:a".into())
        );
    }

    #[test]
    fn snapshot_isolation_within_a_transaction() {
        let kv = store();
        kv.apply(&[KvWrite::put("sessions", "u1", "old")], 5)
            .unwrap();
        let mut txn = KvTransaction::begin(&kv);
        assert_eq!(txn.get("sessions", "u1").unwrap(), Some("old".into()));
        // A concurrent writer commits.
        kv.apply(&[KvWrite::put("sessions", "u1", "new")], 6)
            .unwrap();
        // The transaction still sees its snapshot.
        assert_eq!(txn.get("sessions", "u1").unwrap(), Some("old".into()));
        // But it cannot commit a write over the changed key.
        txn.put("sessions", "u1", "mine").unwrap();
        assert!(matches!(txn.commit(), Err(KvError::Conflict { .. })));
        assert_eq!(kv.get_latest("sessions", "u1").unwrap(), Some("new".into()));
    }

    #[test]
    fn read_validation_detects_changed_keys() {
        let kv = store();
        kv.apply(&[KvWrite::put("sessions", "u1", "old")], 5)
            .unwrap();
        let mut txn = KvTransaction::begin(&kv);
        let _ = txn.get("sessions", "u1").unwrap();
        kv.apply(&[KvWrite::put("sessions", "u1", "new")], 6)
            .unwrap();
        // Write to a *different* key: still a conflict, because the read
        // set is validated (serializable-style OCC).
        txn.put("sessions", "u2", "x").unwrap();
        assert!(matches!(txn.commit(), Err(KvError::Conflict { .. })));
    }

    #[test]
    fn read_only_and_aborted_transactions_change_nothing() {
        let kv = store();
        kv.apply(&[KvWrite::put("sessions", "u1", "v")], 5).unwrap();
        let mut read_only = KvTransaction::begin(&kv);
        assert_eq!(read_only.get("sessions", "u1").unwrap(), Some("v".into()));
        assert_eq!(
            read_only.commit().unwrap(),
            5,
            "read-only commits at its snapshot"
        );

        let mut txn = KvTransaction::begin(&kv);
        txn.put("sessions", "u1", "discarded").unwrap();
        txn.abort();
        assert_eq!(kv.get_latest("sessions", "u1").unwrap(), Some("v".into()));
        assert_eq!(kv.current_ts(), 5);
    }

    #[test]
    fn deletes_and_unknown_namespaces() {
        let kv = store();
        kv.apply(&[KvWrite::put("sessions", "u1", "v")], 5).unwrap();
        let mut txn = KvTransaction::begin(&kv);
        txn.delete("sessions", "u1").unwrap();
        assert_eq!(txn.get("sessions", "u1").unwrap(), None);
        assert!(txn.put("nope", "k", "v").is_err());
        txn.commit().unwrap();
        assert_eq!(kv.get_latest("sessions", "u1").unwrap(), None);
    }

    #[test]
    fn pending_writes_are_deterministic() {
        let kv = store();
        let mut txn = KvTransaction::begin(&kv);
        txn.put("sessions", "b", "2").unwrap();
        txn.put("sessions", "a", "1").unwrap();
        let pending = txn.pending_writes();
        assert_eq!(pending.len(), 2);
        assert_eq!(pending[0].key, "a");
        assert_eq!(pending[1].key, "b");
        txn.abort();
    }
}
