//! The unified transaction surface: one [`Session`], one [`Txn`].
//!
//! Before this module, callers juggled three transaction handles with
//! three error types: `trod_db::Transaction` (plain relational),
//! `TracedTransaction` (relational + provenance) and `CrossTxn`
//! (relational + key-value behind a global cross-store commit lock). The
//! redesign collapses them: a [`Session`] binds a relational
//! [`Database`], optionally a [`KvStore`], and optionally a [`Tracer`];
//! [`Session::begin_with`] hands out a [`Txn`] whose relational and
//! key-value operations share one snapshot, one commit, one error type
//! ([`TrodError`]) and one provenance record.
//!
//! Commit goes through the database's commit coordinator
//! ([`trod_db::CommitParticipant`]): the transaction's key-value
//! footprint joins the relational footprint as `kv:<namespace>` resources,
//! all locks are taken in one global sorted order, every store validates
//! under those locks, and the key-value writes are installed inside the
//! ordered publication window at the single commit timestamp. There is no
//! cross-store commit lock anywhere — commits over disjoint namespaces
//! (or disjoint tables, or any mix) proceed fully concurrently, and mixed
//! commits are strictly serializable end to end.
//!
//! **The aligned log is the transaction log.** A commit's key-value
//! change records land in the same [`trod_db::CommittedTxn`] entry as its
//! relational ones (under the virtual `kv:<namespace>` table names), so
//! the relational transaction log *is* the paper's §5 aligned history —
//! by construction, for relational-only, KV-only and mixed commits alike.
//! [`Session::aligned_log`] is a view of it, and a [`Tracer`] attached to
//! the session emits one [`TxnTrace`] per transaction whose reads and
//! writes span both stores, so declarative debugging, replay and
//! reenactment work for polyglot applications without change.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use trod_db::{
    ChangeRecord, Checkpoint, CommitInfo, CommitParticipant, CommittedTxn, Database, DbError,
    DbResult, IsolationLevel, Key, KvError, Predicate, RecoveryReport, Row, SegmentedWal,
    TrodError, TrodResult, Ts, TxnId, Value, WalOptions, WalRecord,
};
use trod_trace::{ReadTrace, Tracer, TxnContext, TxnTrace};

use crate::kv_table_name;
use crate::store::{KvStore, KvWrite};

/// One entry of the aligned transaction log: everything a transaction
/// changed, in both stores, at one commit timestamp. A view over the
/// relational [`trod_db::CommittedTxn`] entries (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct AlignedCommit {
    pub txn_id: TxnId,
    pub commit_ts: Ts,
    /// Changes to relational application tables.
    pub relational: Vec<ChangeRecord>,
    /// Key-value writes applied at the same commit timestamp.
    pub kv: Vec<KvWrite>,
}

impl AlignedCommit {
    /// True if the commit touched both stores.
    pub fn spans_both_stores(&self) -> bool {
        !self.relational.is_empty() && !self.kv.is_empty()
    }

    /// Splits one aligned transaction-log entry into its relational and
    /// key-value halves. Used by [`Session::aligned_log`] and by the
    /// debugger when stitching spilled retention history (entries a
    /// [`trod_db::RetentionPolicy`] preserved across GC) onto the live
    /// log.
    pub fn from_entry(entry: CommittedTxn) -> AlignedCommit {
        let (kv, relational): (Vec<_>, Vec<_>) = entry
            .changes
            .into_iter()
            .partition(|c| trod_db::is_kv_table(&c.table));
        AlignedCommit {
            txn_id: entry.txn_id,
            commit_ts: entry.commit_ts,
            relational,
            kv: kv.iter().filter_map(kv_write_of_record).collect(),
        }
    }
}

/// Summary returned by a successful [`Txn::commit`].
#[derive(Debug, Clone, PartialEq)]
pub struct TxnCommit {
    pub txn_id: TxnId,
    pub commit_ts: Ts,
    /// Number of relational row changes.
    pub relational_changes: usize,
    /// Number of key-value writes installed.
    pub kv_writes: usize,
    /// The full aligned change set: relational records followed by
    /// key-value records under their `kv:<namespace>` table names.
    pub changes: Vec<ChangeRecord>,
}

/// Options for beginning a [`Txn`]: isolation level, tracing context,
/// and (implicitly, via the [`Session`]) the participating stores.
#[derive(Debug, Clone, Default)]
pub struct TxnOptions {
    /// Isolation level for the relational side; the key-value side
    /// validates reads only under [`IsolationLevel::Serializable`]
    /// (write-write conflicts are always checked).
    pub isolation: IsolationLevel,
    /// Request/handler/function context to trace the transaction under;
    /// `None` traces with an empty context (when the session has a
    /// tracer at all).
    pub ctx: Option<TxnContext>,
}

impl TxnOptions {
    /// Serializable, untraced defaults.
    pub fn new() -> Self {
        TxnOptions::default()
    }

    /// Sets the isolation level.
    pub fn isolation(mut self, isolation: IsolationLevel) -> Self {
        self.isolation = isolation;
        self
    }

    /// Attaches a tracing context.
    pub fn traced(mut self, ctx: TxnContext) -> Self {
        self.ctx = Some(ctx);
        self
    }
}

/// What one [`Session::gc_before`] pass reclaimed, and at which horizon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcStats {
    /// The effective horizon after clamping to the active-transaction
    /// watermark and the published clock — both stores truncated at
    /// exactly this timestamp.
    pub horizon: Ts,
    /// Relational row versions dropped.
    pub relational_versions: usize,
    /// Aligned log entries truncated (spilled first when a retention
    /// policy is installed).
    pub log_entries: usize,
    /// Key-value versions dropped.
    pub kv_versions: usize,
}

struct SessionInner {
    db: Database,
    kv: Option<KvStore>,
    tracer: Option<Tracer>,
}

/// A handle binding the stores (and optional tracer) transactions run
/// against. Cheaply cloneable; clones share the underlying stores.
///
/// This is the one surface the runtime's `HandlerContext`, the query
/// executor and the core debugger consume.
#[derive(Clone)]
pub struct Session {
    inner: Arc<SessionInner>,
}

/// Configures a [`Session`].
#[derive(Debug)]
pub struct SessionBuilder {
    db: Database,
    kv: Option<KvStore>,
    tracer: Option<Tracer>,
}

impl SessionBuilder {
    /// Binds a key-value store, enabling the `kv_*` operations on every
    /// [`Txn`] the session begins.
    pub fn kv(mut self, kv: KvStore) -> Self {
        self.kv = Some(kv);
        self
    }

    /// Attaches a tracer: every transaction emits one provenance record
    /// spanning all participating stores.
    pub fn tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Builds the session. A bound key-value store is coupled to the
    /// database's publication clock (clock-aware versioning), so
    /// coordinated commits can install kv versions before their
    /// publication turn without readers ever observing an unpublished —
    /// possibly torn-across-stores — commit.
    pub fn build(self) -> Session {
        if let Some(kv) = &self.kv {
            kv.bind_publication_clock(self.db.publication_clock());
            // Environment checkpoints capture the kv half through this
            // registration (see the checkpoint section in trod_db's
            // database docs).
            self.db.set_checkpoint_source(Some(Arc::new(kv.clone())));
        }
        Session {
            inner: Arc::new(SessionInner {
                db: self.db,
                kv: self.kv,
                tracer: self.tracer,
            }),
        }
    }
}

impl Session {
    /// A relational-only, untraced session.
    pub fn new(db: Database) -> Self {
        Session::builder(db).build()
    }

    /// A session spanning a relational database and a key-value store.
    pub fn with_kv(db: Database, kv: KvStore) -> Self {
        Session::builder(db).kv(kv).build()
    }

    /// Like [`Session::with_kv`], additionally emitting one provenance
    /// trace per transaction through `tracer`.
    pub fn with_tracer(db: Database, kv: KvStore, tracer: Tracer) -> Self {
        Session::builder(db).kv(kv).tracer(tracer).build()
    }

    /// Starts configuring a session over `db`.
    pub fn builder(db: Database) -> SessionBuilder {
        SessionBuilder {
            db,
            kv: None,
            tracer: None,
        }
    }

    /// The relational database.
    pub fn database(&self) -> &Database {
        &self.inner.db
    }

    /// The key-value store, if one is bound.
    pub fn kv_store(&self) -> Option<&KvStore> {
        self.inner.kv.as_ref()
    }

    /// The key-value store.
    ///
    /// # Panics
    /// If the session was built without one; use [`Session::kv_store`]
    /// when the binding is conditional.
    pub fn kv(&self) -> &KvStore {
        self.inner
            .kv
            .as_ref()
            .expect("session has no key-value store bound")
    }

    /// The tracer, if provenance tracing is enabled.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.inner.tracer.as_ref()
    }

    /// The aligned transaction log: every committed write transaction, in
    /// commit order, with its relational and key-value changes split out.
    /// A view over [`Database::log_entries`] — the relational log *is*
    /// the aligned log (see the module docs) — so it reflects exactly
    /// what the log retains (GC truncates both together).
    pub fn aligned_log(&self) -> Vec<AlignedCommit> {
        self.inner
            .db
            .log_entries()
            .into_iter()
            .map(AlignedCommit::from_entry)
            .collect()
    }

    /// Forks the whole session environment at a timestamp: the relational
    /// database via [`Database::fork_at`] and, when one is bound, the
    /// key-value store via [`KvStore::fork_at`] — both at the *same*
    /// point of the aligned history, which is what makes the fork a
    /// faithful polyglot "development database" (paper Figure 2). The
    /// fork is untraced and independent; its clock and every namespace's
    /// timestamp resume from `ts.max(1)`.
    ///
    /// Only sound at or above the GC truncation floor
    /// ([`Database::log_truncated_below`]); below it the debugger
    /// reconstructs the environment from spilled aligned history instead
    /// (see [`Session::fork_empty`] and [`Session::apply_changes`]).
    pub fn fork_at(&self, ts: Ts) -> DbResult<Session> {
        let mut builder = Session::builder(self.inner.db.fork_at(ts)?);
        if let Some(kv) = &self.inner.kv {
            builder = builder.kv(kv.fork_at(ts));
        }
        Ok(builder.build())
    }

    /// Forks an empty environment with the same schemas, indexes and
    /// namespaces. Replaying aligned history into it (via
    /// [`Session::apply_changes`]) reconstructs any past state — the path
    /// the debugger takes when the wanted timestamp predates the GC
    /// truncation floor and only spilled history still covers it.
    pub fn fork_empty(&self) -> DbResult<Session> {
        let mut builder = Session::builder(self.inner.db.fork_empty()?);
        if let Some(kv) = &self.inner.kv {
            builder = builder.kv(kv.fork_empty());
        }
        Ok(builder.build())
    }

    /// Applies captured aligned change records — relational rows *and*
    /// `kv:<namespace>` records — as one synthetic committed transaction,
    /// through the same participant commit path live commits take: the
    /// kv records are decoded back into [`KvWrite`]s, the namespaces'
    /// commit locks join the sorted lock order, and the kv install runs
    /// inside the ordered publication window at the single claimed
    /// timestamp. The fork's aligned log therefore records injected
    /// history exactly like production history.
    ///
    /// This is the replay engine's injection primitive for polyglot
    /// traces. Errors: a kv record that does not decode (or whose value
    /// image was erased by privacy redaction) rejects the whole batch
    /// before anything is installed; a session without a key-value store
    /// rejects batches containing kv records.
    pub fn apply_changes(&self, changes: &[ChangeRecord]) -> TrodResult<CommitInfo> {
        if !changes.iter().any(|c| trod_db::is_kv_table(&c.table)) {
            return Ok(self.inner.db.apply_changes(changes)?);
        }
        let kv =
            self.inner.kv.as_ref().ok_or_else(|| {
                KvError::UnknownNamespace("<no key-value store bound>".to_string())
            })?;
        let (kv_records, relational): (Vec<ChangeRecord>, Vec<ChangeRecord>) = changes
            .iter()
            .cloned()
            .partition(|c| trod_db::is_kv_table(&c.table));
        let mut writes = Vec::with_capacity(kv_records.len());
        for record in &kv_records {
            let write = kv_write_of_record(record).ok_or_else(|| {
                DbError::Invalid(format!(
                    "kv change record on `{}` key {} does not decode",
                    record.table, record.key
                ))
            })?;
            // An insert/update whose after image decodes to no value was
            // erased by privacy redaction: refuse rather than silently
            // turning the put into a delete (replay counts the skip).
            if record.op.after().is_some() && write.value.is_none() {
                return Err(DbError::Invalid(format!(
                    "kv change record on `{}` key {} has an erased value image",
                    record.table, record.key
                ))
                .into());
            }
            if !kv.has_namespace(&write.namespace) {
                return Err(KvError::UnknownNamespace(write.namespace).into());
            }
            writes.push(write);
        }
        // Same self-heal as Txn::commit: if a standalone store-level
        // commit outran this database's allocator on a written namespace,
        // catch the allocator up so the participant's freshness veto only
        // fires on a genuine race.
        let floor = writes
            .iter()
            .map(|w| kv.last_commit_ts_of(&w.namespace).unwrap_or(0))
            .max()
            .unwrap_or(0);
        self.inner.db.ensure_ts_at_least(floor);
        let participant = InjectionParticipant {
            kv: kv.clone(),
            writes: &writes,
        };
        self.inner
            .db
            .apply_changes_with(&relational, &[&participant])
    }

    /// Re-installs one aligned-history entry **verbatim** — txn id and
    /// commit/start timestamps preserved — through the participant commit
    /// path: relational changes and `kv:<namespace>` records land
    /// together in the same publication window and the entry appears in
    /// this session's aligned log with its original identity. Entries
    /// must be applied in commit-ts order onto a session whose clock is
    /// below `entry.commit_ts`.
    ///
    /// This is the injection primitive WAL recovery uses, exposed for
    /// history transfer between instances: dump/load and
    /// fork-from-instance replay a remote aligned log through it to
    /// reconstruct byte-identical history. Returns the number of kv
    /// writes installed.
    pub fn apply_entry(&self, entry: &CommittedTxn) -> TrodResult<usize> {
        match self.inner.kv.as_ref() {
            Some(kv) => Session::recover_entry(&self.inner.db, kv, entry),
            None => {
                if entry.changes.iter().any(|c| trod_db::is_kv_table(&c.table)) {
                    return Err(KvError::UnknownNamespace(
                        "<no key-value store bound to session>".to_string(),
                    )
                    .into());
                }
                Session::recover_entry(&self.inner.db, &KvStore::new(), entry)
            }
        }
    }

    // ------------------------------------------------------------------
    // Durability
    // ------------------------------------------------------------------

    /// Creates a fresh durable session environment — an empty relational
    /// database and key-value store whose commits stream into a new WAL
    /// at `path` (truncating any existing file). Namespace DDL must go
    /// through [`Session::create_namespace`] so it is logged too.
    pub fn create_durable(
        path: impl AsRef<std::path::Path>,
        opts: WalOptions,
    ) -> TrodResult<Session> {
        let db = Database::create_durable(path, opts).map_err(TrodError::from)?;
        Ok(Session::with_kv(db, KvStore::new()))
    }

    /// Opens (creating if absent) a durable session environment: the
    /// segmented WAL at `path` is validated (manifest checked, crash
    /// debris reconciled, torn tail of the newest segment truncated at
    /// the last valid checksum, corruption in sealed/cold files refused
    /// with a typed error) and every record replayed in order —
    /// table/index/namespace DDL rebuilds the catalogs, and each
    /// committed entry re-installs its relational changes *and* its
    /// `kv:<namespace>` writes through the participant commit path,
    /// preserving the entry verbatim in the aligned history. The
    /// recovered session's state, aligned log and timestamps equal the
    /// durable prefix of the original's. A pre-segmentation single-file
    /// log at `path` is migrated transparently (it becomes segment 0,
    /// byte for byte).
    pub fn open_durable(
        path: impl AsRef<std::path::Path>,
        opts: WalOptions,
    ) -> TrodResult<(Session, RecoveryReport)> {
        let (wal, records, info) = SegmentedWal::open_path(path, opts).map_err(DbError::Storage)?;
        Session::recover_session(wal, records, info)
    }

    /// [`Session::open_durable`] over an arbitrary
    /// [`trod_db::segment::LogDir`] (fault-injection harnesses).
    pub fn open_durable_in(
        dir: std::sync::Arc<dyn trod_db::segment::LogDir>,
        opts: WalOptions,
    ) -> TrodResult<(Session, RecoveryReport)> {
        let (wal, records, info) = SegmentedWal::open_dir(dir, opts).map_err(DbError::Storage)?;
        Session::recover_session(wal, records, info)
    }

    fn recover_session(
        wal: std::sync::Arc<SegmentedWal>,
        records: Vec<WalRecord>,
        info: trod_db::SegmentedRecovery,
    ) -> TrodResult<(Session, RecoveryReport)> {
        let db = Database::new();
        let kv = KvStore::new();
        let mut report = RecoveryReport {
            truncated_bytes: info.truncated_bytes,
            segments: info.segments,
            cold_files: info.cold_files,
            checkpoint_fallbacks: info.checkpoint_fallbacks,
            skipped_files: info.skipped_files,
            ..Default::default()
        };
        // Checkpoint boot: restore the snapshot into both stores first,
        // then replay only the WAL tail after it. DDL in the tail replays
        // leniently — re-creating an object the checkpoint already holds
        // is a no-op (the WAL vocabulary has no drop records).
        let checkpoint = wal.take_recovered_checkpoint();
        let lenient_ddl = checkpoint.is_some();
        if let Some(ck) = &checkpoint {
            db.restore_checkpoint(ck).map_err(TrodError::from)?;
            Session::restore_kv_checkpoint(&kv, ck)?;
            report.checkpoint_ts = Some(ck.ts);
        }
        let recovery_err =
            |detail: String| TrodError::Storage(trod_db::StorageError::Recovery { detail });
        for record in &records {
            match record {
                WalRecord::CreateTable { name, schema } => {
                    if lenient_ddl && db.has_table(name) {
                        continue;
                    }
                    db.create_table(name.clone(), schema.clone())
                        .map_err(|e| recovery_err(format!("create table `{name}`: {e}")))?;
                    report.tables += 1;
                }
                WalRecord::CreateIndex {
                    table,
                    column,
                    ranged,
                } => {
                    if lenient_ddl && Session::index_exists(&db, table, column, *ranged)? {
                        continue;
                    }
                    if *ranged {
                        db.create_range_index(table, column)
                    } else {
                        db.create_index(table, column)
                    }
                    .map_err(|e| recovery_err(format!("create index `{table}.{column}`: {e}")))?;
                    report.indexes += 1;
                }
                WalRecord::CreateNamespace { name } => {
                    if lenient_ddl && kv.has_namespace(name) {
                        continue;
                    }
                    kv.create_namespace(name)
                        .map_err(|e| recovery_err(format!("create namespace `{name}`: {e}")))?;
                    report.namespaces.push(name.clone());
                }
                WalRecord::Commit(entry) => {
                    report.kv_writes_replayed +=
                        Session::recover_entry(&db, &kv, entry).map_err(|e| {
                            recovery_err(format!("replay commit ts {}: {e}", entry.commit_ts))
                        })?;
                    report.commits += 1;
                }
            }
        }
        // Attach only after replay, so replayed entries are not
        // re-appended to the log they came from.
        db.attach_segmented_wal(wal);
        Ok((Session::with_kv(db, kv), report))
    }

    /// Whether `table.column` already carries a (hash or range) index —
    /// the lenient-DDL check for checkpoint-boot replay.
    fn index_exists(db: &Database, table: &str, column: &str, ranged: bool) -> TrodResult<bool> {
        let store = db.table(table).map_err(TrodError::from)?;
        let existing = if ranged {
            store.range_indexed_columns()
        } else {
            store.indexed_columns()
        };
        Ok(existing.iter().any(|c| c == column))
    }

    /// Restores a checkpoint's key-value half into an empty store: every
    /// namespace re-created, every entry installed at the checkpoint
    /// timestamp as one store-level batch per namespace.
    fn restore_kv_checkpoint(kv: &KvStore, ck: &Checkpoint) -> TrodResult<()> {
        for ns in &ck.namespaces {
            kv.create_namespace(&ns.name).map_err(TrodError::from)?;
            if ns.entries.is_empty() {
                continue;
            }
            let writes: Vec<KvWrite> = ns
                .entries
                .iter()
                .map(|(key, value)| KvWrite {
                    namespace: ns.name.clone(),
                    key: key.clone(),
                    value: Some(value.clone()),
                })
                .collect();
            kv.apply(&writes, ck.ts.max(1)).map_err(TrodError::from)?;
        }
        Ok(())
    }

    /// Materializes a whole session environment from a decoded
    /// [`Checkpoint`]: a fresh database restored via
    /// [`Database::restore_checkpoint`] and a fresh key-value store with
    /// the checkpoint's namespaces and entries, bound together like any
    /// session. The debugger's deep forks start here and replay only the
    /// aligned history *after* the checkpoint timestamp — nearest
    /// snapshot + delta instead of replay-everything.
    pub fn from_checkpoint(ck: &Checkpoint) -> TrodResult<Session> {
        let db = Database::new();
        db.restore_checkpoint(ck).map_err(TrodError::from)?;
        let kv = KvStore::new();
        Session::restore_kv_checkpoint(&kv, ck)?;
        Ok(Session::with_kv(db, kv))
    }

    /// Forces an environment checkpoint now (capture + durable write
    /// through the attached WAL). `None` when skipped — no WAL, nothing
    /// committed yet, a checkpoint at this timestamp already exists, or
    /// another capture is in flight. See [`Database::checkpoint`].
    pub fn checkpoint(&self) -> TrodResult<Option<(Ts, u64)>> {
        self.inner.db.checkpoint().map_err(TrodError::from)
    }

    /// Re-installs one recovered aligned-history entry: relational
    /// changes through [`Database::apply_entry_with`], kv records decoded
    /// back into [`KvWrite`]s and installed by an injection participant
    /// inside the same publication window — the entry lands in the log
    /// verbatim, original identity and kv records included. Returns the
    /// number of kv writes installed.
    fn recover_entry(db: &Database, kv: &KvStore, entry: &CommittedTxn) -> TrodResult<usize> {
        let mut writes = Vec::new();
        for record in entry
            .changes
            .iter()
            .filter(|c| trod_db::is_kv_table(&c.table))
        {
            let write = kv_write_of_record(record).ok_or_else(|| {
                DbError::Invalid(format!(
                    "recovered kv change record on `{}` key {} does not decode",
                    record.table, record.key
                ))
            })?;
            if !kv.has_namespace(&write.namespace) {
                return Err(KvError::UnknownNamespace(write.namespace).into());
            }
            writes.push(write);
        }
        if writes.is_empty() {
            db.apply_entry_with(entry, &[])?;
        } else {
            let participant = InjectionParticipant {
                kv: kv.clone(),
                writes: &writes,
            };
            db.apply_entry_with(entry, &[&participant])?;
        }
        Ok(writes.len())
    }

    /// Creates a key-value namespace and — on a durable session — logs
    /// the DDL so recovery re-creates it before replaying the commits
    /// that write to it. Use this instead of `KvStore::create_namespace`
    /// whenever the session is durable.
    pub fn create_namespace(&self, name: &str) -> TrodResult<()> {
        let kv =
            self.inner.kv.as_ref().ok_or_else(|| {
                KvError::UnknownNamespace("<no key-value store bound>".to_string())
            })?;
        kv.create_namespace(name)?;
        if let Some(wal) = self.inner.db.wal() {
            let record = WalRecord::CreateNamespace {
                name: name.to_string(),
            };
            let lsn = wal.append_record(&record).map_err(TrodError::Storage)?;
            wal.sync_to(lsn).map_err(TrodError::Storage)?;
        }
        Ok(())
    }

    /// Garbage-collects history in BOTH stores under one horizon: `ts`
    /// clamped to the relational active-transaction watermark and the
    /// published clock, so neither store drops a version an active
    /// transaction can still read. The relational side spills the aligned
    /// log entries it truncates into the retention policy (if installed)
    /// — and since those entries carry the `kv:<namespace>` change
    /// records verbatim, the spilled history exactly covers the kv
    /// versions truncated here: kv time travel below the horizon remains
    /// reconstructable from spilled + live aligned history, closing the
    /// GC coordination gap between the stores.
    pub fn gc_before(&self, ts: Ts) -> GcStats {
        let db = &self.inner.db;
        let horizon = ts
            .min(db.min_active_start_ts().unwrap_or(Ts::MAX))
            .min(db.current_ts());
        let (relational_versions, log_entries) = db.gc_before(horizon);
        let kv_versions = self
            .inner
            .kv
            .as_ref()
            .map(|kv| kv.gc_before(horizon))
            .unwrap_or(0);
        GcStats {
            horizon,
            relational_versions,
            log_entries,
            kv_versions,
        }
    }

    /// Begins a serializable, untraced transaction.
    pub fn begin(&self) -> Txn {
        self.begin_with(TxnOptions::new())
    }

    /// Begins a serializable transaction traced under the given
    /// request/handler/function context.
    pub fn begin_traced(&self, ctx: TxnContext) -> Txn {
        self.begin_with(TxnOptions::new().traced(ctx))
    }

    /// Begins a transaction with explicit options.
    pub fn begin_with(&self, opts: TxnOptions) -> Txn {
        let rel = self.inner.db.begin_with(opts.isolation);
        Txn {
            txn_id: rel.id(),
            snapshot_ts: rel.start_ts(),
            session: self.clone(),
            rel: Some(rel),
            kv_reads: BTreeSet::new(),
            kv_writes: BTreeMap::new(),
            reads: Vec::new(),
            ctx: opts.ctx,
        }
    }
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("kv", &self.inner.kv.is_some())
            .field("traced", &self.inner.tracer.is_some())
            .finish()
    }
}

/// The text key of a traced/captured kv row image (key position 0 of the
/// `(kv_key, kv_value)` wire shape every `kv:` read trace and change
/// record uses). `None` for a non-text key — malformed or foreign data.
/// One source of truth for the format: [`kv_write_of_record`] and the
/// debugger's replay/reenactment verification all decode through here.
pub fn kv_image_key(key: &Key) -> Option<&str> {
    match key.values().first() {
        Some(Value::Text(k)) => Some(k),
        _ => None,
    }
}

/// The text value of a traced/captured kv row image (row index 1 of the
/// `(kv_key, kv_value)` wire shape); `None` when absent or erased. See
/// [`kv_image_key`].
pub fn kv_image_value(row: &Row) -> Option<&str> {
    row.get(1).and_then(|v| v.as_text())
}

/// Reconstructs the [`KvWrite`] a `kv:<namespace>` change record captured.
fn kv_write_of_record(record: &ChangeRecord) -> Option<KvWrite> {
    let namespace = record.table.strip_prefix(trod_db::KV_TABLE_PREFIX)?;
    let key = kv_image_key(&record.key)?.to_string();
    let value = record
        .op
        .after()
        .and_then(kv_image_value)
        .map(|v| v.to_string());
    Some(KvWrite {
        namespace: namespace.to_string(),
        key,
        value,
    })
}

/// Encodes buffered key-value writes as CDC records on the virtual
/// `kv:<namespace>` tables, before images read from the store's current
/// state. Callers hold the namespaces' commit locks, so the state is
/// stable between the read and the install.
fn kv_change_records(kv: &KvStore, writes: &[KvWrite]) -> Vec<ChangeRecord> {
    let mut out = Vec::with_capacity(writes.len());
    for write in writes {
        let table = kv_table_name(&write.namespace);
        let key = Key::single(write.key.as_str());
        let before = kv
            .get_latest(&write.namespace, &write.key)
            .expect("namespace validated before commit");
        let before_row = before
            .as_ref()
            .map(|v| Row::from(vec![Value::Text(write.key.clone()), Value::Text(v.clone())]));
        let after_row = write
            .value
            .as_ref()
            .map(|v| Row::from(vec![Value::Text(write.key.clone()), Value::Text(v.clone())]));
        let record = match (before_row, after_row) {
            (None, Some(after)) => ChangeRecord::insert(table, key, after),
            (Some(before), Some(after)) => ChangeRecord::update(table, key, before, after),
            (Some(before), None) => ChangeRecord::delete(table, key, before),
            (None, None) => continue, // delete of a key that never existed
        };
        out.push(record);
    }
    out
}

/// The key-value side of a [`Session::apply_changes`] injection: decoded
/// writes re-applied through the coordinator as a commit participant, so
/// injected history takes the exact locks, publication window and aligned
/// log shape a live polyglot commit takes. Unlike [`KvParticipant`] it
/// carries no read set — injection bypasses validation by design, exactly
/// like the relational [`Database::apply_changes`] — but it keeps the
/// per-namespace timestamp-freshness veto, the one condition that could
/// make install fail.
struct InjectionParticipant<'a> {
    kv: KvStore,
    writes: &'a [KvWrite],
}

impl CommitParticipant for InjectionParticipant<'_> {
    fn resources(&self) -> Vec<String> {
        let mut namespaces: Vec<&str> = self.writes.iter().map(|w| w.namespace.as_str()).collect();
        namespaces.sort_unstable();
        namespaces.dedup();
        namespaces.into_iter().map(kv_table_name).collect()
    }

    fn resource_lock(&self, resource: &str) -> Arc<Mutex<()>> {
        let namespace = resource
            .strip_prefix(trod_db::KV_TABLE_PREFIX)
            .unwrap_or(resource);
        self.kv
            .commit_lock_of(namespace)
            .expect("namespace validated before injection")
    }

    fn validate(&self, min_commit_ts: Ts) -> TrodResult<()> {
        for write in self.writes {
            let ns_latest = self.kv.last_commit_ts_of(&write.namespace)?;
            if ns_latest >= min_commit_ts {
                return Err(KvError::StaleCommitTimestamp {
                    given: min_commit_ts,
                    latest: ns_latest,
                }
                .into());
            }
        }
        Ok(())
    }

    fn has_writes(&self) -> bool {
        !self.writes.is_empty()
    }

    fn install(&self, commit_ts: Ts) -> Vec<ChangeRecord> {
        // Injection is a debugging path: computing before images here,
        // inside the publication window, keeps the code simple; the
        // window is uncontended in a development fork.
        let records = kv_change_records(&self.kv, self.writes);
        self.kv
            .apply_claimed(self.writes, commit_ts)
            .expect("validated key-value batch cannot fail to apply");
        records
    }
}

/// The unified transaction handle: relational and key-value operations at
/// one snapshot, committed atomically at one timestamp through the commit
/// coordinator, with one error type and one provenance record.
///
/// Dropping an uncommitted `Txn` aborts it (without emitting an abort
/// trace; use [`Txn::abort`] to record the attempt).
pub struct Txn {
    session: Session,
    txn_id: TxnId,
    snapshot_ts: Ts,
    rel: Option<trod_db::Transaction>,
    /// (namespace, key) pairs observed by reads; validated under
    /// serializable isolation (any key in this set that gained a newer
    /// version after the snapshot aborts the commit).
    kv_reads: BTreeSet<(String, String)>,
    /// (namespace, key) → buffered value (None = delete).
    kv_writes: BTreeMap<(String, String), Option<String>>,
    /// Read provenance across both stores (captured only when the
    /// session has a tracer).
    reads: Vec<ReadTrace>,
    ctx: Option<TxnContext>,
}

impl Txn {
    fn rel_mut(&mut self) -> &mut trod_db::Transaction {
        self.rel.as_mut().expect("transaction already finished")
    }

    fn traced(&self) -> bool {
        self.session.inner.tracer.is_some()
    }

    /// Captures one read's provenance — the single policy point for read
    /// capture: records are built (and rows cloned) only when the session
    /// has a tracer.
    fn trace_read(&mut self, build: impl FnOnce() -> ReadTrace) {
        if self.traced() {
            let trace = build();
            self.reads.push(trace);
        }
    }

    /// The database-assigned transaction id (also used in provenance).
    pub fn txn_id(&self) -> TxnId {
        self.txn_id
    }

    /// The shared snapshot timestamp both stores are read at.
    pub fn snapshot_ts(&self) -> Ts {
        self.snapshot_ts
    }

    /// The isolation level this transaction runs under.
    pub fn isolation(&self) -> IsolationLevel {
        self.rel.as_ref().map(|t| t.isolation()).unwrap_or_default()
    }

    /// The tracing context, if any.
    pub fn context(&self) -> Option<&TxnContext> {
        self.ctx.as_ref()
    }

    // ------------------------------------------------------------------
    // Relational operations (with read provenance)
    // ------------------------------------------------------------------

    /// Point read from the relational store.
    pub fn get(&mut self, table: &str, key: &Key) -> TrodResult<Option<Arc<Row>>> {
        let result = self.rel_mut().get(table, key)?;
        let read_ts = self
            .rel
            .as_ref()
            .map(|t| t.last_read_ts())
            .unwrap_or_default();
        self.trace_read(|| ReadTrace {
            table: table.to_string(),
            query: format!("Get {table}{key}"),
            read_ts,
            rows: result
                .clone()
                .map(|r| vec![(key.clone(), r)])
                .unwrap_or_default(),
        });
        Ok(result)
    }

    /// Predicate scan over the relational store.
    pub fn scan(&mut self, table: &str, pred: &Predicate) -> TrodResult<Vec<(Key, Arc<Row>)>> {
        let result = self.rel_mut().scan(table, pred)?;
        let read_ts = self
            .rel
            .as_ref()
            .map(|t| t.last_read_ts())
            .unwrap_or_default();
        self.trace_read(|| ReadTrace {
            table: table.to_string(),
            query: format!("Scan {table} WHERE {pred}"),
            read_ts,
            rows: result.clone(),
        });
        Ok(result)
    }

    /// Existence check over the relational store (the "Check if (U1, F2)
    /// exists" row of the paper's Table 2).
    pub fn exists(&mut self, table: &str, pred: &Predicate) -> TrodResult<bool> {
        let result = self.rel_mut().scan(table, pred)?;
        let read_ts = self
            .rel
            .as_ref()
            .map(|t| t.last_read_ts())
            .unwrap_or_default();
        self.trace_read(|| ReadTrace {
            table: table.to_string(),
            query: format!("Check if {pred} exists in {table}"),
            read_ts,
            rows: result.clone(),
        });
        Ok(!result.is_empty())
    }

    /// Count with read provenance.
    pub fn count(&mut self, table: &str, pred: &Predicate) -> TrodResult<usize> {
        let result = self.rel_mut().scan(table, pred)?;
        let read_ts = self
            .rel
            .as_ref()
            .map(|t| t.last_read_ts())
            .unwrap_or_default();
        self.trace_read(|| ReadTrace {
            table: table.to_string(),
            query: format!("Count {pred} in {table}"),
            read_ts,
            rows: result.clone(),
        });
        Ok(result.len())
    }

    /// Insert into the relational store (write provenance is captured
    /// from the commit's CDC records).
    pub fn insert(&mut self, table: &str, row: Row) -> TrodResult<Key> {
        Ok(self.rel_mut().insert(table, row)?)
    }

    /// Update a relational row by primary key.
    pub fn update(&mut self, table: &str, key: &Key, new_row: Row) -> TrodResult<()> {
        Ok(self.rel_mut().update(table, key, new_row)?)
    }

    /// Updates every relational row matching `pred` by applying `f`.
    /// Returns the number of rows updated.
    pub fn update_where<F>(&mut self, table: &str, pred: &Predicate, f: F) -> TrodResult<usize>
    where
        F: FnMut(&Row) -> Row,
    {
        Ok(self.rel_mut().update_where(table, pred, f)?)
    }

    /// Delete a relational row by primary key.
    pub fn delete(&mut self, table: &str, key: &Key) -> TrodResult<bool> {
        Ok(self.rel_mut().delete(table, key)?)
    }

    /// Deletes every relational row matching `pred`. Returns the number
    /// deleted.
    pub fn delete_where(&mut self, table: &str, pred: &Predicate) -> TrodResult<usize> {
        Ok(self.rel_mut().delete_where(table, pred)?)
    }

    /// The buffered (uncommitted) relational writes, as CDC records.
    pub fn pending_changes(&self) -> Vec<ChangeRecord> {
        self.rel
            .as_ref()
            .map(|t| t.pending_changes())
            .unwrap_or_default()
    }

    // ------------------------------------------------------------------
    // Key-value operations (with read provenance)
    // ------------------------------------------------------------------

    fn kv_store(&self) -> TrodResult<&KvStore> {
        self.session
            .inner
            .kv
            .as_ref()
            .ok_or_else(|| KvError::UnknownNamespace("<no key-value store bound>".into()).into())
    }

    /// The visibility timestamp key-value reads are served at: the shared
    /// snapshot under snapshot isolation / serializable, the published
    /// clock under read committed — the same rule the relational side
    /// follows, so one transaction never sees two different points in
    /// time across its stores.
    fn kv_read_ts(&self) -> Ts {
        match self.isolation() {
            IsolationLevel::ReadCommitted => self.session.inner.db.current_ts(),
            IsolationLevel::SnapshotIsolation | IsolationLevel::Serializable => self.snapshot_ts,
        }
    }

    /// Reads a key from the key-value store at this transaction's read
    /// timestamp (see [`Txn::kv_read_ts`]), seeing its own buffered
    /// writes first.
    pub fn kv_get(&mut self, namespace: &str, key: &str) -> TrodResult<Option<String>> {
        let id = (namespace.to_string(), key.to_string());
        if let Some(buffered) = self.kv_writes.get(&id) {
            return Ok(buffered.clone());
        }
        let read_ts = self.kv_read_ts();
        let kv = self.kv_store()?.clone();
        let value = kv.get_as_of(namespace, key, read_ts)?;
        self.kv_reads.insert(id);
        self.trace_read(|| ReadTrace {
            table: kv_table_name(namespace),
            query: format!("Get {key}"),
            read_ts,
            rows: value
                .as_ref()
                .map(|v| {
                    vec![(
                        Key::single(key),
                        Arc::new(Row::from(vec![
                            Value::Text(key.to_string()),
                            Value::Text(v.clone()),
                        ])),
                    )]
                })
                .unwrap_or_default(),
        });
        Ok(value)
    }

    /// Prefix scan over the key-value store at this transaction's read
    /// timestamp (see [`Txn::kv_read_ts`]). Buffered writes of this
    /// transaction are *not* merged into the scan (matching the behaviour
    /// of most KV stores' snapshot iterators).
    pub fn kv_scan_prefix(
        &mut self,
        namespace: &str,
        prefix: &str,
    ) -> TrodResult<Vec<(String, String)>> {
        let read_ts = self.kv_read_ts();
        let kv = self.kv_store()?.clone();
        let result = kv.scan_prefix_as_of(namespace, prefix, read_ts)?;
        for (key, _) in &result {
            self.kv_reads.insert((namespace.to_string(), key.clone()));
        }
        self.trace_read(|| ReadTrace {
            table: kv_table_name(namespace),
            query: format!("Scan prefix {prefix}"),
            read_ts,
            rows: result
                .iter()
                .map(|(k, v)| {
                    (
                        Key::single(k.as_str()),
                        Arc::new(Row::from(vec![
                            Value::Text(k.clone()),
                            Value::Text(v.clone()),
                        ])),
                    )
                })
                .collect(),
        });
        Ok(result)
    }

    /// Buffers a key-value put.
    pub fn kv_put(&mut self, namespace: &str, key: &str, value: &str) -> TrodResult<()> {
        if !self.kv_store()?.has_namespace(namespace) {
            return Err(KvError::UnknownNamespace(namespace.to_string()).into());
        }
        self.kv_writes.insert(
            (namespace.to_string(), key.to_string()),
            Some(value.to_string()),
        );
        Ok(())
    }

    /// Buffers a key-value delete.
    pub fn kv_delete(&mut self, namespace: &str, key: &str) -> TrodResult<()> {
        if !self.kv_store()?.has_namespace(namespace) {
            return Err(KvError::UnknownNamespace(namespace.to_string()).into());
        }
        self.kv_writes
            .insert((namespace.to_string(), key.to_string()), None);
        Ok(())
    }

    /// The buffered key-value writes in deterministic order.
    pub fn pending_kv_writes(&self) -> Vec<KvWrite> {
        self.kv_writes
            .iter()
            .map(|((namespace, key), value)| KvWrite {
                namespace: namespace.clone(),
                key: key.clone(),
                value: value.clone(),
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Commit / abort
    // ------------------------------------------------------------------

    /// Commits atomically across all participating stores at one commit
    /// timestamp, through the sharded commit coordinator (see the module
    /// docs — there is no cross-store lock; disjoint footprints commit
    /// concurrently).
    pub fn commit(mut self) -> TrodResult<TxnCommit> {
        let rel = self.rel.take().expect("transaction already finished");
        let kv_writes = self.pending_kv_writes();

        let needs_participant = !self.kv_writes.is_empty() || !self.kv_reads.is_empty();
        let result = if needs_participant {
            if !kv_writes.is_empty() {
                // Standalone store-level commits allocate timestamps from
                // the store's own counter; if one outran this database's
                // allocator on a namespace we write, catch the allocator
                // up first so the participant's freshness veto only fires
                // on a genuine mid-commit race (which a retry absorbs).
                let kv = self.kv_store()?;
                let floor = kv_writes
                    .iter()
                    .map(|w| kv.last_commit_ts_of(&w.namespace).unwrap_or(0))
                    .max()
                    .unwrap_or(0);
                self.session.database().ensure_ts_at_least(floor);
            }
            // Mirror the relational coordinator's SSI decision so one
            // commit uses one protocol across both stores (and the
            // escape hatches keep their decision-equivalence meaning).
            let db = self.session.database();
            let lock_free_reads = !db.read_lock_commit() && !db.serial_commit();
            let participant = KvParticipant {
                kv: self.kv_store()?.clone(),
                snapshot_ts: self.snapshot_ts,
                isolation: rel.isolation(),
                lock_free_reads,
                reads: &self.kv_reads,
                writes: &kv_writes,
                records: std::cell::RefCell::new(None),
            };
            rel.commit_with_participants(&[&participant])
        } else {
            rel.commit_with_participants(&[])
        };

        match result {
            Ok(info) => {
                let relational_changes = info
                    .changes
                    .iter()
                    .filter(|c| !trod_db::is_kv_table(&c.table))
                    .count();
                let kv_installed = info.changes.len() - relational_changes;
                if self.traced() {
                    self.emit_trace(info.commit_ts, true, info.changes.clone());
                }
                Ok(TxnCommit {
                    txn_id: self.txn_id,
                    commit_ts: info.commit_ts,
                    relational_changes,
                    kv_writes: kv_installed,
                    changes: info.changes,
                })
            }
            Err(e) => {
                self.emit_trace(0, false, Vec::new());
                Err(e)
            }
        }
    }

    /// Aborts the transaction on all stores; an aborted-transaction trace
    /// is recorded so aborted attempts remain visible to declarative
    /// debugging.
    pub fn abort(mut self) {
        if let Some(rel) = self.rel.take() {
            rel.abort();
        }
        self.emit_trace(0, false, Vec::new());
    }

    fn emit_trace(&mut self, commit_ts: Ts, committed: bool, writes: Vec<ChangeRecord>) {
        let Some(tracer) = self.session.inner.tracer.clone() else {
            return;
        };
        let ctx = self.ctx.clone().unwrap_or_default();
        let timestamp = tracer.now();
        tracer.record_txn(TxnTrace {
            txn_id: self.txn_id,
            ctx,
            timestamp,
            snapshot_ts: self.snapshot_ts,
            commit_ts,
            committed,
            reads: std::mem::take(&mut self.reads),
            writes,
        });
    }
}

impl fmt::Debug for Txn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Txn")
            .field("txn_id", &self.txn_id)
            .field("snapshot_ts", &self.snapshot_ts)
            .field("kv_writes", &self.kv_writes.len())
            .finish()
    }
}

/// The key-value side of a committing [`Txn`], handed to the commit
/// coordinator. One per commit; carries the transaction's buffered
/// key-value reads and writes.
struct KvParticipant<'a> {
    kv: KvStore,
    snapshot_ts: Ts,
    isolation: IsolationLevel,
    /// SSI mode (mirrors the relational coordinator's decision, from
    /// [`Database::read_lock_commit`] and [`Database::serial_commit`]):
    /// read-only namespaces contribute no commit locks; their reads are
    /// checked optimistically in [`CommitParticipant::validate`] and
    /// re-checked exactly, inside the publication window, by
    /// [`CommitParticipant::revalidate_reads`].
    lock_free_reads: bool,
    reads: &'a BTreeSet<(String, String)>,
    writes: &'a [KvWrite],
    /// Change records (with before images) precomputed at the end of
    /// validation, while the namespace locks are held and the store state
    /// is already stable — so the serial publication window only pays for
    /// the actual install, not the before-image reads.
    records: std::cell::RefCell<Option<Vec<ChangeRecord>>>,
}

impl KvParticipant<'_> {
    /// Encodes the buffered writes as CDC records on the virtual
    /// `kv:<namespace>` tables, with before images taken from the current
    /// store state (stable: the namespaces' commit locks are held).
    fn change_records(&self) -> Vec<ChangeRecord> {
        kv_change_records(&self.kv, self.writes)
    }
}

impl CommitParticipant for KvParticipant<'_> {
    fn resources(&self) -> Vec<String> {
        let mut namespaces: Vec<&str> = self.writes.iter().map(|w| w.namespace.as_str()).collect();
        if matches!(self.isolation, IsolationLevel::Serializable) && !self.lock_free_reads {
            // 2PL baseline: validated reads must stay valid until
            // publication, exactly like serializable read-table locks on
            // the relational side. Under SSI the read namespaces stay
            // lock-free and are re-validated in the publication window
            // instead.
            namespaces.extend(self.reads.iter().map(|(ns, _)| ns.as_str()));
        }
        namespaces.sort_unstable();
        namespaces.dedup();
        namespaces.into_iter().map(kv_table_name).collect()
    }

    fn resource_lock(&self, resource: &str) -> Arc<Mutex<()>> {
        let namespace = resource
            .strip_prefix(trod_db::KV_TABLE_PREFIX)
            .unwrap_or(resource);
        self.kv
            .commit_lock_of(namespace)
            .expect("namespace validated at buffer time")
    }

    fn validate(&self, min_commit_ts: Ts) -> TrodResult<()> {
        if matches!(self.isolation, IsolationLevel::Serializable) {
            // Serializable reads happen at the snapshot, so any newer
            // version of a read key is a conflict.
            for (namespace, key) in self.reads {
                let latest = self.kv.version_of(namespace, key)?;
                if latest > self.snapshot_ts {
                    return Err(KvError::Conflict {
                        namespace: namespace.clone(),
                        key: key.clone(),
                    }
                    .into());
                }
            }
        }
        // First-committer-wins on writes, under every isolation level.
        for write in self.writes {
            let latest = self.kv.version_of(&write.namespace, &write.key)?;
            if latest > self.snapshot_ts {
                return Err(KvError::Conflict {
                    namespace: write.namespace.clone(),
                    key: write.key.clone(),
                }
                .into());
            }
            // A store-level commit outside the coordinator (standalone
            // KvTransaction, raw apply) may have pushed this namespace's
            // timestamp past what the coordinator will allocate. Veto
            // here — fallibly, nothing installed anywhere — so install
            // (which runs in the publication window and must not fail)
            // never sees a stale timestamp. The namespace locks are held,
            // and standalone commits take them too, so the check cannot
            // be invalidated between here and install.
            let ns_latest = self.kv.last_commit_ts_of(&write.namespace)?;
            if ns_latest >= min_commit_ts {
                return Err(KvError::StaleCommitTimestamp {
                    given: min_commit_ts,
                    latest: ns_latest,
                }
                .into());
            }
        }
        // Validation passed: the store state for our namespaces is locked
        // and final, so take the before images now rather than inside the
        // serial publication window.
        if !self.writes.is_empty() {
            *self.records.borrow_mut() = Some(self.change_records());
        }
        Ok(())
    }

    fn has_writes(&self) -> bool {
        !self.writes.is_empty()
    }

    fn needs_revalidation(&self) -> bool {
        self.lock_free_reads
            && matches!(self.isolation, IsolationLevel::Serializable)
            && self.reads.iter().any(|(ns, _)| {
                // Reads on written namespaces are locked anyway (the
                // write locks were held through validate), so only reads
                // on purely-read namespaces need the in-window re-check.
                !self.writes.iter().any(|w| w.namespace == *ns)
            })
    }

    fn revalidate_reads(&self, commit_ts: Ts) -> TrodResult<()> {
        for (namespace, key) in self.reads {
            if self.writes.iter().any(|w| w.namespace == *namespace) {
                continue;
            }
            if self
                .kv
                .key_modified_in(namespace, key, self.snapshot_ts, commit_ts)?
            {
                return Err(KvError::Conflict {
                    namespace: namespace.clone(),
                    key: key.clone(),
                }
                .into());
            }
        }
        Ok(())
    }

    fn install(&self, commit_ts: Ts) -> Vec<ChangeRecord> {
        if self.writes.is_empty() {
            return Vec::new();
        }
        let records = self
            .records
            .borrow_mut()
            .take()
            .unwrap_or_else(|| self.change_records());
        self.kv
            .apply_claimed(self.writes, commit_ts)
            .expect("validated key-value batch cannot fail to apply");
        records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trod_db::{row, DataType, DbError, Schema, TrodError};
    use trod_trace::TraceEvent;

    fn orders_db() -> Database {
        let db = Database::new();
        db.create_table(
            "orders",
            Schema::builder()
                .column("id", DataType::Int)
                .column("item", DataType::Text)
                .primary_key(&["id"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db
    }

    fn session() -> Session {
        let kv = KvStore::new();
        kv.create_namespace("sessions").unwrap();
        Session::with_kv(orders_db(), kv)
    }

    #[test]
    fn atomic_commit_spans_both_stores_with_one_timestamp() {
        let session = session();
        let mut txn = session.begin();
        txn.insert("orders", row![1i64, "widget"]).unwrap();
        txn.kv_put("sessions", "user-1", "cart:widget").unwrap();
        let commit = txn.commit().unwrap();
        assert_eq!(commit.relational_changes, 1);
        assert_eq!(commit.kv_writes, 1);

        // Both stores see the data, versioned at the same timestamp.
        assert_eq!(
            session
                .database()
                .get_latest("orders", &Key::single(1i64))
                .unwrap(),
            Some(std::sync::Arc::new(row![1i64, "widget"]))
        );
        assert_eq!(
            session.kv().get_latest("sessions", "user-1").unwrap(),
            Some("cart:widget".into())
        );
        assert_eq!(
            session.kv().version_of("sessions", "user-1").unwrap(),
            commit.commit_ts
        );

        // The relational transaction log IS the aligned log: one entry,
        // carrying the changes of both stores at one timestamp.
        let rel_log = session.database().log_entries();
        assert_eq!(rel_log.len(), 1);
        assert!(rel_log[0].writes_table("orders"));
        assert!(rel_log[0].writes_table(&kv_table_name("sessions")));
        let aligned = session.aligned_log();
        assert_eq!(aligned.len(), 1);
        assert!(aligned[0].spans_both_stores());
        assert_eq!(aligned[0].commit_ts, commit.commit_ts);
        assert_eq!(
            aligned[0].kv,
            vec![KvWrite::put("sessions", "user-1", "cart:widget")]
        );
    }

    #[test]
    fn kv_only_transactions_still_appear_in_both_logs() {
        let session = session();
        let mut txn = session.begin();
        txn.kv_put("sessions", "user-2", "cart:empty").unwrap();
        let commit = txn.commit().unwrap();
        assert_eq!(commit.relational_changes, 0);
        assert_eq!(commit.kv_writes, 1);
        assert!(commit.commit_ts > 0);
        assert_eq!(session.aligned_log().len(), 1);
        // A KV-only commit still lands in the relational transaction log —
        // alignment by construction, no marker table needed.
        assert!(session
            .database()
            .log_entries()
            .iter()
            .any(|e| e.writes_table(&kv_table_name("sessions"))));
    }

    #[test]
    fn conflicting_kv_writers_abort_and_leave_relational_store_unchanged() {
        let session = session();
        let mut first = session.begin();
        let mut second = session.begin();
        first.kv_put("sessions", "k", "first").unwrap();
        second.kv_put("sessions", "k", "second").unwrap();
        second.insert("orders", row![7i64, "gadget"]).unwrap();
        first.commit().unwrap();

        let err = second.commit().unwrap_err();
        assert!(matches!(err, TrodError::KeyValue(KvError::Conflict { .. })));
        // The loser's relational insert was rolled back.
        assert_eq!(
            session
                .database()
                .get_latest("orders", &Key::single(7i64))
                .unwrap(),
            None
        );
        assert_eq!(
            session.kv().get_latest("sessions", "k").unwrap(),
            Some("first".into())
        );
        assert_eq!(session.aligned_log().len(), 1);
    }

    #[test]
    fn relational_conflicts_leave_kv_store_unchanged() {
        let session = session();
        let mut first = session.begin();
        let mut second = session.begin();
        first.insert("orders", row![1i64, "widget"]).unwrap();
        second.insert("orders", row![1i64, "gadget"]).unwrap();
        second.kv_put("sessions", "loser", "state").unwrap();
        first.commit().unwrap();

        let err = second.commit().unwrap_err();
        assert!(matches!(err, TrodError::Relational(_)));
        assert_eq!(session.kv().get_latest("sessions", "loser").unwrap(), None);
        assert_eq!(session.aligned_log().len(), 1);
    }

    #[test]
    fn snapshot_reads_across_stores_and_read_your_writes() {
        let session = session();
        let mut setup = session.begin();
        setup.insert("orders", row![1i64, "widget"]).unwrap();
        setup.kv_put("sessions", "user-1", "v1").unwrap();
        setup.commit().unwrap();

        let mut reader = session.begin();
        // A concurrent writer commits after the reader began.
        let mut writer = session.begin();
        writer.kv_put("sessions", "user-1", "v2").unwrap();
        writer.commit().unwrap();

        // The reader still sees the snapshot value in the KV store and the
        // relational row.
        assert_eq!(
            reader.kv_get("sessions", "user-1").unwrap(),
            Some("v1".into())
        );
        assert_eq!(
            reader.get("orders", &Key::single(1i64)).unwrap(),
            Some(std::sync::Arc::new(row![1i64, "widget"]))
        );
        // Read-your-own-writes.
        reader.kv_put("sessions", "scratch", "tmp").unwrap();
        assert_eq!(
            reader.kv_get("sessions", "scratch").unwrap(),
            Some("tmp".into())
        );
        reader.abort();
    }

    #[test]
    fn prefix_scans_record_read_versions_for_validation() {
        let session = session();
        let mut setup = session.begin();
        setup.kv_put("sessions", "user:1", "a").unwrap();
        setup.kv_put("sessions", "user:2", "b").unwrap();
        setup.commit().unwrap();

        let mut txn = session.begin();
        let scanned = txn.kv_scan_prefix("sessions", "user:").unwrap();
        assert_eq!(scanned.len(), 2);
        // Another writer changes a scanned key.
        let mut writer = session.begin();
        writer.kv_put("sessions", "user:1", "changed").unwrap();
        writer.commit().unwrap();
        // The scanning transaction now fails validation when it writes.
        txn.kv_put("sessions", "other", "x").unwrap();
        assert!(txn.commit().is_err());
    }

    #[test]
    fn read_only_transactions_commit_without_logging() {
        let session = session();
        let mut txn = session.begin();
        assert_eq!(txn.get("orders", &Key::single(1i64)).unwrap(), None);
        assert_eq!(txn.kv_get("sessions", "user-1").unwrap(), None);
        let commit = txn.commit().unwrap();
        assert_eq!(commit.kv_writes, 0);
        assert!(session.aligned_log().is_empty());
    }

    #[test]
    fn snapshot_isolation_skips_kv_read_validation_but_not_write_conflicts() {
        let session = session();
        let mut setup = session.begin();
        setup.kv_put("sessions", "k", "v0").unwrap();
        setup.commit().unwrap();

        // Under snapshot isolation a stale read does not abort...
        let mut si =
            session.begin_with(TxnOptions::new().isolation(IsolationLevel::SnapshotIsolation));
        assert_eq!(si.kv_get("sessions", "k").unwrap(), Some("v0".into()));
        let mut writer = session.begin();
        writer.kv_put("sessions", "k", "v1").unwrap();
        writer.commit().unwrap();
        si.kv_put("sessions", "other", "x").unwrap();
        si.commit().unwrap();

        // ...but a write-write conflict still does.
        let mut a =
            session.begin_with(TxnOptions::new().isolation(IsolationLevel::SnapshotIsolation));
        let mut b =
            session.begin_with(TxnOptions::new().isolation(IsolationLevel::SnapshotIsolation));
        a.kv_put("sessions", "k", "a").unwrap();
        b.kv_put("sessions", "k", "b").unwrap();
        a.commit().unwrap();
        assert!(matches!(
            b.commit().unwrap_err(),
            TrodError::KeyValue(KvError::Conflict { .. })
        ));
    }

    #[test]
    fn traced_transactions_emit_one_unified_provenance_record() {
        let kv = KvStore::new();
        kv.create_namespace("sessions").unwrap();
        let tracer = Tracer::new();
        let session = Session::with_tracer(orders_db(), kv, tracer.clone());

        let mut txn = session.begin_traced(TxnContext::new("R1", "checkout", "func:placeOrder"));
        assert!(!txn.exists("orders", &Predicate::eq("id", 1i64)).unwrap());
        txn.insert("orders", row![1i64, "widget"]).unwrap();
        txn.kv_put("sessions", "user-1", "cart:widget").unwrap();
        txn.commit().unwrap();

        let events = tracer.drain();
        assert_eq!(events.len(), 1);
        let TraceEvent::Txn(trace) = &events[0] else {
            panic!("expected a transaction trace");
        };
        assert!(trace.committed);
        assert_eq!(trace.ctx.req_id, "R1");
        // Reads: the relational existence check; writes: the relational
        // insert plus the KV put under the virtual table name.
        assert_eq!(trace.reads.len(), 1);
        assert_eq!(trace.writes.len(), 2);
        let tables = trace.touched_tables();
        assert!(tables.contains(&"orders".to_string()));
        assert!(tables.contains(&"kv:sessions".to_string()));
    }

    #[test]
    fn aborted_traced_transactions_are_recorded() {
        let kv = KvStore::new();
        kv.create_namespace("sessions").unwrap();
        let tracer = Tracer::new();
        let session = Session::with_tracer(orders_db(), kv, tracer.clone());
        let mut txn = session.begin_traced(TxnContext::new("R1", "checkout", "f"));
        txn.kv_put("sessions", "k", "v").unwrap();
        txn.abort();
        let events = tracer.drain();
        assert_eq!(events.len(), 1);
        let TraceEvent::Txn(trace) = &events[0] else {
            panic!("expected a transaction trace");
        };
        assert!(!trace.committed);
        assert_eq!(session.kv().get_latest("sessions", "k").unwrap(), None);
    }

    #[test]
    fn relational_only_sessions_need_no_kv_store() {
        let tracer = Tracer::new();
        let session = Session::builder(orders_db()).tracer(tracer.clone()).build();
        assert!(session.kv_store().is_none());

        let mut txn = session.begin_traced(TxnContext::new("R1", "h", "f"));
        txn.insert("orders", row![1i64, "widget"]).unwrap();
        let commit = txn.commit().unwrap();
        assert_eq!(commit.relational_changes, 1);
        assert_eq!(commit.kv_writes, 0);
        assert_eq!(tracer.drain().len(), 1);

        // KV operations on a KV-less session fail cleanly.
        let mut txn = session.begin();
        assert!(matches!(
            txn.kv_put("sessions", "k", "v").unwrap_err(),
            TrodError::KeyValue(KvError::UnknownNamespace(_))
        ));
        txn.abort();
    }

    #[test]
    fn duplicate_relational_keys_surface_as_relational_errors() {
        let session = session();
        let mut setup = session.begin();
        setup.insert("orders", row![1i64, "widget"]).unwrap();
        setup.commit().unwrap();
        let mut txn = session.begin();
        let err = txn.insert("orders", row![1i64, "dup"]).unwrap_err();
        assert!(matches!(
            err,
            TrodError::Relational(DbError::DuplicateKey { .. })
        ));
        txn.abort();
    }

    #[test]
    fn session_fork_captures_both_stores_at_one_timestamp() {
        let session = session();
        let mut txn = session.begin();
        txn.insert("orders", row![1i64, "widget"]).unwrap();
        txn.kv_put("sessions", "user-1", "cart:widget").unwrap();
        let first = txn.commit().unwrap();
        let mut txn = session.begin();
        txn.update("orders", &Key::single(1i64), row![1i64, "gadget"])
            .unwrap();
        txn.kv_put("sessions", "user-1", "cart:gadget").unwrap();
        txn.commit().unwrap();

        let fork = session.fork_at(first.commit_ts).unwrap();
        // Both stores show the first commit's state, not the second's.
        assert_eq!(
            fork.database()
                .get_latest("orders", &Key::single(1i64))
                .unwrap(),
            Some(std::sync::Arc::new(row![1i64, "widget"]))
        );
        assert_eq!(
            fork.kv().get_latest("sessions", "user-1").unwrap(),
            Some("cart:widget".into())
        );
        // The fork is a working polyglot environment: a mixed commit
        // lands atomically without touching the origin.
        let mut txn = fork.begin();
        txn.insert("orders", row![9i64, "fork-only"]).unwrap();
        txn.kv_put("sessions", "user-9", "fork").unwrap();
        let commit = txn.commit().unwrap();
        assert!(commit.commit_ts > first.commit_ts);
        assert_eq!(session.kv().get_latest("sessions", "user-9").unwrap(), None);
        assert_eq!(
            session
                .database()
                .get_latest("orders", &Key::single(9i64))
                .unwrap(),
            None
        );
    }

    #[test]
    fn apply_changes_injects_polyglot_history_through_the_participant_path() {
        let session = session();
        let mut txn = session.begin();
        txn.insert("orders", row![1i64, "widget"]).unwrap();
        txn.kv_put("sessions", "user-1", "v1").unwrap();
        txn.commit().unwrap();

        let fork = session.fork_empty().unwrap();
        // Replay the aligned history into the empty fork.
        for entry in session.database().log_entries() {
            fork.apply_changes(&entry.changes).unwrap();
        }
        assert_eq!(
            fork.database()
                .get_latest("orders", &Key::single(1i64))
                .unwrap(),
            Some(std::sync::Arc::new(row![1i64, "widget"]))
        );
        assert_eq!(
            fork.kv().get_latest("sessions", "user-1").unwrap(),
            Some("v1".into())
        );
        // The injected commit is one aligned entry in the fork's log,
        // spanning both stores like the original.
        let aligned = fork.aligned_log();
        assert_eq!(aligned.len(), 1);
        assert!(aligned[0].spans_both_stores());
        assert_eq!(
            aligned[0].kv,
            vec![KvWrite::put("sessions", "user-1", "v1")]
        );

        // Deletes round-trip too.
        let mut txn = session.begin();
        txn.kv_delete("sessions", "user-1").unwrap();
        txn.commit().unwrap();
        let entry = session.database().log_entries().pop().unwrap();
        fork.apply_changes(&entry.changes).unwrap();
        assert_eq!(fork.kv().get_latest("sessions", "user-1").unwrap(), None);
    }

    #[test]
    fn apply_changes_rejects_kv_records_without_a_store_or_with_erased_images() {
        let put = ChangeRecord::insert(
            kv_table_name("sessions"),
            Key::single("user-1"),
            Row::from(vec![Value::Text("user-1".into()), Value::Text("v".into())]),
        );

        // No kv store bound: the batch is rejected (the replay layer
        // counts such records as skipped instead).
        let bare = Session::new(orders_db());
        assert!(matches!(
            bare.apply_changes(std::slice::from_ref(&put)).unwrap_err(),
            TrodError::KeyValue(KvError::UnknownNamespace(_))
        ));

        // A redacted (all-NULL image) put is refused rather than decoded
        // as a delete.
        let session = session();
        let erased = ChangeRecord::insert(
            kv_table_name("sessions"),
            Key::single("user-1"),
            Row::from(vec![Value::Null, Value::Null]),
        );
        assert!(matches!(
            session
                .apply_changes(std::slice::from_ref(&erased))
                .unwrap_err(),
            TrodError::Relational(DbError::Invalid(_))
        ));
        // Nothing was installed by the failed batches.
        assert_eq!(session.kv().get_latest("sessions", "user-1").unwrap(), None);
        assert!(session.aligned_log().is_empty());
    }

    #[test]
    fn concurrent_kv_writes_conflict_through_the_unified_error() {
        let kv = KvStore::new();
        kv.create_namespace("sessions").unwrap();
        let session = Session::with_kv(orders_db(), kv);
        let mut txn = session.begin();
        txn.kv_put("sessions", "k", "v").unwrap();
        txn.commit().unwrap();

        let mut a = session.begin();
        let mut b = session.begin();
        a.kv_put("sessions", "k", "a").unwrap();
        b.kv_put("sessions", "k", "b").unwrap();
        a.commit().unwrap();
        let err = b.commit().unwrap_err();
        assert!(matches!(err, TrodError::KeyValue(KvError::Conflict { .. })));
    }
}
