//! The cross-data-store transaction manager.
//!
//! The paper's §5 ("Handling Multiple Data Stores") observes that TROD
//! needs two things from applications that spread their state across a
//! relational DBMS and non-relational stores: transactions that span the
//! stores, and transaction logs that are *aligned* so the provenance of a
//! single request is one coherent history rather than several unrelated
//! ones. [`CrossStore`] provides both over a [`trod_db::Database`] and a
//! [`KvStore`]:
//!
//! * Every [`CrossTxn`] reads both stores at one snapshot (the relational
//!   transaction's start timestamp) and commits atomically: key-value
//!   reads/writes are validated optimistically, the relational transaction
//!   commits first (producing the authoritative commit timestamp), and the
//!   key-value batch is installed at that same timestamp. A commit marker
//!   row in the hidden `__cross_commits` table guarantees that every
//!   cross-store commit appears in the relational transaction log, and a
//!   serialised commit section makes validation + apply atomic across the
//!   two stores.
//! * The [`AlignedCommit`] log records, per commit timestamp, the changes
//!   made to *both* stores — the aligned transaction log the paper calls
//!   for.
//! * With a [`Tracer`] attached, each cross-store transaction emits a
//!   single [`trod_trace::TxnTrace`] whose read and write sets span both
//!   stores (key-value operations appear under the virtual table
//!   `kv:<namespace>`), so the existing provenance database, declarative
//!   debugging and replay work for polyglot applications without change.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use trod_db::{
    ChangeRecord, DataType, Database, DbError, Key, Predicate, Row, Schema, Ts, TxnId, Value,
};
use trod_trace::{ReadTrace, Tracer, TxnContext, TxnTrace};

use crate::kv_table_name;
use crate::store::{KvError, KvStore, KvWrite};

/// Hidden relational table holding one marker row per cross-store commit
/// that wrote key-value data; it forces such commits to appear in the
/// relational transaction log even when they made no application-table
/// writes.
pub const CROSS_COMMITS_TABLE: &str = "__cross_commits";

/// Errors raised by cross-store transactions.
#[derive(Debug, Clone, PartialEq)]
pub enum CrossError {
    /// The relational side failed (validation conflict, unknown table, …).
    Relational(DbError),
    /// The key-value side failed (conflict, unknown namespace, …).
    KeyValue(KvError),
}

impl fmt::Display for CrossError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrossError::Relational(e) => write!(f, "relational store: {e}"),
            CrossError::KeyValue(e) => write!(f, "key-value store: {e}"),
        }
    }
}

impl std::error::Error for CrossError {}

impl From<DbError> for CrossError {
    fn from(e: DbError) -> Self {
        CrossError::Relational(e)
    }
}

impl From<KvError> for CrossError {
    fn from(e: KvError) -> Self {
        CrossError::KeyValue(e)
    }
}

/// Convenient result alias.
pub type CrossResult<T> = Result<T, CrossError>;

/// One entry of the aligned transaction log: everything a cross-store
/// transaction changed, in both stores, at one commit timestamp.
#[derive(Debug, Clone, PartialEq)]
pub struct AlignedCommit {
    pub txn_id: TxnId,
    pub commit_ts: Ts,
    /// Changes to relational application tables (the commit marker is
    /// excluded).
    pub relational: Vec<ChangeRecord>,
    /// Key-value writes applied at the same commit timestamp.
    pub kv: Vec<KvWrite>,
}

impl AlignedCommit {
    /// True if the commit touched both stores.
    pub fn spans_both_stores(&self) -> bool {
        !self.relational.is_empty() && !self.kv.is_empty()
    }
}

/// Summary returned by a successful cross-store commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrossCommit {
    pub txn_id: TxnId,
    pub commit_ts: Ts,
    pub relational_changes: usize,
    pub kv_writes: usize,
}

/// The cross-store transaction manager.
#[derive(Clone)]
pub struct CrossStore {
    db: Database,
    kv: KvStore,
    log: Arc<RwLock<Vec<AlignedCommit>>>,
    commit_lock: Arc<Mutex<()>>,
    tracer: Option<Tracer>,
}

impl CrossStore {
    /// Binds a relational database and a key-value store, creating the
    /// hidden commit-marker table if needed.
    pub fn new(db: Database, kv: KvStore) -> Self {
        Self::build(db, kv, None)
    }

    /// Like [`CrossStore::new`], additionally emitting one provenance
    /// trace per cross-store transaction through `tracer`.
    pub fn with_tracer(db: Database, kv: KvStore, tracer: Tracer) -> Self {
        Self::build(db, kv, Some(tracer))
    }

    fn build(db: Database, kv: KvStore, tracer: Option<Tracer>) -> Self {
        if !db.has_table(CROSS_COMMITS_TABLE) {
            let schema = Schema::builder()
                .column("txn_id", DataType::Int)
                .column("kv_writes", DataType::Int)
                .primary_key(&["txn_id"])
                .build()
                .expect("static schema must be valid");
            db.create_table(CROSS_COMMITS_TABLE, schema)
                .expect("cross-commit table cannot already exist");
        }
        CrossStore {
            db,
            kv,
            log: Arc::new(RwLock::new(Vec::new())),
            commit_lock: Arc::new(Mutex::new(())),
            tracer,
        }
    }

    /// The relational database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The key-value store.
    pub fn kv(&self) -> &KvStore {
        &self.kv
    }

    /// The tracer, if provenance tracing is enabled.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// The aligned transaction log (cross-store commits in commit order).
    pub fn aligned_log(&self) -> Vec<AlignedCommit> {
        self.log.read().clone()
    }

    /// Begins an untraced cross-store transaction.
    pub fn begin(&self) -> CrossTxn {
        self.begin_inner(None)
    }

    /// Begins a cross-store transaction traced under the given
    /// request/handler/function context.
    pub fn begin_traced(&self, ctx: TxnContext) -> CrossTxn {
        self.begin_inner(Some(ctx))
    }

    fn begin_inner(&self, ctx: Option<TxnContext>) -> CrossTxn {
        let rel = self.db.begin();
        let snapshot_ts = rel.start_ts();
        CrossTxn {
            manager: self.clone(),
            txn_id: rel.id(),
            snapshot_ts,
            rel: Some(rel),
            kv_read_versions: BTreeMap::new(),
            kv_writes: BTreeMap::new(),
            reads: Vec::new(),
            ctx,
        }
    }
}

impl fmt::Debug for CrossStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CrossStore")
            .field("aligned_commits", &self.log.read().len())
            .field("traced", &self.tracer.is_some())
            .finish()
    }
}

/// A transaction spanning the relational and key-value stores.
pub struct CrossTxn {
    manager: CrossStore,
    txn_id: TxnId,
    snapshot_ts: Ts,
    rel: Option<trod_db::Transaction>,
    /// (namespace, key) → latest version observed at read time.
    kv_read_versions: BTreeMap<(String, String), Ts>,
    /// (namespace, key) → buffered value (None = delete).
    kv_writes: BTreeMap<(String, String), Option<String>>,
    /// Read provenance across both stores.
    reads: Vec<ReadTrace>,
    ctx: Option<TxnContext>,
}

impl CrossTxn {
    fn rel_mut(&mut self) -> &mut trod_db::Transaction {
        self.rel
            .as_mut()
            .expect("cross transaction already finished")
    }

    /// The relational transaction id (also used in provenance).
    pub fn txn_id(&self) -> TxnId {
        self.txn_id
    }

    /// The shared snapshot timestamp both stores are read at.
    pub fn snapshot_ts(&self) -> Ts {
        self.snapshot_ts
    }

    // ------------------------------------------------------------------
    // Relational operations (with read provenance)
    // ------------------------------------------------------------------

    /// Point read from the relational store.
    pub fn get(&mut self, table: &str, key: &Key) -> CrossResult<Option<Arc<Row>>> {
        let result = self.rel_mut().get(table, key)?;
        self.reads.push(ReadTrace {
            table: table.to_string(),
            query: format!("Get {table}{key}"),
            rows: result
                .clone()
                .map(|r| vec![(key.clone(), r)])
                .unwrap_or_default(),
        });
        Ok(result)
    }

    /// Predicate scan over the relational store.
    pub fn scan(&mut self, table: &str, pred: &Predicate) -> CrossResult<Vec<(Key, Arc<Row>)>> {
        let result = self.rel_mut().scan(table, pred)?;
        self.reads.push(ReadTrace {
            table: table.to_string(),
            query: format!("Scan {table} WHERE {pred}"),
            rows: result.clone(),
        });
        Ok(result)
    }

    /// Existence check over the relational store.
    pub fn exists(&mut self, table: &str, pred: &Predicate) -> CrossResult<bool> {
        let result = self.rel_mut().scan(table, pred)?;
        self.reads.push(ReadTrace {
            table: table.to_string(),
            query: format!("Check if {pred} exists in {table}"),
            rows: result.clone(),
        });
        Ok(!result.is_empty())
    }

    /// Insert into the relational store.
    pub fn insert(&mut self, table: &str, row: Row) -> CrossResult<Key> {
        Ok(self.rel_mut().insert(table, row)?)
    }

    /// Update a relational row by primary key.
    pub fn update(&mut self, table: &str, key: &Key, new_row: Row) -> CrossResult<()> {
        Ok(self.rel_mut().update(table, key, new_row)?)
    }

    /// Delete a relational row by primary key.
    pub fn delete(&mut self, table: &str, key: &Key) -> CrossResult<bool> {
        Ok(self.rel_mut().delete(table, key)?)
    }

    // ------------------------------------------------------------------
    // Key-value operations (with read provenance)
    // ------------------------------------------------------------------

    /// Reads a key from the key-value store at the shared snapshot,
    /// seeing this transaction's own buffered writes first.
    pub fn kv_get(&mut self, namespace: &str, key: &str) -> CrossResult<Option<String>> {
        let id = (namespace.to_string(), key.to_string());
        if let Some(buffered) = self.kv_writes.get(&id) {
            return Ok(buffered.clone());
        }
        let value = self
            .manager
            .kv
            .get_as_of(namespace, key, self.snapshot_ts)?;
        let version = self
            .manager
            .kv
            .version_of(namespace, key)?
            .min(self.snapshot_ts);
        self.kv_read_versions.entry(id).or_insert(version);
        self.reads.push(ReadTrace {
            table: kv_table_name(namespace),
            query: format!("Get {key}"),
            rows: value
                .as_ref()
                .map(|v| {
                    vec![(
                        Key::single(key),
                        Arc::new(Row::from(vec![
                            Value::Text(key.to_string()),
                            Value::Text(v.clone()),
                        ])),
                    )]
                })
                .unwrap_or_default(),
        });
        Ok(value)
    }

    /// Prefix scan over the key-value store at the shared snapshot.
    /// Buffered writes of this transaction are *not* merged into the scan
    /// (matching the behaviour of most KV stores' snapshot iterators).
    pub fn kv_scan_prefix(
        &mut self,
        namespace: &str,
        prefix: &str,
    ) -> CrossResult<Vec<(String, String)>> {
        let result = self
            .manager
            .kv
            .scan_prefix_as_of(namespace, prefix, self.snapshot_ts)?;
        for (key, _) in &result {
            let version = self
                .manager
                .kv
                .version_of(namespace, key)?
                .min(self.snapshot_ts);
            self.kv_read_versions
                .entry((namespace.to_string(), key.clone()))
                .or_insert(version);
        }
        self.reads.push(ReadTrace {
            table: kv_table_name(namespace),
            query: format!("Scan prefix {prefix}"),
            rows: result
                .iter()
                .map(|(k, v)| {
                    (
                        Key::single(k.as_str()),
                        Arc::new(Row::from(vec![
                            Value::Text(k.clone()),
                            Value::Text(v.clone()),
                        ])),
                    )
                })
                .collect(),
        });
        Ok(result)
    }

    /// Buffers a key-value put.
    pub fn kv_put(&mut self, namespace: &str, key: &str, value: &str) -> CrossResult<()> {
        if !self.manager.kv.has_namespace(namespace) {
            return Err(KvError::UnknownNamespace(namespace.to_string()).into());
        }
        self.kv_writes.insert(
            (namespace.to_string(), key.to_string()),
            Some(value.to_string()),
        );
        Ok(())
    }

    /// Buffers a key-value delete.
    pub fn kv_delete(&mut self, namespace: &str, key: &str) -> CrossResult<()> {
        if !self.manager.kv.has_namespace(namespace) {
            return Err(KvError::UnknownNamespace(namespace.to_string()).into());
        }
        self.kv_writes
            .insert((namespace.to_string(), key.to_string()), None);
        Ok(())
    }

    /// The buffered key-value writes in deterministic order.
    pub fn pending_kv_writes(&self) -> Vec<KvWrite> {
        self.kv_writes
            .iter()
            .map(|((namespace, key), value)| KvWrite {
                namespace: namespace.clone(),
                key: key.clone(),
                value: value.clone(),
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Commit / abort
    // ------------------------------------------------------------------

    /// Commits atomically across both stores.
    pub fn commit(mut self) -> CrossResult<CrossCommit> {
        let manager = self.manager.clone();
        let mut rel = self.rel.take().expect("cross transaction already finished");
        let kv_writes = self.pending_kv_writes();

        // Mark the commit in the relational log if key-value data changes;
        // this both aligns the logs and guarantees a real commit timestamp.
        if !kv_writes.is_empty() {
            rel.insert(
                CROSS_COMMITS_TABLE,
                Row::from(vec![
                    Value::Int(self.txn_id as i64),
                    Value::Int(kv_writes.len() as i64),
                ]),
            )?;
        }

        // Serialised commit section across both stores.
        let commit_lock = manager.commit_lock.clone();
        let _guard = commit_lock.lock();

        // 1. Prepare (validate) the key-value side.
        if let Err(e) = self.validate_kv() {
            rel.abort();
            self.emit_trace(0, false, Vec::new(), &[]);
            return Err(e);
        }

        // 2. Commit the relational side; its timestamp becomes the
        //    cross-store commit timestamp.
        let info = match rel.commit() {
            Ok(info) => info,
            Err(e) => {
                self.emit_trace(0, false, Vec::new(), &[]);
                return Err(e.into());
            }
        };
        let relational: Vec<ChangeRecord> = info
            .changes
            .iter()
            .filter(|c| c.table != CROSS_COMMITS_TABLE)
            .cloned()
            .collect();
        let commit_ts = if info.commit_ts > self.snapshot_ts {
            info.commit_ts
        } else {
            // Read-only on both sides: nothing to install or log.
            self.emit_trace(info.commit_ts, true, relational.clone(), &[]);
            return Ok(CrossCommit {
                txn_id: self.txn_id,
                commit_ts: info.commit_ts,
                relational_changes: relational.len(),
                kv_writes: 0,
            });
        };

        // 3. Install the key-value batch at the same commit timestamp.
        let kv_changes = self.kv_change_records(&kv_writes)?;
        if !kv_writes.is_empty() {
            manager.kv.apply(&kv_writes, commit_ts)?;
        }

        // 4. Append to the aligned log and emit provenance.
        manager.log.write().push(AlignedCommit {
            txn_id: self.txn_id,
            commit_ts,
            relational: relational.clone(),
            kv: kv_writes.clone(),
        });
        let mut all_changes = relational.clone();
        all_changes.extend(kv_changes);
        self.emit_trace(commit_ts, true, all_changes, &kv_writes);

        Ok(CrossCommit {
            txn_id: self.txn_id,
            commit_ts,
            relational_changes: relational.len(),
            kv_writes: kv_writes.len(),
        })
    }

    /// Aborts the transaction on both stores.
    pub fn abort(mut self) {
        if let Some(rel) = self.rel.take() {
            rel.abort();
        }
        self.emit_trace(0, false, Vec::new(), &[]);
    }

    fn validate_kv(&self) -> CrossResult<()> {
        for ((namespace, key), observed) in &self.kv_read_versions {
            let latest = self.manager.kv.version_of(namespace, key)?;
            if latest > self.snapshot_ts && latest != *observed {
                return Err(KvError::Conflict {
                    namespace: namespace.clone(),
                    key: key.clone(),
                }
                .into());
            }
        }
        for (namespace, key) in self.kv_writes.keys() {
            let latest = self.manager.kv.version_of(namespace, key)?;
            if latest > self.snapshot_ts {
                return Err(KvError::Conflict {
                    namespace: namespace.clone(),
                    key: key.clone(),
                }
                .into());
            }
        }
        Ok(())
    }

    /// Encodes the buffered key-value writes as CDC records on the virtual
    /// `kv:<namespace>` tables (with before images taken from the current
    /// store state, which the commit lock keeps stable).
    fn kv_change_records(&self, writes: &[KvWrite]) -> CrossResult<Vec<ChangeRecord>> {
        let mut out = Vec::with_capacity(writes.len());
        for write in writes {
            let table = kv_table_name(&write.namespace);
            let key = Key::single(write.key.as_str());
            let before = self.manager.kv.get_latest(&write.namespace, &write.key)?;
            let before_row = before
                .as_ref()
                .map(|v| Row::from(vec![Value::Text(write.key.clone()), Value::Text(v.clone())]));
            let after_row = write
                .value
                .as_ref()
                .map(|v| Row::from(vec![Value::Text(write.key.clone()), Value::Text(v.clone())]));
            let record = match (before_row, after_row) {
                (None, Some(after)) => ChangeRecord::insert(table, key, after),
                (Some(before), Some(after)) => ChangeRecord::update(table, key, before, after),
                (Some(before), None) => ChangeRecord::delete(table, key, before),
                (None, None) => continue, // delete of a key that never existed
            };
            out.push(record);
        }
        Ok(out)
    }

    fn emit_trace(
        &mut self,
        commit_ts: Ts,
        committed: bool,
        writes: Vec<ChangeRecord>,
        _kv_writes: &[KvWrite],
    ) {
        let Some(tracer) = self.manager.tracer.clone() else {
            return;
        };
        let ctx = self.ctx.clone().unwrap_or_default();
        let timestamp = tracer.now();
        tracer.record_txn(TxnTrace {
            txn_id: self.txn_id,
            ctx,
            timestamp,
            snapshot_ts: self.snapshot_ts,
            commit_ts,
            committed,
            reads: std::mem::take(&mut self.reads),
            writes,
        });
    }
}

impl fmt::Debug for CrossTxn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CrossTxn")
            .field("txn_id", &self.txn_id)
            .field("snapshot_ts", &self.snapshot_ts)
            .field("kv_writes", &self.kv_writes.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trod_db::row;
    use trod_trace::TraceEvent;

    fn orders_db() -> Database {
        let db = Database::new();
        db.create_table(
            "orders",
            Schema::builder()
                .column("id", DataType::Int)
                .column("item", DataType::Text)
                .primary_key(&["id"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db
    }

    fn cross() -> CrossStore {
        let kv = KvStore::new();
        kv.create_namespace("sessions").unwrap();
        CrossStore::new(orders_db(), kv)
    }

    #[test]
    fn atomic_commit_spans_both_stores_with_one_timestamp() {
        let cross = cross();
        let mut txn = cross.begin();
        txn.insert("orders", row![1i64, "widget"]).unwrap();
        txn.kv_put("sessions", "user-1", "cart:widget").unwrap();
        let commit = txn.commit().unwrap();
        assert_eq!(commit.relational_changes, 1);
        assert_eq!(commit.kv_writes, 1);

        // Both stores see the data, versioned at the same timestamp.
        assert_eq!(
            cross
                .database()
                .get_latest("orders", &Key::single(1i64))
                .unwrap(),
            Some(std::sync::Arc::new(row![1i64, "widget"]))
        );
        assert_eq!(
            cross.kv().get_latest("sessions", "user-1").unwrap(),
            Some("cart:widget".into())
        );
        assert_eq!(
            cross.kv().version_of("sessions", "user-1").unwrap(),
            commit.commit_ts
        );

        // The aligned log holds one entry spanning both stores, and the
        // relational log contains the commit marker.
        let log = cross.aligned_log();
        assert_eq!(log.len(), 1);
        assert!(log[0].spans_both_stores());
        assert_eq!(log[0].commit_ts, commit.commit_ts);
        let rel_log = cross.database().log_entries();
        assert!(rel_log
            .iter()
            .any(|entry| entry.writes_table(CROSS_COMMITS_TABLE)));
    }

    #[test]
    fn kv_only_transactions_still_appear_in_both_logs() {
        let cross = cross();
        let mut txn = cross.begin();
        txn.kv_put("sessions", "user-2", "cart:empty").unwrap();
        let commit = txn.commit().unwrap();
        assert_eq!(commit.relational_changes, 0);
        assert_eq!(commit.kv_writes, 1);
        assert!(commit.commit_ts > 0);
        assert_eq!(cross.aligned_log().len(), 1);
        assert!(cross
            .database()
            .log_entries()
            .iter()
            .any(|e| e.writes_table(CROSS_COMMITS_TABLE)));
    }

    #[test]
    fn conflicting_kv_writers_abort_and_leave_relational_store_unchanged() {
        let cross = cross();
        let mut first = cross.begin();
        let mut second = cross.begin();
        first.kv_put("sessions", "k", "first").unwrap();
        second.kv_put("sessions", "k", "second").unwrap();
        second.insert("orders", row![7i64, "gadget"]).unwrap();
        first.commit().unwrap();

        let err = second.commit().unwrap_err();
        assert!(matches!(
            err,
            CrossError::KeyValue(KvError::Conflict { .. })
        ));
        // The loser's relational insert was rolled back.
        assert_eq!(
            cross
                .database()
                .get_latest("orders", &Key::single(7i64))
                .unwrap(),
            None
        );
        assert_eq!(
            cross.kv().get_latest("sessions", "k").unwrap(),
            Some("first".into())
        );
        assert_eq!(cross.aligned_log().len(), 1);
    }

    #[test]
    fn relational_conflicts_leave_kv_store_unchanged() {
        let cross = cross();
        let mut first = cross.begin();
        let mut second = cross.begin();
        first.insert("orders", row![1i64, "widget"]).unwrap();
        second.insert("orders", row![1i64, "gadget"]).unwrap();
        second.kv_put("sessions", "loser", "state").unwrap();
        first.commit().unwrap();

        let err = second.commit().unwrap_err();
        assert!(matches!(err, CrossError::Relational(_)));
        assert_eq!(cross.kv().get_latest("sessions", "loser").unwrap(), None);
        assert_eq!(cross.aligned_log().len(), 1);
    }

    #[test]
    fn snapshot_reads_across_stores_and_read_your_writes() {
        let cross = cross();
        let mut setup = cross.begin();
        setup.insert("orders", row![1i64, "widget"]).unwrap();
        setup.kv_put("sessions", "user-1", "v1").unwrap();
        setup.commit().unwrap();

        let mut reader = cross.begin();
        // A concurrent writer commits after the reader began.
        let mut writer = cross.begin();
        writer.kv_put("sessions", "user-1", "v2").unwrap();
        writer.commit().unwrap();

        // The reader still sees the snapshot value in the KV store and the
        // relational row.
        assert_eq!(
            reader.kv_get("sessions", "user-1").unwrap(),
            Some("v1".into())
        );
        assert_eq!(
            reader.get("orders", &Key::single(1i64)).unwrap(),
            Some(std::sync::Arc::new(row![1i64, "widget"]))
        );
        // Read-your-own-writes.
        reader.kv_put("sessions", "scratch", "tmp").unwrap();
        assert_eq!(
            reader.kv_get("sessions", "scratch").unwrap(),
            Some("tmp".into())
        );
        reader.abort();
    }

    #[test]
    fn prefix_scans_record_read_versions_for_validation() {
        let cross = cross();
        let mut setup = cross.begin();
        setup.kv_put("sessions", "user:1", "a").unwrap();
        setup.kv_put("sessions", "user:2", "b").unwrap();
        setup.commit().unwrap();

        let mut txn = cross.begin();
        let scanned = txn.kv_scan_prefix("sessions", "user:").unwrap();
        assert_eq!(scanned.len(), 2);
        // Another writer changes a scanned key.
        let mut writer = cross.begin();
        writer.kv_put("sessions", "user:1", "changed").unwrap();
        writer.commit().unwrap();
        // The scanning transaction now fails validation when it writes.
        txn.kv_put("sessions", "other", "x").unwrap();
        assert!(txn.commit().is_err());
    }

    #[test]
    fn read_only_cross_transactions_commit_without_logging() {
        let cross = cross();
        let mut txn = cross.begin();
        assert_eq!(txn.get("orders", &Key::single(1i64)).unwrap(), None);
        assert_eq!(txn.kv_get("sessions", "user-1").unwrap(), None);
        let commit = txn.commit().unwrap();
        assert_eq!(commit.kv_writes, 0);
        assert!(cross.aligned_log().is_empty());
    }

    #[test]
    fn traced_cross_transactions_emit_one_unified_provenance_record() {
        let kv = KvStore::new();
        kv.create_namespace("sessions").unwrap();
        let tracer = Tracer::new();
        let cross = CrossStore::with_tracer(orders_db(), kv, tracer.clone());

        let mut txn = cross.begin_traced(TxnContext::new("R1", "checkout", "func:placeOrder"));
        assert!(!txn.exists("orders", &Predicate::eq("id", 1i64)).unwrap());
        txn.insert("orders", row![1i64, "widget"]).unwrap();
        txn.kv_put("sessions", "user-1", "cart:widget").unwrap();
        txn.commit().unwrap();

        let events = tracer.drain();
        assert_eq!(events.len(), 1);
        let TraceEvent::Txn(trace) = &events[0] else {
            panic!("expected a transaction trace");
        };
        assert!(trace.committed);
        assert_eq!(trace.ctx.req_id, "R1");
        // Reads: the relational existence check; writes: the relational
        // insert plus the KV put under the virtual table name.
        assert_eq!(trace.reads.len(), 1);
        assert_eq!(trace.writes.len(), 2);
        let tables = trace.touched_tables();
        assert!(tables.contains(&"orders".to_string()));
        assert!(tables.contains(&"kv:sessions".to_string()));
    }

    #[test]
    fn aborted_traced_transactions_are_recorded() {
        let kv = KvStore::new();
        kv.create_namespace("sessions").unwrap();
        let tracer = Tracer::new();
        let cross = CrossStore::with_tracer(orders_db(), kv, tracer.clone());
        let mut txn = cross.begin_traced(TxnContext::new("R1", "checkout", "f"));
        txn.kv_put("sessions", "k", "v").unwrap();
        txn.abort();
        let events = tracer.drain();
        assert_eq!(events.len(), 1);
        let TraceEvent::Txn(trace) = &events[0] else {
            panic!("expected a transaction trace");
        };
        assert!(!trace.committed);
        assert_eq!(cross.kv().get_latest("sessions", "k").unwrap(), None);
    }
}
