//! Backwards-compatible names for the unified transaction surface.
//!
//! The cross-data-store transaction manager this module used to implement
//! — its own global commit mutex, its own validate/apply logic, its own
//! `AlignedCommit` vector and its own `CrossError` — is gone. Cross-store
//! commits now go through the database's sharded commit coordinator
//! ([`trod_db::CommitParticipant`]): key-value namespaces join the
//! relational footprint as `kv:<namespace>` resources, every commit
//! (relational-only, KV-only, or mixed) claims one timestamp, and the
//! relational transaction log carries the key-value change records in the
//! same entry — the aligned history of the paper's §5, by construction.
//! See [`crate::session`] for the new surface.
//!
//! The old names are kept as thin re-exports for one release:
//!
//! * [`CrossStore`] → [`Session`] (use [`Session::with_kv`] /
//!   [`Session::with_tracer`]),
//! * [`CrossTxn`] → [`Txn`],
//! * [`CrossCommit`] → [`TxnCommit`],
//! * [`CrossError`] / [`CrossResult`] → [`trod_db::TrodError`] /
//!   [`trod_db::TrodResult`] (the variant names `Relational` / `KeyValue`
//!   are unchanged, so existing matches keep compiling).

use crate::session::{Session, Txn, TxnCommit};

/// Deprecated name for [`Session`]; kept as a re-export for one release.
pub type CrossStore = Session;

/// Deprecated name for [`Txn`]; kept as a re-export for one release.
pub type CrossTxn = Txn;

/// Deprecated name for [`TxnCommit`]; kept as a re-export for one release.
pub type CrossCommit = TxnCommit;

/// Deprecated name for [`trod_db::TrodError`]; kept for one release.
pub type CrossError = trod_db::TrodError;

/// Deprecated name for [`trod_db::TrodResult`]; kept for one release.
pub type CrossResult<T> = trod_db::TrodResult<T>;
