//! Property-based tests for the key-value store and the cross-store
//! transaction manager.
//!
//! The invariants checked here are the ones the rest of TROD relies on:
//! as-of reads must behave exactly like replaying the write history up to
//! the chosen timestamp (time travel correctness), garbage collection must
//! not change what is visible at or after its horizon, and every
//! cross-store commit must appear exactly once in the aligned log with a
//! strictly increasing commit timestamp shared by both stores.

use std::collections::BTreeMap;

use proptest::prelude::*;

use trod_db::{row, DataType, Database, Schema, Ts};
use trod_kv::{KvStore, KvWrite, Session};

/// One generated write: key index, optional value (None = delete).
#[derive(Debug, Clone)]
struct GenWrite {
    key: usize,
    value: Option<u16>,
}

fn gen_write() -> impl Strategy<Value = GenWrite> {
    (
        0usize..8,
        prop_oneof![Just(None), (0u16..1000).prop_map(Some)],
    )
        .prop_map(|(key, value)| GenWrite { key, value })
}

/// A batch per commit: 1–4 writes.
fn gen_history() -> impl Strategy<Value = Vec<Vec<GenWrite>>> {
    prop::collection::vec(prop::collection::vec(gen_write(), 1..4), 1..20)
}

fn key_name(i: usize) -> String {
    format!("key:{i}")
}

/// Replays the generated history into both the store and a reference
/// model, returning the model states per commit timestamp.
fn apply_history(kv: &KvStore, history: &[Vec<GenWrite>]) -> Vec<(Ts, BTreeMap<String, String>)> {
    let mut model: BTreeMap<String, String> = BTreeMap::new();
    let mut states = Vec::new();
    for (i, batch) in history.iter().enumerate() {
        let ts = (i + 1) as Ts * 10;
        let mut writes = Vec::new();
        // Deduplicate within a batch the same way a transaction's write
        // buffer does: the last write to a key wins.
        let mut by_key: BTreeMap<String, Option<String>> = BTreeMap::new();
        for write in batch {
            by_key.insert(key_name(write.key), write.value.map(|v| v.to_string()));
        }
        for (key, value) in &by_key {
            writes.push(match value {
                Some(v) => KvWrite::put("ns", key, v),
                None => KvWrite::delete("ns", key),
            });
            match value {
                Some(v) => {
                    model.insert(key.clone(), v.clone());
                }
                None => {
                    model.remove(key);
                }
            }
        }
        kv.apply(&writes, ts).expect("timestamps strictly increase");
        states.push((ts, model.clone()));
    }
    states
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Time travel: reading as of any past commit timestamp returns exactly
    /// what a sequential replay of the history up to that point would hold.
    #[test]
    fn as_of_reads_match_sequential_model(history in gen_history()) {
        let kv = KvStore::new();
        kv.create_namespace("ns").unwrap();
        let states = apply_history(&kv, &history);

        for (ts, model) in &states {
            for key_idx in 0..8 {
                let key = key_name(key_idx);
                let got = kv.get_as_of("ns", &key, *ts).unwrap();
                prop_assert_eq!(got.as_ref(), model.get(&key), "key {} at ts {}", key, ts);
            }
            // The prefix scan over everything equals the model's live set.
            let scanned: BTreeMap<String, String> =
                kv.scan_prefix_as_of("ns", "key:", *ts).unwrap().into_iter().collect();
            prop_assert_eq!(&scanned, model);
        }
        // Reads between commits see the previous commit's state.
        if let Some((first_ts, first_model)) = states.first() {
            let between = first_ts + 5;
            let scanned: BTreeMap<String, String> =
                kv.scan_prefix_as_of("ns", "key:", between).unwrap().into_iter().collect();
            prop_assert_eq!(&scanned, first_model);
        }
    }

    /// Garbage collection below a horizon never changes what is visible at
    /// or after that horizon.
    #[test]
    fn gc_preserves_visibility_at_horizon(history in gen_history(), horizon_frac in 0.0f64..1.0) {
        let kv = KvStore::new();
        kv.create_namespace("ns").unwrap();
        let states = apply_history(&kv, &history);
        let last_ts = states.last().map(|(ts, _)| *ts).unwrap_or(0);
        let horizon = ((last_ts as f64) * horizon_frac) as Ts;

        // Snapshot what is visible at the horizon and at the latest state.
        let before_at_horizon = kv.scan_prefix_as_of("ns", "key:", horizon.max(1)).unwrap();
        let before_latest = kv.scan_prefix("ns", "key:").unwrap();

        kv.gc_before(horizon);

        prop_assert_eq!(kv.scan_prefix_as_of("ns", "key:", horizon.max(1)).unwrap(), before_at_horizon);
        prop_assert_eq!(kv.scan_prefix("ns", "key:").unwrap(), before_latest);
    }

    /// Cross-store commits: every successful commit appends exactly one
    /// aligned-log entry, commit timestamps strictly increase, and the
    /// key-value store's final contents match a sequential model of the
    /// committed transactions.
    #[test]
    fn cross_store_commits_are_aligned_and_atomic(history in gen_history()) {
        let db = Database::new();
        db.create_table(
            "orders",
            Schema::builder()
                .column("id", DataType::Int)
                .column("note", DataType::Text)
                .primary_key(&["id"])
                .build()
                .unwrap(),
        )
        .unwrap();
        let kv = KvStore::new();
        kv.create_namespace("ns").unwrap();
        let cross = Session::with_kv(db, kv);

        let mut model: BTreeMap<String, String> = BTreeMap::new();
        let mut committed = 0usize;
        for (i, batch) in history.iter().enumerate() {
            let mut txn = cross.begin();
            txn.insert("orders", row![i as i64, "batch"]).unwrap();
            for write in batch {
                let key = key_name(write.key);
                match write.value {
                    Some(v) => {
                        txn.kv_put("ns", &key, &v.to_string()).unwrap();
                        model.insert(key, v.to_string());
                    }
                    None => {
                        txn.kv_delete("ns", &key).unwrap();
                        model.remove(&key);
                    }
                }
            }
            // Transactions run one at a time here, so every commit succeeds.
            txn.commit().unwrap();
            committed += 1;
        }

        let log = cross.aligned_log();
        prop_assert_eq!(log.len(), committed);
        for pair in log.windows(2) {
            prop_assert!(pair[0].commit_ts < pair[1].commit_ts, "commit timestamps must increase");
        }
        let final_state: BTreeMap<String, String> =
            cross.kv().scan_prefix("ns", "key:").unwrap().into_iter().collect();
        prop_assert_eq!(final_state, model);
        // Relational rows exist for every committed transaction.
        let orders = cross
            .database()
            .scan_latest("orders", &trod_db::Predicate::True)
            .unwrap();
        prop_assert_eq!(orders.len(), committed);
    }
}
