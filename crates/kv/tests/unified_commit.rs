//! The unified (participant-based) commit path under mixed
//! relational + key-value schedules and threads.
//!
//! PR 3 deleted the cross-store global commit lock: key-value namespaces
//! now join the relational footprint as `kv:<namespace>` commit resources
//! and every commit — relational-only, KV-only or mixed — runs through
//! the one sharded coordinator. These tests pin the properties that
//! redesign must preserve:
//!
//! * a property test drives randomly generated mixed schedules
//!   (relational tables and KV namespaces, reads and writes spread over
//!   both, concurrent committers in between) against three sessions —
//!   sharded, sharded with full-scan validation forced, and the
//!   serial-commit baseline (which also serializes participant commits)
//!   — and requires identical commit decisions and identical final
//!   states in *both* stores;
//! * an 8-thread stress test keeps a value mirrored between a relational
//!   row and a KV key per slot, updated only by mixed commits, and
//!   asserts that snapshot readers never observe the two stores disagree
//!   (a torn cross-store commit);
//! * a total-order test checks that concurrent mixed commits produce one
//!   strictly-increasing, dense transaction log in which every entry
//!   carries its relational and key-value changes together, timestamps
//!   matching what the KV store actually installed.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

use proptest::prelude::*;

use trod_db::{row, DataType, Database, DbError, Key, KvError, Predicate, Schema, TrodError};
use trod_kv::{kv_table_name, KvStore, Session};

const TABLES: [&str; 2] = ["t0", "t1"];
const NAMESPACES: [&str; 2] = ["ns0", "ns1"];

fn table_schema() -> Schema {
    Schema::builder()
        .column("k", DataType::Int)
        .column("v", DataType::Int)
        .primary_key(&["k"])
        .build()
        .unwrap()
}

fn new_session(full_scan: bool, serial: bool) -> Session {
    let db = Database::new();
    for name in TABLES {
        db.create_table(name, table_schema()).unwrap();
    }
    db.set_full_scan_validation(full_scan);
    db.set_serial_commit(serial);
    let kv = KvStore::new();
    for ns in NAMESPACES {
        kv.create_namespace(ns).unwrap();
    }
    Session::with_kv(db, kv)
}

/// One operation in a generated mixed transaction.
#[derive(Debug, Clone)]
enum Op {
    RelPut { t: usize, k: i64, v: i64 },
    RelDelete { t: usize, k: i64 },
    RelGet { t: usize, k: i64 },
    RelScanEqV { t: usize, v: i64 },
    KvPut { n: usize, k: i64, v: i64 },
    KvDelete { n: usize, k: i64 },
    KvGet { n: usize, k: i64 },
}

fn op_strategy(key_space: i64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..2usize, 0..key_space, 0..50i64).prop_map(|(t, k, v)| Op::RelPut { t, k, v }),
        (0..2usize, 0..key_space).prop_map(|(t, k)| Op::RelDelete { t, k }),
        (0..2usize, 0..key_space).prop_map(|(t, k)| Op::RelGet { t, k }),
        (0..2usize, 0..50i64).prop_map(|(t, v)| Op::RelScanEqV { t, v }),
        (0..2usize, 0..key_space, 0..50i64).prop_map(|(n, k, v)| Op::KvPut { n, k, v }),
        (0..2usize, 0..key_space).prop_map(|(n, k)| Op::KvDelete { n, k }),
        (0..2usize, 0..key_space).prop_map(|(n, k)| Op::KvGet { n, k }),
    ]
}

/// A generated mixed schedule; see `run_schedule`.
#[derive(Debug, Clone)]
struct Schedule {
    history: Vec<Vec<Op>>,
    pending: Vec<Op>,
    concurrent: Vec<Vec<Op>>,
}

fn schedule_strategy() -> impl Strategy<Value = Schedule> {
    let key_space = 6i64;
    (
        prop::collection::vec(prop::collection::vec(op_strategy(key_space), 1..4), 0..4),
        prop::collection::vec(op_strategy(key_space), 1..6),
        prop::collection::vec(prop::collection::vec(op_strategy(key_space), 1..4), 0..5),
    )
        .prop_map(|(history, pending, concurrent)| Schedule {
            history,
            pending,
            concurrent,
        })
}

fn apply_ops(txn: &mut trod_kv::Txn, ops: &[Op]) -> Result<(), TrodError> {
    for op in ops {
        match op {
            Op::RelPut { t, k, v } => {
                let key = Key::single(*k);
                if txn.get(TABLES[*t], &key)?.is_some() {
                    txn.update(TABLES[*t], &key, row![*k, *v])?;
                } else {
                    txn.insert(TABLES[*t], row![*k, *v])?;
                }
            }
            Op::RelDelete { t, k } => {
                txn.delete(TABLES[*t], &Key::single(*k))?;
            }
            Op::RelGet { t, k } => {
                let _ = txn.get(TABLES[*t], &Key::single(*k))?;
            }
            Op::RelScanEqV { t, v } => {
                let _ = txn.scan(TABLES[*t], &Predicate::eq("v", *v))?;
            }
            Op::KvPut { n, k, v } => {
                txn.kv_put(NAMESPACES[*n], &format!("k{k}"), &v.to_string())?;
            }
            Op::KvDelete { n, k } => {
                txn.kv_delete(NAMESPACES[*n], &format!("k{k}"))?;
            }
            Op::KvGet { n, k } => {
                let _ = txn.kv_get(NAMESPACES[*n], &format!("k{k}"))?;
            }
        }
    }
    Ok(())
}

fn commit_ops(session: &Session, ops: &[Op]) {
    let mut txn = session.begin();
    apply_ops(&mut txn, ops).unwrap();
    txn.commit().unwrap();
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Outcome {
    Committed,
    RelationalConflict,
    KvConflict,
    OtherError(String),
}

type State = (Vec<BTreeMap<i64, i64>>, Vec<Vec<(String, String)>>);

/// Runs the schedule: history commits, then a pending serializable mixed
/// transaction reads and buffers operations over both stores, then the
/// concurrent transactions commit, then the pending transaction attempts
/// to commit. Returns its outcome plus the final state of both stores.
fn run_schedule(session: &Session, s: &Schedule) -> (Outcome, State) {
    for ops in &s.history {
        commit_ops(session, ops);
    }

    let mut pending = session.begin();
    apply_ops(&mut pending, &s.pending).unwrap();

    for ops in &s.concurrent {
        commit_ops(session, ops);
    }

    let outcome = match pending.commit() {
        Ok(_) => Outcome::Committed,
        Err(TrodError::Relational(
            DbError::SerializationFailure { .. } | DbError::WriteConflict { .. },
        )) => Outcome::RelationalConflict,
        Err(TrodError::KeyValue(KvError::Conflict { .. })) => Outcome::KvConflict,
        Err(other) => Outcome::OtherError(other.to_string()),
    };

    let tables = TABLES
        .iter()
        .map(|t| {
            session
                .database()
                .scan_latest(t, &Predicate::True)
                .unwrap()
                .into_iter()
                .map(|(_, r)| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
                .collect()
        })
        .collect();
    let namespaces = NAMESPACES
        .iter()
        .map(|ns| session.kv().scan_prefix(ns, "").unwrap())
        .collect();
    (outcome, (tables, namespaces))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The sharded participant commit path, the forced full-scan
    /// relational validation path and the serial-commit baseline accept
    /// and reject exactly the same mixed schedules, leaving identical
    /// final states in both stores.
    #[test]
    fn mixed_commits_are_decision_equivalent_across_modes(
        schedule in schedule_strategy()
    ) {
        let sharded = new_session(false, false);
        let full_scan = new_session(true, false);
        let serial = new_session(false, true);
        let (a, sa) = run_schedule(&sharded, &schedule);
        let (b, sb) = run_schedule(&full_scan, &schedule);
        let (c, sc) = run_schedule(&serial, &schedule);
        prop_assert_eq!(&a, &b, "sharded vs full-scan diverged for {:?}", schedule);
        prop_assert_eq!(&a, &c, "sharded vs serial diverged for {:?}", schedule);
        prop_assert_eq!(&sa, &sb);
        prop_assert_eq!(sa, sc);
    }

    /// Forking the kv store at any timestamp equals replaying the aligned
    /// log up to that timestamp — the invariant that makes a fork a
    /// faithful development environment at *every* point of history, not
    /// just the latest (and the reason replay can reconstruct a fork from
    /// spilled aligned history when GC truncated the live state).
    #[test]
    fn kv_fork_at_equals_aligned_log_replayed_to_ts(schedule in schedule_strategy()) {
        let session = new_session(false, false);
        let _ = run_schedule(&session, &schedule);
        let aligned = session.aligned_log();
        let mut sample_ts: Vec<u64> = aligned.iter().map(|c| c.commit_ts).collect();
        sample_ts.push(0);
        sample_ts.push(session.database().current_ts());
        sample_ts.sort_unstable();
        sample_ts.dedup();
        for ts in sample_ts {
            let fork = session.kv().fork_at(ts);
            let mut replayed: BTreeMap<(String, String), Option<String>> = BTreeMap::new();
            for commit in aligned.iter().take_while(|c| c.commit_ts <= ts) {
                for w in &commit.kv {
                    replayed.insert((w.namespace.clone(), w.key.clone()), w.value.clone());
                }
            }
            for ns in NAMESPACES {
                let forked: BTreeMap<String, String> =
                    fork.scan_prefix(ns, "").unwrap().into_iter().collect();
                let from_log: BTreeMap<String, String> = replayed
                    .iter()
                    .filter(|((n, _), _)| n == ns)
                    .filter_map(|((_, k), v)| v.clone().map(|v| (k.clone(), v)))
                    .collect();
                prop_assert_eq!(
                    forked, from_log,
                    "fork at ts {} diverges from replayed log in {}", ts, ns
                );
            }
        }
    }

    /// The aligned log agrees with the stores: replaying the kv side of
    /// every aligned entry in order reproduces the key-value store's
    /// final state.
    #[test]
    fn aligned_log_replays_to_the_kv_state(schedule in schedule_strategy()) {
        let session = new_session(false, false);
        let _ = run_schedule(&session, &schedule);
        let mut replayed: BTreeMap<(String, String), Option<String>> = BTreeMap::new();
        for commit in session.aligned_log() {
            for w in commit.kv {
                replayed.insert((w.namespace, w.key), w.value);
            }
        }
        for ns in NAMESPACES {
            let live: BTreeMap<String, String> =
                session.kv().scan_prefix(ns, "").unwrap().into_iter().collect();
            let from_log: BTreeMap<String, String> = replayed
                .iter()
                .filter(|((n, _), _)| n == ns)
                .filter_map(|((_, k), v)| v.clone().map(|v| (k.clone(), v)))
                .collect();
            prop_assert_eq!(live, from_log, "aligned log diverges from store in {}", ns);
        }
    }
}

/// 8 writer threads each own one slot mirrored between a relational row
/// and a KV key; every update is ONE mixed commit that bumps both to the
/// same value. Two reader threads take serializable snapshots and assert
/// the mirror never tears: seeing `row == n` with `kv != n` would mean a
/// cross-store commit became visible half-applied.
#[test]
fn snapshot_reads_never_see_torn_mixed_commits() {
    const WRITERS: usize = 8;
    const ROUNDS: usize = 50;

    let session = new_session(false, false);
    {
        let mut txn = session.begin();
        for w in 0..WRITERS as i64 {
            txn.insert(TABLES[0], row![w, 0i64]).unwrap();
            txn.kv_put(NAMESPACES[0], &format!("slot{w}"), "0").unwrap();
        }
        txn.commit().unwrap();
    }

    let done = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(WRITERS + 3));

    std::thread::scope(|scope| {
        let mut writers = Vec::new();
        for w in 0..WRITERS {
            let session = session.clone();
            let barrier = barrier.clone();
            writers.push(scope.spawn(move || {
                barrier.wait();
                let key = Key::single(w as i64);
                let kv_key = format!("slot{w}");
                for _ in 0..ROUNDS {
                    loop {
                        let mut txn = session.begin();
                        let current = txn.get(TABLES[0], &key).unwrap().unwrap()[1]
                            .as_int()
                            .unwrap();
                        let next = current + 1;
                        txn.update(TABLES[0], &key, row![w as i64, next]).unwrap();
                        txn.kv_put(NAMESPACES[0], &kv_key, &next.to_string())
                            .unwrap();
                        match txn.commit() {
                            Ok(_) => break,
                            Err(e) if e.is_retryable() => continue,
                            Err(e) => panic!("unexpected error: {e}"),
                        }
                    }
                }
            }));
        }
        for _ in 0..2 {
            let session = session.clone();
            let barrier = barrier.clone();
            let done = done.clone();
            scope.spawn(move || {
                barrier.wait();
                while !done.load(Ordering::Relaxed) {
                    let mut txn = session.begin();
                    for w in 0..WRITERS as i64 {
                        let row_v = txn.get(TABLES[0], &Key::single(w)).unwrap().unwrap()[1]
                            .as_int()
                            .unwrap();
                        let kv_v: i64 = txn
                            .kv_get(NAMESPACES[0], &format!("slot{w}"))
                            .unwrap()
                            .unwrap()
                            .parse()
                            .unwrap();
                        assert_eq!(
                            row_v, kv_v,
                            "snapshot saw a torn cross-store commit on slot {w}"
                        );
                    }
                    txn.abort();
                }
            });
        }
        barrier.wait();
        for handle in writers {
            handle.join().unwrap();
        }
        done.store(true, Ordering::Relaxed);
    });

    // Every slot converged to ROUNDS in both stores.
    for w in 0..WRITERS as i64 {
        let row_v = session
            .database()
            .get_latest(TABLES[0], &Key::single(w))
            .unwrap()
            .unwrap()[1]
            .as_int()
            .unwrap();
        assert_eq!(row_v, ROUNDS as i64);
        assert_eq!(
            session
                .kv()
                .get_latest(NAMESPACES[0], &format!("slot{w}"))
                .unwrap(),
            Some(ROUNDS.to_string())
        );
    }
}

/// Concurrent mixed commits over disjoint (table, namespace) pairs: the
/// aligned transaction log totally orders them — strictly increasing,
/// dense timestamps; every entry carries its relational and key-value
/// changes together; and the KV store's installed versions match the log.
#[test]
fn aligned_log_totally_orders_concurrent_mixed_commits() {
    const PER_THREAD: i64 = 30;

    let session = new_session(false, false);
    let barrier = Arc::new(Barrier::new(4));

    std::thread::scope(|scope| {
        for thread in 0..4usize {
            let session = session.clone();
            let barrier = barrier.clone();
            scope.spawn(move || {
                let table = TABLES[thread % 2];
                let ns = NAMESPACES[thread % 2];
                let base = (thread as i64) * 1_000;
                barrier.wait();
                for i in 0..PER_THREAD {
                    loop {
                        let mut txn = session.begin();
                        txn.insert(table, row![base + i, thread as i64]).unwrap();
                        txn.kv_put(ns, &format!("t{thread}-k{i}"), &i.to_string())
                            .unwrap();
                        match txn.commit() {
                            Ok(_) => break,
                            Err(e) if e.is_retryable() => continue,
                            Err(e) => panic!("unexpected error: {e}"),
                        }
                    }
                }
            });
        }
    });

    let log = session.database().log_entries();
    assert_eq!(log.len(), 4 * PER_THREAD as usize);
    for pair in log.windows(2) {
        assert_eq!(
            pair[0].commit_ts + 1,
            pair[1].commit_ts,
            "commit timestamps are dense: every allocated ts published"
        );
    }

    // Every log entry is aligned: it carries exactly one relational
    // insert and one kv record, for the same logical operation, and the
    // KV store installed that key at exactly the entry's timestamp.
    for entry in &log {
        let rel: Vec<_> = entry
            .changes
            .iter()
            .filter(|c| !c.table.starts_with("kv:"))
            .collect();
        let kv: Vec<_> = entry
            .changes
            .iter()
            .filter(|c| c.table.starts_with("kv:"))
            .collect();
        assert_eq!(rel.len(), 1, "one relational change per mixed commit");
        assert_eq!(kv.len(), 1, "one kv change per mixed commit");
        let ns = kv[0].table.strip_prefix("kv:").unwrap();
        let kv_key = match kv[0].key.values().first() {
            Some(trod_db::Value::Text(k)) => k.clone(),
            other => panic!("kv record key must be text, got {other:?}"),
        };
        assert_eq!(
            session.kv().version_of(ns, &kv_key).unwrap(),
            entry.commit_ts,
            "kv store version must match the aligned log entry"
        );
    }

    // The aligned view partitions the same entries.
    let aligned = session.aligned_log();
    assert_eq!(aligned.len(), log.len());
    assert!(aligned.iter().all(|c| c.spans_both_stores()));
    for (entry, commit) in log.iter().zip(&aligned) {
        assert_eq!(entry.commit_ts, commit.commit_ts);
        assert_eq!(commit.relational.len(), 1);
        assert_eq!(commit.kv.len(), 1);
        assert_eq!(kv_table_name(&commit.kv[0].namespace), {
            let t = &entry
                .changes
                .iter()
                .find(|c| c.table.starts_with("kv:"))
                .unwrap()
                .table;
            t.clone()
        });
    }
}

/// Mixing standalone store-level commits with coordinated session
/// commits on one store must never wedge or starve the coordinator: if a
/// standalone commit pushed a namespace's timestamp past the database
/// allocator, the session commit catches the allocator up (publishing
/// empty ticks) and commits at a strictly newer timestamp — it neither
/// panics inside the publication window nor fails forever.
#[test]
fn standalone_kv_commits_cannot_wedge_coordinated_commits() {
    let session = new_session(false, false);

    // Drive the namespace's timestamp ahead of the (fresh) database
    // allocator through the raw store API.
    session
        .kv()
        .apply(&[trod_kv::KvWrite::put(NAMESPACES[0], "a", "v")], 10)
        .unwrap();
    assert!(session.database().current_ts() < 10);

    // A coordinated commit on the same namespace self-heals: the
    // allocator is advanced past the foreign timestamp, the commit lands
    // strictly after it, and both stores stay consistent.
    let mut txn = session.begin();
    txn.kv_put(NAMESPACES[0], "b", "w").unwrap();
    txn.insert(TABLES[0], row![1i64, 1i64]).unwrap();
    let commit = txn.commit().unwrap();
    assert!(commit.commit_ts > 10, "commit lands after the foreign ts");
    assert_eq!(
        session.kv().version_of(NAMESPACES[0], "b").unwrap(),
        commit.commit_ts
    );
    assert_eq!(
        session.kv().get_latest(NAMESPACES[0], "b").unwrap(),
        Some("w".into())
    );
    assert_eq!(session.database().current_ts(), commit.commit_ts);

    // The standalone single-store transaction path interoperates too.
    let mut standalone = trod_kv::KvTransaction::begin(session.kv());
    standalone.put(NAMESPACES[0], "c", "s").unwrap();
    let standalone_ts = standalone.commit().unwrap();
    assert!(standalone_ts > commit.commit_ts);
    let mut txn = session.begin();
    txn.kv_put(NAMESPACES[0], "d", "y").unwrap();
    let commit2 = txn.commit().unwrap();
    assert!(commit2.commit_ts > standalone_ts);
}

/// The `kv:` resource prefix is reserved: a relational table with such a
/// name would alias a namespace's commit lock in the coordinator's
/// merged lock order and be misclassified in the aligned log.
#[test]
fn kv_prefixed_table_names_are_rejected() {
    let db = Database::new();
    assert!(matches!(
        db.create_table("kv:sessions", table_schema()).unwrap_err(),
        DbError::Invalid(_)
    ));
    assert!(!db.has_table("kv:sessions"));
}

/// Serializable KV read validation spans the coordinator: a transaction
/// whose kv_get was invalidated by a concurrent commit aborts even when
/// its writes are purely relational (and vice versa).
#[test]
fn cross_store_read_validation_is_enforced_by_the_coordinator() {
    let session = new_session(false, false);
    {
        let mut txn = session.begin();
        txn.kv_put(NAMESPACES[0], "flag", "off").unwrap();
        txn.insert(TABLES[0], row![1i64, 0i64]).unwrap();
        txn.commit().unwrap();
    }

    // KV read, relational write: invalidated by a concurrent KV commit.
    let mut pending = session.begin();
    assert_eq!(
        pending.kv_get(NAMESPACES[0], "flag").unwrap(),
        Some("off".into())
    );
    pending.insert(TABLES[0], row![2i64, 1i64]).unwrap();
    let mut writer = session.begin();
    writer.kv_put(NAMESPACES[0], "flag", "on").unwrap();
    writer.commit().unwrap();
    assert!(matches!(
        pending.commit().unwrap_err(),
        TrodError::KeyValue(KvError::Conflict { .. })
    ));
    // The relational write did not survive the aborted commit.
    assert_eq!(
        session
            .database()
            .get_latest(TABLES[0], &Key::single(2i64))
            .unwrap(),
        None
    );

    // Relational read, KV write: invalidated by a concurrent relational
    // commit.
    let mut pending = session.begin();
    let _ = pending.scan(TABLES[0], &Predicate::eq("v", 0i64)).unwrap();
    pending.kv_put(NAMESPACES[1], "out", "x").unwrap();
    let mut writer = session.begin();
    writer
        .update(TABLES[0], &Key::single(1i64), row![1i64, 99i64])
        .unwrap();
    writer.commit().unwrap();
    assert!(matches!(
        pending.commit().unwrap_err(),
        TrodError::Relational(DbError::SerializationFailure { .. })
    ));
    assert_eq!(session.kv().get_latest(NAMESPACES[1], "out").unwrap(), None);
}

/// Forks taken while mixed commits are mid-install never observe an
/// unpublished version. With the widened publication pipeline, writes
/// land in both stores *before* the publication clock advances; a fork
/// cut from `kv().current_ts()` at exactly that moment must resolve
/// against the published horizon — otherwise the KV half of the fork
/// would contain a commit whose relational half (and log entry) the
/// fork's cut excludes, and the forked session would disagree with the
/// aligned history replay that reconstructs it.
#[test]
fn forks_taken_mid_install_never_observe_unpublished_versions() {
    const WRITERS: usize = 4;
    const ROUNDS: usize = 30;

    let session = new_session(false, false);
    {
        let mut txn = session.begin();
        txn.insert(TABLES[0], row![0i64, 0i64]).unwrap();
        txn.kv_put(NAMESPACES[0], "mirror", "0").unwrap();
        txn.commit().unwrap();
    }

    let done = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(WRITERS + 2));

    std::thread::scope(|scope| {
        let mut writers = Vec::new();
        for _ in 0..WRITERS {
            let session = session.clone();
            let barrier = barrier.clone();
            writers.push(scope.spawn(move || {
                barrier.wait();
                for _ in 0..ROUNDS {
                    loop {
                        let mut txn = session.begin();
                        let current = txn.get(TABLES[0], &Key::single(0i64)).unwrap().unwrap()[1]
                            .as_int()
                            .unwrap();
                        let next = current + 1;
                        txn.update(TABLES[0], &Key::single(0i64), row![0i64, next])
                            .unwrap();
                        txn.kv_put(NAMESPACES[0], "mirror", &next.to_string())
                            .unwrap();
                        match txn.commit() {
                            Ok(_) => break,
                            Err(e) if e.is_retryable() => continue,
                            Err(e) => panic!("unexpected error: {e}"),
                        }
                    }
                }
            }));
        }
        {
            let session = session.clone();
            let barrier = barrier.clone();
            let done = done.clone();
            scope.spawn(move || {
                barrier.wait();
                while !done.load(Ordering::Relaxed) {
                    // The cut comes from the KV store's own clock: on a
                    // clock-bound store this is the published horizon,
                    // never a claimed-but-unpublished install.
                    let ts = session.kv().current_ts();
                    let fork = session.fork_at(ts).unwrap();
                    let row_v = fork
                        .database()
                        .get_latest(TABLES[0], &Key::single(0i64))
                        .unwrap()
                        .unwrap()[1]
                        .as_int()
                        .unwrap();
                    let kv_v: i64 = fork
                        .kv()
                        .get_latest(NAMESPACES[0], "mirror")
                        .unwrap()
                        .unwrap()
                        .parse()
                        .unwrap();
                    assert_eq!(
                        row_v, kv_v,
                        "fork at ts {ts} captured an unpublished KV version"
                    );
                }
            });
        }
        barrier.wait();
        for handle in writers {
            handle.join().unwrap();
        }
        done.store(true, Ordering::Relaxed);
    });

    assert_eq!(
        session
            .kv()
            .get_latest(NAMESPACES[0], "mirror")
            .unwrap()
            .unwrap()
            .parse::<i64>()
            .unwrap(),
        (WRITERS * ROUNDS) as i64
    );
}
