//! Durability at the session level: cross-store recovery equivalence,
//! end-to-end fault injection through the commit path, and coordinated
//! garbage collection.
//!
//! Three of the PR's satellite contracts live here:
//!
//! * **Recovery equivalence** — a property test drives random *mixed*
//!   relational + key-value workloads through a durable [`Session`],
//!   crashes at every record boundary of the produced WAL, reopens with
//!   [`Session::open_durable`], and requires the recovered environment —
//!   both stores, the aligned history, the clock — to equal an
//!   in-memory oracle truncated to the acknowledged commits.
//! * **Fault isolation** — injected append/fsync failures
//!   ([`FailpointSink`]) surface as typed retryable
//!   [`TrodError::Storage`] errors that abort only the failed group: the
//!   commit path is not poisoned, later commits succeed, and the repair
//!   pass re-persists the interrupted batch so nothing durable is lost.
//! * **GC coordination** — one [`Session::gc_before`] call drives both
//!   stores under one clamped horizon, and the aligned entries it spills
//!   into the retention policy carry the `kv:` change records that
//!   exactly cover the truncated kv versions.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use proptest::prelude::*;

use trod_db::wal::{decode_records, encode_frame};
use trod_db::{
    row, CommittedTxn, DataType, Database, FailpointHandle, FailpointSink, Key, MemSink, Predicate,
    RetentionPolicy, Schema, StorageError, SyncMode, TrodError, Ts, Value, Wal, WalOptions,
};
use trod_kv::{KvStore, Session};

const NAMESPACES: [&str; 2] = ["cache", "queue"];

fn table_schema() -> Schema {
    Schema::builder()
        .column("k", DataType::Int)
        .column("v", DataType::Int)
        .primary_key(&["k"])
        .build()
        .unwrap()
}

fn scratch_path(tag: &str) -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "trod_durable_session_{tag}_{}_{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Materialises a crashed log at `path`: a fresh directory holding
/// `bytes` as segment 0, the manifest-less layout recovery adopts.
fn write_log_dir(path: &std::path::Path, bytes: &[u8]) {
    let _ = std::fs::remove_dir_all(path);
    std::fs::create_dir_all(path).unwrap();
    std::fs::write(path.join("wal-000000.seg"), bytes).unwrap();
}

/// One step of a mixed workload; every step is one committed transaction
/// touching the relational table, a kv namespace, or both.
#[derive(Debug, Clone)]
enum Step {
    Put { k: i64, v: i64 },
    KvPut { ns: u8, key: u8, v: i64 },
    KvDelete { ns: u8, key: u8 },
    Mixed { k: i64, ns: u8, key: u8, v: i64 },
}

fn apply_step(session: &Session, step: &Step) {
    let mut txn = session.begin();
    match step {
        Step::Put { k, v } => {
            if txn.get("events", &Key::single(*k)).unwrap().is_some() {
                txn.update("events", &Key::single(*k), row![*k, *v])
                    .unwrap();
            } else {
                txn.insert("events", row![*k, *v]).unwrap();
            }
        }
        Step::KvPut { ns, key, v } => {
            txn.kv_put(
                NAMESPACES[*ns as usize],
                &format!("key-{key}"),
                &v.to_string(),
            )
            .unwrap();
        }
        Step::KvDelete { ns, key } => {
            txn.kv_delete(NAMESPACES[*ns as usize], &format!("key-{key}"))
                .unwrap();
        }
        Step::Mixed { k, ns, key, v } => {
            if txn.get("events", &Key::single(*k)).unwrap().is_some() {
                txn.update("events", &Key::single(*k), row![*k, *v])
                    .unwrap();
            } else {
                txn.insert("events", row![*k, *v]).unwrap();
            }
            txn.kv_put(
                NAMESPACES[*ns as usize],
                &format!("key-{key}"),
                &v.to_string(),
            )
            .unwrap();
        }
    }
    txn.commit().unwrap();
}

fn step_strategy() -> impl Strategy<Value = Step> {
    let put = || (0i64..5, 0i64..100).prop_map(|(k, v)| Step::Put { k, v });
    let mixed = || {
        (0i64..5, 0u8..2, 0u8..4, 0i64..100).prop_map(|(k, ns, key, v)| Step::Mixed {
            k,
            ns,
            key,
            v,
        })
    };
    prop_oneof![
        put(),
        mixed(),
        mixed(),
        (0u8..2, 0u8..4, 0i64..100).prop_map(|(ns, key, v)| Step::KvPut { ns, key, v }),
        (0u8..2, 0u8..4).prop_map(|(ns, key)| Step::KvDelete { ns, key }),
    ]
}

/// All kv pairs visible in `kv` at `ts`, across every namespace.
fn kv_state_at(kv: &KvStore, ts: Ts) -> Vec<(String, String, String)> {
    let mut out = Vec::new();
    for ns in NAMESPACES {
        if !kv.has_namespace(ns) {
            continue;
        }
        for (k, v) in kv.scan_prefix_as_of(ns, "", ts).unwrap() {
            out.push((ns.to_string(), k, v));
        }
    }
    out
}

fn relational_state_at(db: &Database, ts: Ts) -> Vec<Vec<Value>> {
    db.scan_as_of("events", &Predicate::ge("k", i64::MIN), ts)
        .unwrap()
        .into_iter()
        .map(|(_, row)| row.values().to_vec())
        .collect()
}

/// Runs `steps` through a durable session (WAL at a scratch file) and an
/// in-memory oracle, then crashes at every record boundary and checks
/// the recovered environment against the oracle.
fn check_mixed_recovery(steps: &[Step]) {
    let wal_path = scratch_path("mixed");
    let durable =
        Session::create_durable(&wal_path, WalOptions::with_sync_mode(SyncMode::Sync)).unwrap();
    let oracle = Session::with_kv(Database::new(), KvStore::new());
    for s in [&durable, &oracle] {
        s.database().create_table("events", table_schema()).unwrap();
        for ns in NAMESPACES {
            s.create_namespace(ns).unwrap();
        }
    }
    for step in steps {
        apply_step(&durable, step);
        apply_step(&oracle, step);
    }
    // The workload fits the default segment bound, so the whole log sits
    // in segment 0 of the directory layout.
    let bytes = std::fs::read(wal_path.join("wal-000000.seg")).unwrap();
    let (records, info) = decode_records(&bytes).unwrap();
    assert_eq!(info.truncated_bytes, 0, "live log must be clean");
    let oracle_log = oracle.database().log_entries();

    let crash_path = scratch_path("mixedcrash");
    let mut at = 0usize;
    for record in &records {
        at += encode_frame(record).len();
        write_log_dir(&crash_path, &bytes[..at]);
        let (recovered, report) = Session::open_durable(&crash_path, WalOptions::default())
            .unwrap_or_else(|e| panic!("cut at {at}: recovery must succeed, got {e}"));

        // Aligned history: verbatim prefix of the oracle's — ids,
        // timestamps and cross-store change records included.
        let log = recovered.database().log_entries();
        assert_eq!(log[..], oracle_log[..log.len()], "cut at {at}");
        assert_eq!(log.len(), report.commits, "cut at {at}");
        let horizon = log.last().map(|e| e.commit_ts).unwrap_or(0);
        assert_eq!(recovered.database().current_ts(), horizon, "cut at {at}");

        // Both stores equal the oracle as of the recovered horizon: no
        // acknowledged commit lost, no torn cross-store commit visible.
        assert_eq!(
            relational_state_at(recovered.database(), horizon),
            relational_state_at(oracle.database(), horizon),
            "cut at {at}"
        );
        assert_eq!(
            kv_state_at(recovered.kv(), horizon),
            kv_state_at(oracle.kv(), horizon),
            "cut at {at}"
        );
    }
    // The last boundary is the full log: everything recovered.
    assert_eq!(at, bytes.len());
    let _ = std::fs::remove_dir_all(&wal_path);
    let _ = std::fs::remove_dir_all(&crash_path);
}

#[test]
fn mixed_workload_recovers_at_every_record_boundary() {
    check_mixed_recovery(&[
        Step::Put { k: 1, v: 10 },
        Step::KvPut {
            ns: 0,
            key: 1,
            v: 11,
        },
        Step::Mixed {
            k: 2,
            ns: 1,
            key: 2,
            v: 12,
        },
        Step::KvDelete { ns: 0, key: 1 },
        Step::Mixed {
            k: 1,
            ns: 0,
            key: 1,
            v: 13,
        },
    ]);
}

#[test]
fn recovered_session_continues_the_aligned_history() {
    let wal_path = scratch_path("resume");
    {
        let session = Session::create_durable(&wal_path, WalOptions::default()).unwrap();
        session
            .database()
            .create_table("events", table_schema())
            .unwrap();
        session.create_namespace("cache").unwrap();
        let mut txn = session.begin();
        txn.insert("events", row![1i64, 1i64]).unwrap();
        txn.kv_put("cache", "a", "1").unwrap();
        txn.commit().unwrap();
    }
    let (session, report) = Session::open_durable(&wal_path, WalOptions::default()).unwrap();
    assert_eq!(report.commits, 1);
    assert_eq!(report.namespaces, vec!["cache".to_string()]);
    assert_eq!(report.kv_writes_replayed, 1);
    let mut txn = session.begin();
    txn.kv_put("cache", "b", "2").unwrap();
    txn.commit().unwrap();
    drop(session);

    let (session, report) = Session::open_durable(&wal_path, WalOptions::default()).unwrap();
    assert_eq!(report.commits, 2);
    assert_eq!(
        session.kv().get_latest("cache", "b").unwrap().as_deref(),
        Some("2")
    );
    assert_eq!(session.aligned_log().len(), 2);
    let _ = std::fs::remove_dir_all(&wal_path);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Satellite 3: random mixed workloads, crash at every record
    /// boundary, recovered environment == oracle truncated to the
    /// acknowledged commits.
    #[test]
    fn random_mixed_workloads_recover_exactly(
        steps in proptest::collection::vec(step_strategy(), 1..12),
    ) {
        check_mixed_recovery(&steps);
    }
}

// ---------------------------------------------------------------------
// Satellite 2: injected WAL failures through the real commit path
// ---------------------------------------------------------------------

fn failpoint_session(
    opts: WalOptions,
) -> (Session, FailpointHandle, Arc<parking_lot::Mutex<Vec<u8>>>) {
    let points = FailpointHandle::new();
    let mem = MemSink::new();
    let captured = mem.contents();
    let sink = FailpointSink::new(mem, points.clone());
    let wal = Wal::with_sink(Box::new(sink), opts);
    let db = Database::new();
    db.create_table("events", table_schema()).unwrap();
    db.attach_wal(wal);
    let kv = KvStore::new();
    kv.create_namespace("cache").unwrap();
    (Session::with_kv(db, kv), points, captured)
}

#[test]
fn injected_fsync_failure_is_typed_retryable_and_does_not_poison_later_commits() {
    let (session, points, captured) = failpoint_session(WalOptions::default());
    points.fail_syncs(1);
    let mut txn = session.begin();
    txn.insert("events", row![1i64, 1i64]).unwrap();
    txn.kv_put("cache", "a", "1").unwrap();
    let err = txn.commit().expect_err("fsync failure must surface");
    match &err {
        TrodError::Storage(StorageError::Io { op, .. }) => assert_eq!(*op, "sync"),
        other => panic!("expected a storage error, got {other}"),
    }
    assert!(err.is_retryable(), "injected IO errors are retryable");

    // Only the failed group aborted: the next commit succeeds without
    // any operator intervention (the failpoint was one-shot), and the
    // repair pass re-persists the interrupted batch — the WAL ends up
    // holding BOTH commits.
    let mut txn = session.begin();
    txn.insert("events", row![2i64, 2i64]).unwrap();
    txn.commit().expect("commit path must not be poisoned");

    let bytes = captured.lock().clone();
    let (records, info) = decode_records(&bytes).unwrap();
    assert_eq!(info.truncated_bytes, 0);
    let commits: Vec<&CommittedTxn> = records
        .iter()
        .filter_map(|r| match r {
            trod_db::WalRecord::Commit(e) => Some(e),
            _ => None,
        })
        .collect();
    assert_eq!(commits.len(), 2, "failed group retried with the next group");
    assert_eq!(
        commits.iter().map(|e| e.commit_ts).collect::<Vec<_>>(),
        vec![commits[0].commit_ts, commits[0].commit_ts + 1],
        "WAL stays a dense commit-order prefix"
    );
}

#[test]
fn injected_append_failure_surfaces_without_losing_the_sequence() {
    let (session, points, _captured) = failpoint_session(WalOptions::default());
    let mut txn = session.begin();
    txn.insert("events", row![1i64, 1i64]).unwrap();
    txn.commit().unwrap();

    // Appends buffer in memory; the injected failure hits when the group
    // leader pushes the batch to the sink.
    points.fail_appends(1);
    let mut txn = session.begin();
    txn.insert("events", row![2i64, 2i64]).unwrap();
    let err = txn.commit().expect_err("append failure must surface");
    assert!(matches!(
        err,
        TrodError::Storage(StorageError::Io { op: "append", .. })
    ));

    points.clear();
    let mut txn = session.begin();
    txn.insert("events", row![3i64, 3i64]).unwrap();
    let commit = txn.commit().unwrap();
    // The in-memory log stayed dense across the failed durability
    // acknowledgement: versions were already installed and published.
    assert_eq!(session.database().log_entries().len(), 3);
    assert_eq!(commit.commit_ts, 3);
}

// ---------------------------------------------------------------------
// Satellite 1: coordinated GC with retention spill
// ---------------------------------------------------------------------

#[derive(Default)]
struct Collector {
    spilled: Mutex<Vec<CommittedTxn>>,
}

impl RetentionPolicy for Collector {
    fn spill(&self, entries: Vec<CommittedTxn>) {
        self.spilled.lock().unwrap().extend(entries);
    }
}

#[test]
fn session_gc_drives_both_stores_under_one_clamped_horizon() {
    let db = Database::new();
    db.create_table("events", table_schema()).unwrap();
    let collector = Arc::new(Collector::default());
    db.set_retention_policy(Some(collector.clone()));
    let kv = KvStore::new();
    kv.create_namespace("cache").unwrap();
    let session = Session::with_kv(db, kv);

    let commit_once = |i: i64| {
        let mut txn = session.begin();
        if txn.get("events", &Key::single(1i64)).unwrap().is_some() {
            txn.update("events", &Key::single(1i64), row![1i64, i])
                .unwrap();
        } else {
            txn.insert("events", row![1i64, i]).unwrap();
        }
        txn.kv_put("cache", "hot", &i.to_string()).unwrap();
        txn.commit().unwrap();
    };
    for i in 1i64..=2 {
        commit_once(i);
    }
    // An active transaction pins the watermark: GC in BOTH stores stops
    // at its snapshot even when asked to go further.
    let pin = session.begin();
    let pinned_at = pin.snapshot_ts();
    for i in 3i64..=6 {
        commit_once(i);
    }
    let stats = session.gc_before(Ts::MAX);
    assert_eq!(
        stats.horizon, pinned_at,
        "horizon clamps to the active snapshot"
    );
    assert_eq!(
        session
            .kv()
            .get_as_of("cache", "hot", pinned_at)
            .unwrap()
            .as_deref(),
        Some(&*pinned_at.to_string()),
        "the pinned snapshot stays readable in the kv store"
    );
    pin.abort();

    // With no active transactions, the requested horizon applies to BOTH
    // stores: versions strictly below it are truncated everywhere, and
    // the spilled aligned entries carry the kv records covering exactly
    // the truncated kv history.
    let stats = session.gc_before(4);
    assert_eq!(stats.horizon, 4);
    assert!(
        stats.kv_versions > 0,
        "kv history below the horizon is truncated"
    );
    assert_eq!(session.database().log_truncated_below(), 4);

    // Reads at/above the horizon still serve from both stores.
    assert_eq!(
        session
            .kv()
            .get_as_of("cache", "hot", 6)
            .unwrap()
            .as_deref(),
        Some("6")
    );
    assert_eq!(
        session
            .database()
            .get_as_of("events", &Key::single(1i64), 6)
            .unwrap()
            .unwrap()
            .values()[1],
        Value::Int(6)
    );

    // The spilled entries are the truncated aligned prefix, kv change
    // records included — time travel below the horizon reconstructs from
    // spilled + live history with no cross-store gap.
    let spilled = collector.spilled.lock().unwrap();
    let spilled_ts: Vec<Ts> = spilled.iter().map(|e| e.commit_ts).collect();
    // Log truncation is inclusive of the horizon (the kv store keeps the
    // version AT the horizon so as-of reads there still serve; the log
    // entry describing the transition to it spills).
    assert_eq!(spilled_ts, vec![1, 2, 3, 4], "spilled == truncated prefix");
    assert!(
        spilled
            .iter()
            .all(|e| e.changes.iter().any(|c| c.table == "kv:cache")),
        "spilled aligned entries carry the kv records GC truncated"
    );
    let live_ts: Vec<Ts> = session
        .database()
        .log_entries()
        .iter()
        .map(|e| e.commit_ts)
        .collect();
    assert_eq!(live_ts, vec![5, 6], "spilled + live history is gap-free");
}
