//! Rows and primary keys.

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::value::Value;

/// A row of values, positionally aligned with the table schema.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Row(Vec<Value>);

impl Row {
    /// Creates an empty row.
    pub fn new() -> Self {
        Row(Vec::new())
    }

    /// Creates a row with the given capacity.
    pub fn with_capacity(n: usize) -> Self {
        Row(Vec::with_capacity(n))
    }

    /// Appends a value.
    pub fn push(&mut self, v: impl Into<Value>) {
        self.0.push(v.into());
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the row has no values.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Borrow the values.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Consumes the row and returns its values.
    pub fn into_values(self) -> Vec<Value> {
        self.0
    }

    /// Gets a value by position.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.0.get(idx)
    }

    /// Replaces the value at `idx`, returning the previous value.
    pub fn set(&mut self, idx: usize, v: impl Into<Value>) -> Value {
        std::mem::replace(&mut self.0[idx], v.into())
    }

    /// Iterates over the values.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.0.iter()
    }
}

impl From<Vec<Value>> for Row {
    fn from(v: Vec<Value>) -> Self {
        Row(v)
    }
}

// Rows are routinely handed out as `Arc<Row>` (the storage engine's
// zero-copy read path); comparing a shared row against a literal `row![..]`
// should not require unwrapping. `Arc` is a fundamental type, so these
// cross-type impls are permitted for the local `Row`.
impl PartialEq<Row> for std::sync::Arc<Row> {
    fn eq(&self, other: &Row) -> bool {
        **self == *other
    }
}

impl PartialEq<std::sync::Arc<Row>> for Row {
    fn eq(&self, other: &std::sync::Arc<Row>) -> bool {
        *self == **other
    }
}

impl FromIterator<Value> for Row {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Row(iter.into_iter().collect())
    }
}

impl Index<usize> for Row {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        &self.0[idx]
    }
}

impl IndexMut<usize> for Row {
    fn index_mut(&mut self, idx: usize) -> &mut Value {
        &mut self.0[idx]
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Builds a [`Row`] from a list of values convertible into [`Value`].
///
/// ```
/// use trod_db::{row, Value};
/// let r = row![1i64, "alice", Value::Null];
/// assert_eq!(r.len(), 3);
/// ```
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        $crate::Row::from(vec![$($crate::Value::from($v)),*])
    };
}

/// A primary key: the ordered primary-key column values of a row.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key(Vec<Value>);

impl Key {
    /// Creates a key from values.
    pub fn new(values: Vec<Value>) -> Self {
        Key(values)
    }

    /// A single-valued key.
    pub fn single(v: impl Into<Value>) -> Self {
        Key(vec![v.into()])
    }

    /// Borrow the key values.
    pub fn values(&self) -> &[Value] {
        &self.0
    }
}

impl From<Vec<Value>> for Key {
    fn from(v: Vec<Value>) -> Self {
        Key(v)
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_macro_and_accessors() {
        let r = row![1i64, "bob", 2.5f64, true];
        assert_eq!(r.len(), 4);
        assert_eq!(r[0], Value::Int(1));
        assert_eq!(r[1], Value::Text("bob".into()));
        assert_eq!(r.get(3), Some(&Value::Bool(true)));
        assert_eq!(r.get(4), None);
    }

    #[test]
    fn row_set_replaces_value() {
        let mut r = row![1i64, "a"];
        let old = r.set(1, "b");
        assert_eq!(old, Value::Text("a".into()));
        assert_eq!(r[1], Value::Text("b".into()));
    }

    #[test]
    fn row_display() {
        let r = row![1i64, "x"];
        assert_eq!(r.to_string(), "(1, x)");
    }

    #[test]
    fn key_equality_and_display() {
        let k1 = Key::single(7i64);
        let k2 = Key::new(vec![Value::Int(7)]);
        assert_eq!(k1, k2);
        assert_eq!(k1.to_string(), "[7]");
        let k3 = Key::new(vec![Value::Int(7), Value::Text("a".into())]);
        assert_ne!(k1, k3);
    }

    #[test]
    fn keys_order_lexicographically() {
        let a = Key::new(vec![Value::Int(1), Value::Int(2)]);
        let b = Key::new(vec![Value::Int(1), Value::Int(3)]);
        let c = Key::new(vec![Value::Int(2)]);
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn row_from_iterator() {
        let r: Row = vec![Value::Int(1), Value::Int(2)].into_iter().collect();
        assert_eq!(r.len(), 2);
    }
}
