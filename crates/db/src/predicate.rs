//! Predicates used for scans, updates and serializable validation.
//!
//! Predicates reference columns by *name*; they are bound to a concrete
//! schema when evaluated. Recording the predicates a transaction scanned
//! (its "scan set") is what allows the transaction manager to detect
//! phantoms under the serializable isolation level, and what allows the
//! TROD replay engine to recompute read dependencies.

use std::fmt;
use std::ops::Bound;

use crate::error::{DbError, DbResult};
use crate::row::Row;
use crate::schema::Schema;
use crate::value::Value;

/// Comparison operators for simple column predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A boolean predicate over a single row.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Matches every row.
    True,
    /// Matches no row.
    False,
    /// `column <op> literal`
    Compare {
        column: String,
        op: CmpOp,
        value: Value,
    },
    /// `column IS NULL`
    IsNull(String),
    /// `column IS NOT NULL`
    IsNotNull(String),
    /// `column IN (v1, v2, ...)`
    InList { column: String, values: Vec<Value> },
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `column = value`
    pub fn eq(column: impl Into<String>, value: impl Into<Value>) -> Self {
        Predicate::Compare {
            column: column.into(),
            op: CmpOp::Eq,
            value: value.into(),
        }
    }

    /// `column != value`
    pub fn ne(column: impl Into<String>, value: impl Into<Value>) -> Self {
        Predicate::Compare {
            column: column.into(),
            op: CmpOp::Ne,
            value: value.into(),
        }
    }

    /// `column < value`
    pub fn lt(column: impl Into<String>, value: impl Into<Value>) -> Self {
        Predicate::Compare {
            column: column.into(),
            op: CmpOp::Lt,
            value: value.into(),
        }
    }

    /// `column <= value`
    pub fn le(column: impl Into<String>, value: impl Into<Value>) -> Self {
        Predicate::Compare {
            column: column.into(),
            op: CmpOp::Le,
            value: value.into(),
        }
    }

    /// `column > value`
    pub fn gt(column: impl Into<String>, value: impl Into<Value>) -> Self {
        Predicate::Compare {
            column: column.into(),
            op: CmpOp::Gt,
            value: value.into(),
        }
    }

    /// `column >= value`
    pub fn ge(column: impl Into<String>, value: impl Into<Value>) -> Self {
        Predicate::Compare {
            column: column.into(),
            op: CmpOp::Ge,
            value: value.into(),
        }
    }

    /// `column IN (values)`
    pub fn in_list(column: impl Into<String>, values: Vec<Value>) -> Self {
        Predicate::InList {
            column: column.into(),
            values,
        }
    }

    /// Conjunction helper.
    pub fn and(self, other: Predicate) -> Self {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Disjunction helper.
    pub fn or(self, other: Predicate) -> Self {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Negation helper.
    pub fn negate(self) -> Self {
        Predicate::Not(Box::new(self))
    }

    /// Evaluates the predicate against a row under `schema`.
    ///
    /// Comparisons involving NULL are false (SQL-like semantics, collapsed
    /// to two-valued logic).
    pub fn matches(&self, schema: &Schema, row: &Row) -> DbResult<bool> {
        match self {
            Predicate::True => Ok(true),
            Predicate::False => Ok(false),
            Predicate::Compare { column, op, value } => {
                let v = column_value(schema, row, column)?;
                if v.is_null() || value.is_null() {
                    return Ok(false);
                }
                let ord = v.total_cmp(value);
                Ok(match op {
                    CmpOp::Eq => ord.is_eq(),
                    CmpOp::Ne => ord.is_ne(),
                    CmpOp::Lt => ord.is_lt(),
                    CmpOp::Le => ord.is_le(),
                    CmpOp::Gt => ord.is_gt(),
                    CmpOp::Ge => ord.is_ge(),
                })
            }
            Predicate::IsNull(column) => Ok(column_value(schema, row, column)?.is_null()),
            Predicate::IsNotNull(column) => Ok(!column_value(schema, row, column)?.is_null()),
            Predicate::InList { column, values } => {
                let v = column_value(schema, row, column)?;
                if v.is_null() {
                    return Ok(false);
                }
                Ok(values.iter().any(|x| x.sql_eq(v)))
            }
            Predicate::And(a, b) => Ok(a.matches(schema, row)? && b.matches(schema, row)?),
            Predicate::Or(a, b) => Ok(a.matches(schema, row)? || b.matches(schema, row)?),
            Predicate::Not(p) => Ok(!p.matches(schema, row)?),
        }
    }

    /// Resolves every column reference against `schema` once, producing a
    /// [`CompiledPredicate`] that evaluates rows by ordinal.
    ///
    /// `Predicate::matches` resolves column names through a string lookup
    /// on every row; on the scan and commit-validation hot paths that
    /// lookup dominates evaluation cost. Compiling hoists the resolution
    /// out of the per-row loop, and also surfaces unknown-column errors
    /// once per scan instead of once per row.
    ///
    /// Compilation is strict: every referenced column must exist, so a
    /// scan with a misspelled column errors even on an empty table or
    /// inside a branch that per-row short-circuit evaluation would have
    /// skipped. (Lazy `matches` admitted such predicates; failing fast at
    /// scan time catches the bug at its source.)
    pub fn compile(&self, schema: &Schema) -> DbResult<CompiledPredicate> {
        Ok(CompiledPredicate {
            node: self.compile_node(schema)?,
        })
    }

    fn compile_node(&self, schema: &Schema) -> DbResult<CompiledNode> {
        let resolve = |column: &str| {
            schema
                .column_index(column)
                .ok_or_else(|| DbError::NoSuchColumn {
                    table: "<row>".into(),
                    column: column.to_string(),
                })
        };
        Ok(match self {
            Predicate::True => CompiledNode::True,
            Predicate::False => CompiledNode::False,
            Predicate::Compare { column, op, value } => CompiledNode::Compare {
                index: resolve(column)?,
                op: *op,
                value: value.clone(),
            },
            Predicate::IsNull(column) => CompiledNode::IsNull(resolve(column)?),
            Predicate::IsNotNull(column) => CompiledNode::IsNotNull(resolve(column)?),
            Predicate::InList { column, values } => CompiledNode::InList {
                index: resolve(column)?,
                values: values.clone(),
            },
            Predicate::And(a, b) => CompiledNode::And(
                Box::new(a.compile_node(schema)?),
                Box::new(b.compile_node(schema)?),
            ),
            Predicate::Or(a, b) => CompiledNode::Or(
                Box::new(a.compile_node(schema)?),
                Box::new(b.compile_node(schema)?),
            ),
            Predicate::Not(p) => CompiledNode::Not(Box::new(p.compile_node(schema)?)),
        })
    }

    /// If the predicate pins `column` to a single equality value (possibly
    /// inside conjunctions), returns that value. Used for index lookups.
    pub fn equality_on(&self, column: &str) -> Option<&Value> {
        match self {
            Predicate::Compare {
                column: c,
                op: CmpOp::Eq,
                value,
            } if c == column => Some(value),
            Predicate::And(a, b) => a.equality_on(column).or_else(|| b.equality_on(column)),
            _ => None,
        }
    }

    /// If the predicate restricts `column` to a finite list of values via
    /// an `IN (...)` conjunct (possibly inside conjunctions), returns that
    /// list. Used for multi-probe index lookups. Like [`Predicate::
    /// equality_on`], constraints under `Or`/`Not` never contribute: an
    /// index probe derived from them could under-approximate.
    pub fn in_list_on(&self, column: &str) -> Option<&[Value]> {
        match self {
            Predicate::InList { column: c, values } if c == column => Some(values),
            Predicate::And(a, b) => a.in_list_on(column).or_else(|| b.in_list_on(column)),
            _ => None,
        }
    }

    /// If the predicate constrains `column` through comparison conjuncts
    /// (`<`, `<=`, `>`, `>=`, `=`), returns the tightest bounds they
    /// imply, for ordered-index range probes.
    ///
    /// Only *conjunctive* constraints contribute: dropping a conjunct can
    /// only widen the bounds, so the result always over-approximates the
    /// predicate's match set — the contract every index access path must
    /// honour. Constraints under `Or` or `Not` are ignored entirely
    /// (a bound derived from one `Or` branch would under-approximate the
    /// other), so a predicate whose only constraints on `column` sit under
    /// them returns `None`. Comparisons against NULL match no row at all;
    /// they are skipped rather than folded into a bound.
    pub fn bounds_on(&self, column: &str) -> Option<ColumnBounds> {
        match self {
            Predicate::Compare {
                column: c,
                op,
                value,
            } if c == column && !value.is_null() => match op {
                CmpOp::Eq => Some(ColumnBounds {
                    lower: Bound::Included(value.clone()),
                    upper: Bound::Included(value.clone()),
                }),
                CmpOp::Lt => Some(ColumnBounds {
                    lower: Bound::Unbounded,
                    upper: Bound::Excluded(value.clone()),
                }),
                CmpOp::Le => Some(ColumnBounds {
                    lower: Bound::Unbounded,
                    upper: Bound::Included(value.clone()),
                }),
                CmpOp::Gt => Some(ColumnBounds {
                    lower: Bound::Excluded(value.clone()),
                    upper: Bound::Unbounded,
                }),
                CmpOp::Ge => Some(ColumnBounds {
                    lower: Bound::Included(value.clone()),
                    upper: Bound::Unbounded,
                }),
                // `!=` excludes one point; as a range it is unbounded and
                // useless for a probe.
                CmpOp::Ne => None,
            },
            Predicate::And(a, b) => match (a.bounds_on(column), b.bounds_on(column)) {
                (Some(a), Some(b)) => Some(a.intersect(b)),
                (one, other) => one.or(other),
            },
            _ => None,
        }
    }

    /// True if the predicate provably matches no row, whatever the data:
    /// an explicit [`Predicate::False`], an empty `IN ()` list, a
    /// comparison against NULL (NULL comparisons are false in this
    /// engine's two-valued semantics), a conjunction containing any of
    /// those, a disjunction of nothing but those — or a conjunction whose
    /// comparison conjuncts imply a contradictory window on some column
    /// (`x > 9 AND x < 3`), detected through [`Predicate::bounds_on`].
    ///
    /// The check is conservative: `true` is a proof of emptiness (the
    /// scan planner short-circuits to an empty result without touching
    /// the store or taking index locks), `false` proves nothing.
    pub fn provably_empty(&self) -> bool {
        if self.empty_ignoring_bounds() {
            return true;
        }
        // Contradictory conjunctive comparison windows. Run once, at
        // this level only: `bounds_on` already intersects every nested
        // conjunctive window, so repeating the (allocating) walk at each
        // inner And node would only redo the same intersections. Simple
        // predicates never reach it.
        if matches!(self, Predicate::And(..)) {
            let mut columns = self.referenced_columns();
            columns.sort_unstable();
            columns.dedup();
            return columns
                .into_iter()
                .any(|c| self.bounds_on(c).is_some_and(|b| b.is_empty()));
        }
        false
    }

    /// The structural (allocation-free) half of [`Predicate::provably_empty`]:
    /// everything except the conjunctive-bounds contradiction check, which
    /// the top-level call runs once over the whole tree.
    fn empty_ignoring_bounds(&self) -> bool {
        match self {
            Predicate::False => true,
            Predicate::Compare { value, .. } => value.is_null(),
            Predicate::InList { values, .. } => values.is_empty(),
            Predicate::And(a, b) => a.empty_ignoring_bounds() || b.empty_ignoring_bounds(),
            // Each Or branch needs the *full* proof (its own conjunctive
            // windows included) — a disjunction is empty only if every
            // branch is.
            Predicate::Or(a, b) => a.provably_empty() && b.provably_empty(),
            _ => false,
        }
    }

    /// Column names referenced by this predicate (with duplicates).
    pub fn referenced_columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Predicate::True | Predicate::False => {}
            Predicate::Compare { column, .. }
            | Predicate::IsNull(column)
            | Predicate::IsNotNull(column)
            | Predicate::InList { column, .. } => out.push(column),
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Predicate::Not(p) => p.collect_columns(out),
        }
    }
}

/// Range constraints a predicate imposes on one column, extracted by
/// [`Predicate::bounds_on`] and consumed by ordered-index probes.
///
/// Bounds follow the engine's total value order ([`Value::total_cmp`]),
/// the same order [`Predicate::matches`] compares with — so a probe over
/// `(lower, upper)` sees exactly the values the comparison conjuncts can
/// accept, including cross-type matches (e.g. `x > 5` admits TEXT values,
/// which rank above numbers in the total order, in both places).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnBounds {
    /// Lower bound on the column value.
    pub lower: Bound<Value>,
    /// Upper bound on the column value.
    pub upper: Bound<Value>,
}

impl ColumnBounds {
    /// Intersects two bounds (the conjunction of their constraints):
    /// tightest lower, tightest upper. On equal bound values, exclusive
    /// beats inclusive.
    fn intersect(self, other: ColumnBounds) -> ColumnBounds {
        ColumnBounds {
            lower: tighter(self.lower, other.lower, true),
            upper: tighter(self.upper, other.upper, false),
        }
    }

    /// True if no value can satisfy both bounds (e.g. `x > 5 AND x < 3`),
    /// in which case the predicate matches nothing via this column and a
    /// probe may return the empty candidate set outright.
    pub fn is_empty(&self) -> bool {
        let (lo, hi) = match (&self.lower, &self.upper) {
            (Bound::Unbounded, _) | (_, Bound::Unbounded) => return false,
            (
                Bound::Included(lo) | Bound::Excluded(lo),
                Bound::Included(hi) | Bound::Excluded(hi),
            ) => (lo, hi),
        };
        match lo.total_cmp(hi) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Equal => {
                // A single point survives only if both ends include it.
                !(matches!(self.lower, Bound::Included(_))
                    && matches!(self.upper, Bound::Included(_)))
            }
            std::cmp::Ordering::Less => false,
        }
    }
}

/// The tighter of two bounds on the same side: for lower bounds (`is_lower`)
/// the greater value wins, for upper bounds the smaller; on equal values an
/// exclusive bound is tighter than an inclusive one.
fn tighter(a: Bound<Value>, b: Bound<Value>, is_lower: bool) -> Bound<Value> {
    let (av, bv) = match (&a, &b) {
        (Bound::Unbounded, _) => return b,
        (_, Bound::Unbounded) => return a,
        (Bound::Included(av) | Bound::Excluded(av), Bound::Included(bv) | Bound::Excluded(bv)) => {
            (av, bv)
        }
    };
    match av.total_cmp(bv) {
        std::cmp::Ordering::Equal => {
            if matches!(a, Bound::Excluded(_)) {
                a
            } else {
                b
            }
        }
        std::cmp::Ordering::Less => {
            if is_lower {
                b
            } else {
                a
            }
        }
        std::cmp::Ordering::Greater => {
            if is_lower {
                a
            } else {
                b
            }
        }
    }
}

/// A [`Predicate`] bound to a concrete schema: column names resolved to
/// ordinals, so evaluation is a per-row walk with no string lookups.
///
/// Produced by [`Predicate::compile`]; used by table scans and by the
/// commit path's serializable (phantom) validation, both of which
/// evaluate one predicate against many rows.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledPredicate {
    node: CompiledNode,
}

#[derive(Debug, Clone, PartialEq)]
enum CompiledNode {
    True,
    False,
    Compare {
        index: usize,
        op: CmpOp,
        value: Value,
    },
    IsNull(usize),
    IsNotNull(usize),
    InList {
        index: usize,
        values: Vec<Value>,
    },
    And(Box<CompiledNode>, Box<CompiledNode>),
    Or(Box<CompiledNode>, Box<CompiledNode>),
    Not(Box<CompiledNode>),
}

impl CompiledPredicate {
    /// Evaluates the predicate against a row. Infallible: unknown columns
    /// were rejected at compile time, and a row shorter than the schema
    /// (impossible for schema-validated rows) reads as NULL.
    pub fn matches(&self, row: &Row) -> bool {
        self.node.matches(row)
    }
}

impl CompiledNode {
    fn matches(&self, row: &Row) -> bool {
        match self {
            CompiledNode::True => true,
            CompiledNode::False => false,
            CompiledNode::Compare { index, op, value } => {
                let v = row.get(*index).unwrap_or(&Value::Null);
                if v.is_null() || value.is_null() {
                    return false;
                }
                let ord = v.total_cmp(value);
                match op {
                    CmpOp::Eq => ord.is_eq(),
                    CmpOp::Ne => ord.is_ne(),
                    CmpOp::Lt => ord.is_lt(),
                    CmpOp::Le => ord.is_le(),
                    CmpOp::Gt => ord.is_gt(),
                    CmpOp::Ge => ord.is_ge(),
                }
            }
            CompiledNode::IsNull(index) => row.get(*index).is_none_or(Value::is_null),
            CompiledNode::IsNotNull(index) => !row.get(*index).is_none_or(Value::is_null),
            CompiledNode::InList { index, values } => {
                let v = row.get(*index).unwrap_or(&Value::Null);
                if v.is_null() {
                    return false;
                }
                values.iter().any(|x| x.sql_eq(v))
            }
            CompiledNode::And(a, b) => a.matches(row) && b.matches(row),
            CompiledNode::Or(a, b) => a.matches(row) || b.matches(row),
            CompiledNode::Not(p) => !p.matches(row),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => write!(f, "TRUE"),
            Predicate::False => write!(f, "FALSE"),
            Predicate::Compare { column, op, value } => write!(f, "{column} {op} {value}"),
            Predicate::IsNull(c) => write!(f, "{c} IS NULL"),
            Predicate::IsNotNull(c) => write!(f, "{c} IS NOT NULL"),
            Predicate::InList { column, values } => {
                write!(f, "{column} IN (")?;
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Predicate::And(a, b) => write!(f, "({a} AND {b})"),
            Predicate::Or(a, b) => write!(f, "({a} OR {b})"),
            Predicate::Not(p) => write!(f, "NOT ({p})"),
        }
    }
}

fn column_value<'a>(schema: &Schema, row: &'a Row, column: &str) -> DbResult<&'a Value> {
    let idx = schema
        .column_index(column)
        .ok_or_else(|| DbError::NoSuchColumn {
            table: "<row>".into(),
            column: column.to_string(),
        })?;
    Ok(&row[idx])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::Schema;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::builder()
            .column("id", DataType::Int)
            .column("name", DataType::Text)
            .nullable("score", DataType::Float)
            .primary_key(&["id"])
            .build()
            .unwrap()
    }

    #[test]
    fn comparisons() {
        let s = schema();
        let r = row![3i64, "carol", 1.5f64];
        assert!(Predicate::eq("id", 3i64).matches(&s, &r).unwrap());
        assert!(!Predicate::eq("id", 4i64).matches(&s, &r).unwrap());
        assert!(Predicate::gt("score", 1.0f64).matches(&s, &r).unwrap());
        assert!(Predicate::le("id", 3i64).matches(&s, &r).unwrap());
        assert!(Predicate::ne("name", "bob").matches(&s, &r).unwrap());
    }

    #[test]
    fn null_comparisons_are_false() {
        let s = schema();
        let r = row![1i64, "a", Value::Null];
        assert!(!Predicate::eq("score", 1.0f64).matches(&s, &r).unwrap());
        assert!(!Predicate::ne("score", 1.0f64).matches(&s, &r).unwrap());
        assert!(Predicate::IsNull("score".into()).matches(&s, &r).unwrap());
        assert!(!Predicate::IsNotNull("score".into())
            .matches(&s, &r)
            .unwrap());
    }

    #[test]
    fn boolean_combinators() {
        let s = schema();
        let r = row![2i64, "bob", 0.5f64];
        let p = Predicate::eq("id", 2i64).and(Predicate::eq("name", "bob"));
        assert!(p.matches(&s, &r).unwrap());
        let p = Predicate::eq("id", 9i64).or(Predicate::eq("name", "bob"));
        assert!(p.matches(&s, &r).unwrap());
        let p = Predicate::eq("id", 2i64).negate();
        assert!(!p.matches(&s, &r).unwrap());
    }

    #[test]
    fn in_list() {
        let s = schema();
        let r = row![2i64, "bob", 0.5f64];
        let p = Predicate::in_list("id", vec![Value::Int(1), Value::Int(2)]);
        assert!(p.matches(&s, &r).unwrap());
        let p = Predicate::in_list("id", vec![Value::Int(3)]);
        assert!(!p.matches(&s, &r).unwrap());
    }

    #[test]
    fn unknown_column_is_error() {
        let s = schema();
        let r = row![2i64, "bob", 0.5f64];
        assert!(Predicate::eq("missing", 1i64).matches(&s, &r).is_err());
    }

    #[test]
    fn equality_extraction_for_index_lookups() {
        let p = Predicate::eq("forum", "F2").and(Predicate::eq("user", "U1"));
        assert_eq!(p.equality_on("forum"), Some(&Value::Text("F2".into())));
        assert_eq!(p.equality_on("user"), Some(&Value::Text("U1".into())));
        assert_eq!(p.equality_on("other"), None);
        // OR does not pin a single value.
        let p = Predicate::eq("a", 1i64).or(Predicate::eq("a", 2i64));
        assert_eq!(p.equality_on("a"), None);
    }

    #[test]
    fn in_list_extraction_for_multi_probe() {
        let vals = vec![Value::Int(1), Value::Int(2)];
        let p = Predicate::in_list("id", vals.clone()).and(Predicate::eq("name", "bob"));
        assert_eq!(p.in_list_on("id"), Some(vals.as_slice()));
        assert_eq!(p.in_list_on("name"), None);
        // Under OR / NOT the list may under-approximate: never extracted.
        let p = Predicate::in_list("id", vals.clone()).or(Predicate::eq("name", "bob"));
        assert_eq!(p.in_list_on("id"), None);
        let p = Predicate::in_list("id", vals).negate();
        assert_eq!(p.in_list_on("id"), None);
    }

    #[test]
    fn bounds_extraction_for_range_probes() {
        // Conjunctive comparisons intersect into one window.
        let p = Predicate::ge("id", 3i64).and(Predicate::lt("id", 9i64));
        let b = p.bounds_on("id").unwrap();
        assert_eq!(b.lower, Bound::Included(Value::Int(3)));
        assert_eq!(b.upper, Bound::Excluded(Value::Int(9)));
        assert!(!b.is_empty());

        // Equality pins both ends.
        let b = Predicate::eq("id", 5i64).bounds_on("id").unwrap();
        assert_eq!(b.lower, Bound::Included(Value::Int(5)));
        assert_eq!(b.upper, Bound::Included(Value::Int(5)));
        assert!(!b.is_empty());

        // Tightest bound wins; exclusive beats inclusive on ties.
        let p = Predicate::gt("id", 3i64).and(Predicate::ge("id", 3i64));
        let b = p.bounds_on("id").unwrap();
        assert_eq!(b.lower, Bound::Excluded(Value::Int(3)));

        // Contradictory conjuncts yield a provably empty window.
        let p = Predicate::gt("id", 9i64).and(Predicate::lt("id", 3i64));
        assert!(p.bounds_on("id").unwrap().is_empty());
        let p = Predicate::gt("id", 3i64).and(Predicate::le("id", 3i64));
        assert!(p.bounds_on("id").unwrap().is_empty());

        // Unrelated columns, `!=`, and NULL comparisons contribute nothing.
        assert!(p.bounds_on("name").is_none());
        assert!(Predicate::ne("id", 3i64).bounds_on("id").is_none());
        assert!(Predicate::lt("id", Value::Null).bounds_on("id").is_none());

        // OR / NOT would under-approximate: no bounds.
        let p = Predicate::lt("id", 3i64).or(Predicate::gt("id", 9i64));
        assert!(p.bounds_on("id").is_none());
        assert!(Predicate::lt("id", 3i64).negate().bounds_on("id").is_none());
        // ...but a comparison conjoined WITH an OR still contributes.
        let p = Predicate::ge("id", 3i64)
            .and(Predicate::eq("name", "a").or(Predicate::eq("name", "b")));
        let b = p.bounds_on("id").unwrap();
        assert_eq!(b.lower, Bound::Included(Value::Int(3)));
        assert_eq!(b.upper, Bound::Unbounded);
    }

    #[test]
    fn provably_empty_detects_unsatisfiable_predicates() {
        // Direct forms.
        assert!(Predicate::False.provably_empty());
        assert!(Predicate::in_list("id", Vec::new()).provably_empty());
        assert!(Predicate::eq("id", Value::Null).provably_empty());
        // Conjunction with an empty side, and contradictory windows.
        assert!(Predicate::eq("id", 1i64)
            .and(Predicate::False)
            .provably_empty());
        assert!(Predicate::gt("id", 9i64)
            .and(Predicate::lt("id", 3i64))
            .provably_empty());
        assert!(Predicate::gt("id", 3i64)
            .and(Predicate::le("id", 3i64))
            .provably_empty());
        // Disjunctions need every branch empty.
        assert!(Predicate::False.or(Predicate::False).provably_empty());
        assert!(!Predicate::False
            .or(Predicate::eq("id", 1i64))
            .provably_empty());
        // Satisfiable shapes prove nothing.
        assert!(!Predicate::True.provably_empty());
        assert!(!Predicate::eq("id", 1i64).provably_empty());
        assert!(!Predicate::ge("id", 3i64)
            .and(Predicate::le("id", 3i64))
            .provably_empty());
        assert!(!Predicate::False.negate().provably_empty());
        // And emptiness never changes what matches() says.
        let s = schema();
        let r = row![3i64, "x", 1.0f64];
        let p = Predicate::gt("id", 9i64).and(Predicate::lt("id", 3i64));
        assert!(!p.matches(&s, &r).unwrap());
    }

    #[test]
    fn referenced_columns_lists_all() {
        let p = Predicate::eq("a", 1i64)
            .and(Predicate::IsNull("b".into()))
            .or(Predicate::gt("c", 2i64));
        let cols = p.referenced_columns();
        assert_eq!(cols, vec!["a", "b", "c"]);
    }

    #[test]
    fn compiled_predicate_agrees_with_interpreted_matches() {
        let s = schema();
        let rows = [
            row![1i64, "alice", 0.5f64],
            row![2i64, "bob", Value::Null],
            row![3i64, "carol", 9.0f64],
        ];
        let preds = [
            Predicate::True,
            Predicate::False,
            Predicate::eq("name", "bob"),
            Predicate::ne("id", 2i64),
            Predicate::gt("score", 0.6f64),
            Predicate::IsNull("score".into()),
            Predicate::IsNotNull("score".into()),
            Predicate::in_list("id", vec![Value::Int(1), Value::Int(3)]),
            Predicate::eq("id", 1i64).and(Predicate::eq("name", "alice")),
            Predicate::eq("id", 9i64).or(Predicate::le("id", 2i64)),
            Predicate::eq("name", "bob").negate(),
        ];
        for pred in &preds {
            let compiled = pred.compile(&s).unwrap();
            for row in &rows {
                assert_eq!(
                    compiled.matches(row),
                    pred.matches(&s, row).unwrap(),
                    "compiled vs interpreted diverged for [{pred}] on {row}"
                );
            }
        }
    }

    #[test]
    fn compile_rejects_unknown_columns_eagerly() {
        // Strict compilation: the misspelled column errors even inside a
        // branch that short-circuit row evaluation would never reach.
        let s = schema();
        let pred = Predicate::True.or(Predicate::eq("no_such_column", 1i64));
        assert!(pred.compile(&s).is_err());
    }

    #[test]
    fn display_roundtrips_reasonably() {
        let p = Predicate::eq("user_id", "U1").and(Predicate::eq("forum", "F2"));
        assert_eq!(p.to_string(), "(user_id = U1 AND forum = F2)");
    }
}
