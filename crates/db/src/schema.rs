//! Table schemas: named, typed columns and a primary key.

use crate::error::{DbError, DbResult};
use crate::row::Row;
use crate::value::{DataType, Value};

/// A single column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    pub name: String,
    pub dtype: DataType,
    pub nullable: bool,
}

impl Column {
    /// A non-nullable column.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Column {
            name: name.into(),
            dtype,
            nullable: false,
        }
    }

    /// A nullable column.
    pub fn nullable(name: impl Into<String>, dtype: DataType) -> Self {
        Column {
            name: name.into(),
            dtype,
            nullable: true,
        }
    }
}

/// A table schema: ordered columns plus the indices of the primary-key
/// columns. Every table must declare a primary key; the engine stores rows
/// keyed by the encoded primary-key values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<Column>,
    primary_key: Vec<usize>,
}

impl Schema {
    /// Creates a schema, resolving primary-key column names to indices.
    pub fn new(columns: Vec<Column>, primary_key: &[&str]) -> DbResult<Self> {
        let mut pk = Vec::with_capacity(primary_key.len());
        for name in primary_key {
            let idx = columns
                .iter()
                .position(|c| c.name == *name)
                .ok_or_else(|| DbError::NoSuchColumn {
                    table: "<schema>".into(),
                    column: (*name).to_string(),
                })?;
            pk.push(idx);
        }
        if pk.is_empty() {
            return Err(DbError::Invalid(
                "schema must declare at least one primary-key column".into(),
            ));
        }
        Ok(Schema {
            columns,
            primary_key: pk,
        })
    }

    /// Starts a fluent builder.
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder::default()
    }

    /// The ordered column definitions.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Indices of the primary-key columns.
    pub fn primary_key(&self) -> &[usize] {
        &self.primary_key
    }

    /// Resolves a column name to its index.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Returns the column at `idx`.
    pub fn column(&self, idx: usize) -> Option<&Column> {
        self.columns.get(idx)
    }

    /// Column names in order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Validates a row against this schema for table `table`.
    pub fn validate_row(&self, table: &str, row: &Row) -> DbResult<()> {
        if row.len() != self.columns.len() {
            return Err(DbError::ArityMismatch {
                table: table.to_string(),
                expected: self.columns.len(),
                actual: row.len(),
            });
        }
        for (i, col) in self.columns.iter().enumerate() {
            let v = &row[i];
            if v.is_null() {
                if !col.nullable {
                    return Err(DbError::NullViolation {
                        table: table.to_string(),
                        column: col.name.clone(),
                    });
                }
                continue;
            }
            if !v.conforms_to(col.dtype) {
                return Err(DbError::TypeMismatch {
                    table: table.to_string(),
                    column: col.name.clone(),
                    expected: col.dtype,
                    actual: format!("{v:?}"),
                });
            }
        }
        // Primary-key columns must not be NULL even if declared nullable.
        for &pk in &self.primary_key {
            if row[pk].is_null() {
                return Err(DbError::NullViolation {
                    table: table.to_string(),
                    column: self.columns[pk].name.clone(),
                });
            }
        }
        Ok(())
    }

    /// Extracts the primary-key values of a row, in key-column order.
    pub fn key_of(&self, row: &Row) -> Vec<Value> {
        self.primary_key.iter().map(|&i| row[i].clone()).collect()
    }
}

/// Fluent builder for [`Schema`].
#[derive(Default)]
pub struct SchemaBuilder {
    columns: Vec<Column>,
    primary_key: Vec<String>,
}

impl SchemaBuilder {
    /// Adds a non-nullable column.
    pub fn column(mut self, name: impl Into<String>, dtype: DataType) -> Self {
        self.columns.push(Column::new(name, dtype));
        self
    }

    /// Adds a nullable column.
    pub fn nullable(mut self, name: impl Into<String>, dtype: DataType) -> Self {
        self.columns.push(Column::nullable(name, dtype));
        self
    }

    /// Declares the primary key (column names must already be added).
    pub fn primary_key(mut self, names: &[&str]) -> Self {
        self.primary_key = names.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Builds the schema.
    pub fn build(self) -> DbResult<Schema> {
        let pk: Vec<&str> = self.primary_key.iter().map(String::as_str).collect();
        Schema::new(self.columns, &pk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::Row;

    fn users_schema() -> Schema {
        Schema::builder()
            .column("id", DataType::Int)
            .column("name", DataType::Text)
            .nullable("email", DataType::Text)
            .primary_key(&["id"])
            .build()
            .unwrap()
    }

    #[test]
    fn builder_resolves_primary_key() {
        let s = users_schema();
        assert_eq!(s.primary_key(), &[0]);
        assert_eq!(s.arity(), 3);
        assert_eq!(s.column_index("email"), Some(2));
        assert_eq!(s.column_index("missing"), None);
    }

    #[test]
    fn schema_requires_primary_key() {
        let err = Schema::builder()
            .column("a", DataType::Int)
            .build()
            .unwrap_err();
        assert!(matches!(err, DbError::Invalid(_)));
    }

    #[test]
    fn schema_rejects_unknown_pk_column() {
        let err = Schema::builder()
            .column("a", DataType::Int)
            .primary_key(&["b"])
            .build()
            .unwrap_err();
        assert!(matches!(err, DbError::NoSuchColumn { .. }));
    }

    #[test]
    fn validate_row_checks_arity_types_nulls() {
        let s = users_schema();
        let ok = Row::from(vec![Value::Int(1), Value::Text("a".into()), Value::Null]);
        assert!(s.validate_row("users", &ok).is_ok());

        let too_short = Row::from(vec![Value::Int(1)]);
        assert!(matches!(
            s.validate_row("users", &too_short),
            Err(DbError::ArityMismatch { .. })
        ));

        let bad_type = Row::from(vec![
            Value::Text("x".into()),
            Value::Text("a".into()),
            Value::Null,
        ]);
        assert!(matches!(
            s.validate_row("users", &bad_type),
            Err(DbError::TypeMismatch { .. })
        ));

        let null_name = Row::from(vec![Value::Int(1), Value::Null, Value::Null]);
        assert!(matches!(
            s.validate_row("users", &null_name),
            Err(DbError::NullViolation { .. })
        ));
    }

    #[test]
    fn validate_row_rejects_null_pk_even_when_nullable() {
        let s = Schema::builder()
            .nullable("id", DataType::Int)
            .column("v", DataType::Int)
            .primary_key(&["id"])
            .build()
            .unwrap();
        let row = Row::from(vec![Value::Null, Value::Int(1)]);
        assert!(matches!(
            s.validate_row("t", &row),
            Err(DbError::NullViolation { .. })
        ));
    }

    #[test]
    fn key_of_extracts_pk_values() {
        let s = Schema::builder()
            .column("a", DataType::Int)
            .column("b", DataType::Text)
            .column("c", DataType::Int)
            .primary_key(&["c", "a"])
            .build()
            .unwrap();
        let row = Row::from(vec![Value::Int(1), Value::Text("x".into()), Value::Int(9)]);
        assert_eq!(s.key_of(&row), vec![Value::Int(9), Value::Int(1)]);
    }
}
