//! The commit-participant abstraction: how non-relational stores join
//! the sharded commit protocol.
//!
//! PR 2 sharded the *relational* commit path (per-table commit locks in
//! sorted footprint order, validate-all, claim one atomic timestamp,
//! publish ordered). The paper's §5 needs the same protocol to span data
//! stores: a polyglot transaction must commit atomically across the
//! relational database and, say, a key-value store, with one commit
//! timestamp and one aligned history — without re-introducing a global
//! cross-store lock.
//!
//! [`CommitParticipant`] is the seam. A participant contributes:
//!
//! * **Resources** — globally-unique lock names (the relational side uses
//!   table names; a key-value store uses `kv:<namespace>` shard names).
//!   The coordinator merges every participant's resources with the
//!   relational footprint, sorts the union, and acquires each resource's
//!   commit lock in that one global order — so mixed commits are
//!   deadlock-free and commits with disjoint footprints (different
//!   tables, different namespaces) run fully concurrently.
//! * **Validation** — optimistic checks run while the whole footprint is
//!   locked, before the commit timestamp is claimed. Any participant can
//!   still veto the commit here; nothing has been installed yet, so an
//!   abort is side-effect-free on every store.
//! * **Installation** — infallible application of the participant's
//!   buffered writes at the claimed timestamp, invoked inside the ordered
//!   publication window. The change records it returns are appended to
//!   the relational transaction log entry, which is what makes the log
//!   *aligned by construction*: a commit that wrote three tables and two
//!   namespaces is one log entry with one timestamp.
//!
//! The driver is [`Transaction::commit_with_participants`]
//! (see [`crate::txn`]); `Transaction::commit` is the zero-participant
//! special case.
//!
//! Durability rides the same seam: the coordinator appends the aligned
//! log entry — participant records included — to the attached WAL inside
//! the publication window (segment rotation happens strictly *outside*
//! that window, on the post-ack sync path, so a roll never creates a
//! commit-order hole across files), and recovery re-installs recovered
//! entries through participant `install` calls, so a crash-recovered kv
//! store is rebuilt by the identical code path that wrote it live (see
//! [`crate::wal`], [`crate::segment`] and the durability section in
//! [`crate::database`]).

use std::sync::Arc;

use parking_lot::Mutex;

use crate::cdc::ChangeRecord;
use crate::error::TrodResult;
use crate::mvcc::Ts;

/// A non-relational store taking part in a coordinated commit.
///
/// Implementations are short-lived: one participant per committing
/// transaction, carrying that transaction's buffered reads and writes
/// against its store. See the [module docs](self) for the protocol
/// phases and their guarantees.
pub trait CommitParticipant {
    /// The globally-unique resource names whose commit locks this
    /// participant needs — e.g. `kv:<namespace>` for each namespace the
    /// transaction read (under serializable validation) or wrote.
    /// Duplicates are tolerated; order is irrelevant (the coordinator
    /// sorts the union of all participants' resources).
    ///
    /// Names must not collide with relational table names; prefixing with
    /// the store kind (`kv:`) keeps the namespaces disjoint.
    fn resources(&self) -> Vec<String>;

    /// The shared commit lock for one of [`Self::resources`]. The
    /// coordinator clones the `Arc` and locks all resources in sorted
    /// name order, holding every guard until after publication.
    fn resource_lock(&self, resource: &str) -> Arc<Mutex<()>>;

    /// Validates this participant's reads and writes against its store's
    /// current state. Called with the entire footprint (relational and
    /// participant resources) locked, after relational validation. An
    /// error aborts the commit before anything is installed anywhere.
    ///
    /// `min_commit_ts` is a lower bound on the timestamp a successful
    /// commit will claim (timestamps are allocated from a monotone
    /// counter, read under the footprint locks). A participant whose
    /// store enforces per-resource timestamp monotonicity must reject the
    /// commit here if any written resource has already been advanced to
    /// `min_commit_ts` or beyond by writes outside the coordinator (e.g.
    /// a standalone store-level commit) — that is the one condition that
    /// could otherwise make [`Self::install`] fail, and install runs
    /// inside the publication window where failure is not an option.
    fn validate(&self, min_commit_ts: Ts) -> TrodResult<()>;

    /// True if this participant has buffered writes. A commit with no
    /// relational writes and no participant writes is read-only and
    /// serializes at its snapshot without locking or logging.
    fn has_writes(&self) -> bool;

    /// True if this participant carries reads that must be re-validated
    /// inside the publication window ([`Self::revalidate_reads`]) because
    /// their resources were *not* locked (SSI mode: read-only resources
    /// are left out of [`Self::resources`]). `false` (the default) means
    /// every read was either validated under its resource lock or this
    /// participant has no reads.
    fn needs_revalidation(&self) -> bool {
        false
    }

    /// Re-validates the participant's reads against every commit that
    /// published (or is installed and certain to publish) before
    /// `commit_ts`. Called inside the ordered publication window, before
    /// anything is installed for this commit — an error aborts the commit
    /// with nothing installed anywhere (the coordinator publishes the
    /// claimed timestamp as an empty tick). Only invoked when
    /// [`Self::needs_revalidation`] returned `true`.
    fn revalidate_reads(&self, _commit_ts: Ts) -> TrodResult<()> {
        Ok(())
    }

    /// Installs the buffered writes at `commit_ts` and returns their
    /// change records (under the participant's virtual table names, e.g.
    /// `kv:<namespace>`), which the coordinator appends to the commit's
    /// transaction-log entry.
    ///
    /// Called with this participant's resource locks held, at or before
    /// the commit's turn in the ordered publication window. Installs may
    /// run *pre-publication* (the coordinator moves them out of the
    /// ordered critical section when it can): the store must therefore
    /// stamp versions with `commit_ts` and keep them invisible to readers
    /// until the publication clock reaches `commit_ts` — clock-aware
    /// versioning, exactly like the relational version chains. Must not
    /// fail — all fallible checks belong in [`Self::validate`] and
    /// [`Self::revalidate_reads`].
    fn install(&self, commit_ts: Ts) -> Vec<ChangeRecord>;
}
