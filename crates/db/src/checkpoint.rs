//! Environment checkpoints: whole-environment state snapshots.
//!
//! A [`Checkpoint`] captures one MVCC-consistent image of the entire
//! environment — every relational table (schema, secondary indexes and
//! all rows visible at the checkpoint timestamp), every key-value
//! namespace, the commit clock and the transaction-id high-water mark —
//! serialized with the same CRC discipline as WAL frames and the
//! MANIFEST. Checkpoints are written by
//! [`crate::segment::SegmentedWal::write_checkpoint`] on the post-ack
//! path and tracked in the MANIFEST alongside segments, so recovery can
//! boot from the newest valid one and replay only the WAL tail after it
//! (see the checkpoint lifecycle section in [`crate::database`]).
//!
//! # Consistency model
//!
//! The capture reads `ts = ` the *published* commit clock, then takes a
//! time-travel snapshot of every store at exactly that timestamp. Because
//! commit order equals WAL byte order, every commit with
//! `commit_ts <= ts` lies entirely in WAL bytes the checkpoint covers;
//! recovery skips those bytes and replays only records after the cut.
//! DDL records are untimestamped, so they are replayed *idempotently* on
//! a checkpoint boot: creating an object that the checkpoint already
//! restored is a no-op, which is sound because the WAL vocabulary has no
//! drop records — an object is only ever created once.

use crate::error::StorageError;
use crate::mvcc::Ts;
use crate::row::{Key, Row};
use crate::schema::{Column, Schema};
use crate::value::DataType;
use crate::wal::{crc32, dtype_tag, put_str, put_u32, put_u64, put_values, Cursor};

/// Magic prefix of a checkpoint file.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"TRODCK01";
const CHECKPOINT_VERSION: u32 = 1;

/// One relational table inside a [`Checkpoint`]: schema, index columns
/// and every row visible at the checkpoint timestamp.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointTable {
    pub name: String,
    pub schema: Schema,
    /// Columns with hash (point-probe) secondary indexes.
    pub hash_indexes: Vec<String>,
    /// Columns with ordered range indexes.
    pub range_indexes: Vec<String>,
    /// Live rows at the checkpoint timestamp, keyed by primary key.
    pub rows: Vec<(Key, Row)>,
}

/// One key-value namespace inside a [`Checkpoint`]: every live entry at
/// the checkpoint timestamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointNamespace {
    pub name: String,
    pub entries: Vec<(String, String)>,
}

/// A whole-environment snapshot at one commit timestamp.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The published commit timestamp the snapshot was taken at.
    pub ts: Ts,
    /// Transaction-id high-water mark at capture time, so recovered
    /// databases never reuse an id the checkpointed history handed out.
    pub next_txn_id: u64,
    pub tables: Vec<CheckpointTable>,
    pub namespaces: Vec<CheckpointNamespace>,
}

/// A store (beyond the relational [`crate::Database`]) that contributes
/// state to environment checkpoints. The key-value store implements this
/// and `Session` registers it, so `Database::checkpoint` captures the
/// whole polyglot environment, not just the relational half.
pub trait CheckpointContributor: Send + Sync {
    /// Every namespace with its live entries visible at `ts`.
    fn capture_kv(&self, ts: Ts) -> Vec<CheckpointNamespace>;
}

/// File name of a checkpoint at `ts` (fixed-width, so names sort by ts).
pub(crate) fn checkpoint_name(ts: Ts) -> String {
    format!("ckpt-{ts:020}.ckpt")
}

/// Parses `ckpt-<ts>.ckpt` back to its timestamp.
pub(crate) fn parse_checkpoint_name(name: &str) -> Option<Ts> {
    let digits = name.strip_prefix("ckpt-")?.strip_suffix(".ckpt")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

fn ckpt_corrupt(offset: u64, detail: impl Into<String>) -> StorageError {
    StorageError::Corrupt {
        offset,
        detail: format!("checkpoint: {}", detail.into()),
    }
}

/// Serializes a checkpoint: magic, the standard CRC frame header
/// (payload length, payload CRC, header CRC), then the payload. The
/// whole file is one frame — a checkpoint is valid in its entirety or
/// not at all.
pub fn encode_checkpoint(ck: &Checkpoint) -> Vec<u8> {
    let mut payload = Vec::with_capacity(1024);
    put_u32(&mut payload, CHECKPOINT_VERSION);
    put_u64(&mut payload, ck.ts);
    put_u64(&mut payload, ck.next_txn_id);
    put_u32(&mut payload, ck.tables.len() as u32);
    for t in &ck.tables {
        put_str(&mut payload, &t.name);
        put_u32(&mut payload, t.schema.columns().len() as u32);
        for col in t.schema.columns() {
            put_str(&mut payload, &col.name);
            payload.push(dtype_tag(col.dtype));
            payload.push(col.nullable as u8);
        }
        // Primary key as column names, mirroring the WAL's CreateTable
        // encoding, so the schema round-trips through `Schema::new`.
        put_u32(&mut payload, t.schema.primary_key().len() as u32);
        for &idx in t.schema.primary_key() {
            put_str(&mut payload, &t.schema.columns()[idx].name);
        }
        put_u32(&mut payload, t.hash_indexes.len() as u32);
        for c in &t.hash_indexes {
            put_str(&mut payload, c);
        }
        put_u32(&mut payload, t.range_indexes.len() as u32);
        for c in &t.range_indexes {
            put_str(&mut payload, c);
        }
        put_u64(&mut payload, t.rows.len() as u64);
        for (key, row) in &t.rows {
            put_values(&mut payload, key.values());
            put_values(&mut payload, row.values());
        }
    }
    put_u32(&mut payload, ck.namespaces.len() as u32);
    for ns in &ck.namespaces {
        put_str(&mut payload, &ns.name);
        put_u64(&mut payload, ns.entries.len() as u64);
        for (k, v) in &ns.entries {
            put_str(&mut payload, k);
            put_str(&mut payload, v);
        }
    }

    let mut out = Vec::with_capacity(8 + 12 + payload.len());
    out.extend_from_slice(CHECKPOINT_MAGIC);
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(&payload));
    let hdr_crc = crc32(&out[8..16]);
    put_u32(&mut out, hdr_crc);
    out.extend_from_slice(&payload);
    out
}

/// Decodes and fully validates a checkpoint file. Every failure is a
/// typed [`StorageError::Corrupt`] — the caller falls back to an older
/// checkpoint or full replay, never to a silently partial state.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<Checkpoint, StorageError> {
    if bytes.len() < 8 + 12 {
        return Err(ckpt_corrupt(0, "truncated checkpoint"));
    }
    if &bytes[..8] != CHECKPOINT_MAGIC {
        return Err(ckpt_corrupt(0, "bad magic"));
    }
    let hdr = &bytes[8..20];
    let stored_hdr_crc = u32::from_le_bytes(hdr[8..12].try_into().unwrap());
    if crc32(&hdr[0..8]) != stored_hdr_crc {
        return Err(ckpt_corrupt(8, "header checksum mismatch"));
    }
    let len = u32::from_le_bytes(hdr[0..4].try_into().unwrap()) as usize;
    if bytes.len() != 20 + len {
        return Err(ckpt_corrupt(
            20,
            format!(
                "payload length mismatch: header says {len}, have {}",
                bytes.len() - 20
            ),
        ));
    }
    let payload = &bytes[20..];
    let stored_crc = u32::from_le_bytes(hdr[4..8].try_into().unwrap());
    if crc32(payload) != stored_crc {
        return Err(ckpt_corrupt(20, "payload checksum mismatch"));
    }
    decode_payload(payload).map_err(|detail| ckpt_corrupt(20, detail))
}

fn decode_payload(payload: &[u8]) -> Result<Checkpoint, String> {
    let mut c = Cursor::new(payload);
    let version = c.u32()?;
    if version != CHECKPOINT_VERSION {
        return Err(format!("unsupported checkpoint version {version}"));
    }
    let ts = c.u64()?;
    let next_txn_id = c.u64()?;
    let n_tables = c.u32()? as usize;
    if n_tables > payload.len() {
        return Err(format!("table count {n_tables} exceeds payload"));
    }
    let mut tables = Vec::with_capacity(n_tables);
    for _ in 0..n_tables {
        let name = c.str()?;
        let ncols = c.u32()? as usize;
        if ncols > payload.len() {
            return Err(format!("column count {ncols} exceeds payload"));
        }
        let mut columns = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let col_name = c.str()?;
            let dtype: DataType = c.dtype()?;
            let nullable = c.u8()? != 0;
            columns.push(if nullable {
                Column::nullable(col_name, dtype)
            } else {
                Column::new(col_name, dtype)
            });
        }
        let npk = c.u32()? as usize;
        if npk > payload.len() {
            return Err(format!("pk count {npk} exceeds payload"));
        }
        let mut pk = Vec::with_capacity(npk);
        for _ in 0..npk {
            pk.push(c.str()?);
        }
        let pk_refs: Vec<&str> = pk.iter().map(String::as_str).collect();
        let schema = Schema::new(columns, &pk_refs)
            .map_err(|e| format!("invalid schema for `{name}`: {e}"))?;
        let n_hash = c.u32()? as usize;
        if n_hash > payload.len() {
            return Err(format!("index count {n_hash} exceeds payload"));
        }
        let mut hash_indexes = Vec::with_capacity(n_hash);
        for _ in 0..n_hash {
            hash_indexes.push(c.str()?);
        }
        let n_range = c.u32()? as usize;
        if n_range > payload.len() {
            return Err(format!("index count {n_range} exceeds payload"));
        }
        let mut range_indexes = Vec::with_capacity(n_range);
        for _ in 0..n_range {
            range_indexes.push(c.str()?);
        }
        let n_rows = c.u64()? as usize;
        if n_rows > payload.len() {
            return Err(format!("row count {n_rows} exceeds payload"));
        }
        let mut rows = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            let key = Key::from(c.values()?);
            let row = Row::from(c.values()?);
            rows.push((key, row));
        }
        tables.push(CheckpointTable {
            name,
            schema,
            hash_indexes,
            range_indexes,
            rows,
        });
    }
    let n_ns = c.u32()? as usize;
    if n_ns > payload.len() {
        return Err(format!("namespace count {n_ns} exceeds payload"));
    }
    let mut namespaces = Vec::with_capacity(n_ns);
    for _ in 0..n_ns {
        let name = c.str()?;
        let n_entries = c.u64()? as usize;
        if n_entries > payload.len() {
            return Err(format!("entry count {n_entries} exceeds payload"));
        }
        let mut entries = Vec::with_capacity(n_entries);
        for _ in 0..n_entries {
            let k = c.str()?;
            let v = c.str()?;
            entries.push((k, v));
        }
        namespaces.push(CheckpointNamespace { name, entries });
    }
    if c.remaining() != 0 {
        return Err(format!("{} trailing bytes", c.remaining()));
    }
    Ok(Checkpoint {
        ts,
        next_txn_id,
        tables,
        namespaces,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::value::Value;

    fn sample() -> Checkpoint {
        let schema = Schema::builder()
            .column("id", DataType::Int)
            .column("name", DataType::Text)
            .nullable("score", DataType::Float)
            .primary_key(&["id"])
            .build()
            .unwrap();
        Checkpoint {
            ts: 42,
            next_txn_id: 7,
            tables: vec![CheckpointTable {
                name: "users".to_string(),
                schema,
                hash_indexes: vec!["name".to_string()],
                range_indexes: vec!["score".to_string()],
                rows: vec![
                    (Key::single(1i64), row![1i64, "alice", 3.5f64]),
                    (Key::single(2i64), row![2i64, "bob", Value::Null]),
                ],
            }],
            namespaces: vec![CheckpointNamespace {
                name: "cache".to_string(),
                entries: vec![("k1".to_string(), "v1".to_string())],
            }],
        }
    }

    #[test]
    fn round_trips() {
        let ck = sample();
        let bytes = encode_checkpoint(&ck);
        assert_eq!(decode_checkpoint(&bytes).unwrap(), ck);
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let bytes = encode_checkpoint(&sample());
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x20;
            assert!(
                decode_checkpoint(&bad).is_err(),
                "bit flip at byte {i} went undetected"
            );
        }
        for cut in 0..bytes.len() {
            assert!(decode_checkpoint(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn name_round_trips() {
        let name = checkpoint_name(12345);
        assert_eq!(parse_checkpoint_name(&name), Some(12345));
        assert_eq!(parse_checkpoint_name("ckpt-.ckpt"), None);
        assert_eq!(parse_checkpoint_name("ckpt-12x45.ckpt"), None);
        assert_eq!(parse_checkpoint_name("wal-000001.seg"), None);
    }
}
