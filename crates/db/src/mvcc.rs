//! Multi-version row storage.
//!
//! Every row lives in a [`VersionChain`]: a list of versions ordered by
//! the commit timestamp that created them. A version is visible to a read
//! at timestamp `ts` if `begin_ts <= ts < end_ts`. Time travel (paper
//! §3.1, "databases with time travel capabilities") falls out of this
//! representation: reading "as of" a past timestamp simply selects the
//! version visible at that timestamp.
//!
//! This visibility rule is also what makes the sharded commit protocol's
//! publication step atomic (see [`crate::database`]): readers only ever
//! read at timestamps up to the *published* clock, so versions a
//! mid-flight commit has installed at a higher, not-yet-published
//! `begin_ts` fail `begin_ts <= ts` for every reader until the commit
//! publishes — a multi-table commit becomes visible everywhere at once,
//! never piecemeal.

use std::sync::Arc;

use crate::row::Row;

/// Commit timestamp type. Timestamp 0 is "before any transaction".
pub type Ts = u64;

/// Sentinel end timestamp of a live (not yet superseded) version.
pub const TS_LIVE: Ts = u64::MAX;

/// One version of a row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Version {
    /// Commit timestamp of the transaction that wrote this version.
    pub begin_ts: Ts,
    /// Commit timestamp of the transaction that superseded or deleted this
    /// version; [`TS_LIVE`] while current.
    pub end_ts: Ts,
    /// The row image, shared rather than owned: readers at any timestamp,
    /// CDC records and the table change log all hold the same allocation,
    /// so reads and validation never deep-copy row payloads.
    pub row: Arc<Row>,
}

impl Version {
    /// True if the version is visible to a read at `ts`.
    pub fn visible_at(&self, ts: Ts) -> bool {
        self.begin_ts <= ts && ts < self.end_ts
    }

    /// True if the version is the current live version.
    pub fn is_live(&self) -> bool {
        self.end_ts == TS_LIVE
    }

    /// True if this version was created or superseded/deleted by a commit
    /// strictly after `ts` — the window test behind serializable
    /// (phantom) validation. Kept here as the single definition so the
    /// change-log fast path, the full-scan fallback and per-key
    /// validation can never drift apart.
    pub fn touched_after(&self, ts: Ts) -> bool {
        self.begin_ts > ts || (self.end_ts != TS_LIVE && self.end_ts > ts)
    }

    /// [`Version::touched_after`] bounded above: true if a commit in the
    /// open window `(after, upto)` created or superseded/deleted this
    /// version. The SSI commit path uses this inside the publication
    /// window, where versions installed at `upto` (the validating
    /// commit's own timestamp) and above belong to *successors* and must
    /// not count as conflicts.
    pub fn touched_in(&self, after: Ts, upto: Ts) -> bool {
        (self.begin_ts > after && self.begin_ts < upto)
            || (self.end_ts != TS_LIVE && self.end_ts > after && self.end_ts < upto)
    }
}

/// The ordered version history of one primary key.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VersionChain {
    versions: Vec<Version>,
}

impl VersionChain {
    /// Creates an empty chain.
    pub fn new() -> Self {
        VersionChain::default()
    }

    /// All versions, oldest first.
    pub fn versions(&self) -> &[Version] {
        &self.versions
    }

    /// The row visible at timestamp `ts`, if any.
    pub fn visible_at(&self, ts: Ts) -> Option<&Arc<Row>> {
        // Versions are appended in commit order, so scan from the end.
        self.versions
            .iter()
            .rev()
            .find(|v| v.visible_at(ts))
            .map(|v| &v.row)
    }

    /// The live row, if the key currently exists.
    pub fn live(&self) -> Option<&Arc<Row>> {
        self.versions.last().filter(|v| v.is_live()).map(|v| &v.row)
    }

    /// The most recent version regardless of liveness.
    pub fn latest_version(&self) -> Option<&Version> {
        self.versions.last()
    }

    /// True if this key was written (created, updated, or deleted) by any
    /// transaction with commit timestamp strictly greater than `ts`.
    ///
    /// Only the newest version needs to be inspected: versions are
    /// appended in commit order, so if any version began after `ts` the
    /// newest one did, and a deletion after `ts` is visible as the newest
    /// version's end timestamp. Keeping this O(1) matters because the
    /// commit path validates every read/write key with it.
    pub fn modified_after(&self, ts: Ts) -> bool {
        match self.versions.last() {
            Some(v) => v.touched_after(ts),
            None => false,
        }
    }

    /// True if this key was written by any commit in the open window
    /// `(after, upto)`. Unlike [`VersionChain::modified_after`] the newest
    /// version alone cannot answer this (it may belong to a successor at
    /// or above `upto`), so the chain is walked newest-first, stopping at
    /// the first version that began at or before `after` — everything
    /// older ended at or before that version began.
    pub fn modified_in(&self, after: Ts, upto: Ts) -> bool {
        for v in self.versions.iter().rev() {
            if v.touched_in(after, upto) {
                return true;
            }
            if v.begin_ts <= after {
                break;
            }
        }
        false
    }

    /// Installs a new version committed at `commit_ts`, superseding the
    /// current live version if present. Returns the before image if one
    /// existed.
    pub fn install(&mut self, commit_ts: Ts, row: Arc<Row>) -> Option<Arc<Row>> {
        let before = self.close_live(commit_ts);
        self.versions.push(Version {
            begin_ts: commit_ts,
            end_ts: TS_LIVE,
            row,
        });
        before
    }

    /// Marks the live version as deleted at `commit_ts`. Returns the
    /// deleted row if one existed.
    pub fn remove(&mut self, commit_ts: Ts) -> Option<Arc<Row>> {
        self.close_live(commit_ts)
    }

    fn close_live(&mut self, commit_ts: Ts) -> Option<Arc<Row>> {
        if let Some(last) = self.versions.last_mut() {
            if last.is_live() {
                last.end_ts = commit_ts;
                return Some(last.row.clone());
            }
        }
        None
    }

    /// Drops versions that ended at or before `ts` and are no longer
    /// reachable by any reader at or after `ts` (simple garbage
    /// collection). Returns the number of versions removed.
    pub fn gc_before(&mut self, ts: Ts) -> usize {
        let before = self.versions.len();
        // Keep the last version that began at or before ts (it may still be
        // visible to readers at ts) plus everything after it.
        let mut keep_from = 0;
        for (i, v) in self.versions.iter().enumerate() {
            if v.end_ts != TS_LIVE && v.end_ts <= ts {
                keep_from = i + 1;
            } else {
                break;
            }
        }
        if keep_from > 0 {
            self.versions.drain(0..keep_from);
        }
        before - self.versions.len()
    }

    /// Number of stored versions.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// True if no versions exist.
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::row::Row;

    fn arc(r: Row) -> Arc<Row> {
        Arc::new(r)
    }

    #[test]
    fn install_and_visibility() {
        let mut chain = VersionChain::new();
        assert!(chain.visible_at(100).is_none());

        chain.install(5, arc(row![1i64, "v1"]));
        assert_eq!(chain.visible_at(5), Some(&arc(row![1i64, "v1"])));
        assert_eq!(chain.visible_at(4), None);
        assert_eq!(chain.live(), Some(&arc(row![1i64, "v1"])));

        let before = chain.install(9, arc(row![1i64, "v2"]));
        assert_eq!(before, Some(arc(row![1i64, "v1"])));
        assert_eq!(chain.visible_at(5), Some(&arc(row![1i64, "v1"])));
        assert_eq!(chain.visible_at(8), Some(&arc(row![1i64, "v1"])));
        assert_eq!(chain.visible_at(9), Some(&arc(row![1i64, "v2"])));
        assert_eq!(chain.live(), Some(&arc(row![1i64, "v2"])));
    }

    #[test]
    fn install_shares_the_allocation_with_readers() {
        // The zero-copy contract: a read returns the same allocation the
        // writer installed, not a deep copy.
        let mut chain = VersionChain::new();
        let row = arc(row![1i64, "shared"]);
        chain.install(3, row.clone());
        let seen = chain.visible_at(3).unwrap();
        assert!(Arc::ptr_eq(seen, &row));
    }

    #[test]
    fn remove_hides_row_from_later_reads() {
        let mut chain = VersionChain::new();
        chain.install(2, arc(row![7i64]));
        let deleted = chain.remove(4);
        assert_eq!(deleted, Some(arc(row![7i64])));
        assert_eq!(chain.visible_at(3), Some(&arc(row![7i64])));
        assert_eq!(chain.visible_at(4), None);
        assert_eq!(chain.live(), None);
        // Deleting again is a no-op.
        assert_eq!(chain.remove(5), None);
    }

    #[test]
    fn modified_after_detects_later_writes_and_deletes() {
        let mut chain = VersionChain::new();
        chain.install(3, arc(row![1i64]));
        assert!(!chain.modified_after(3));
        assert!(chain.modified_after(2));

        chain.install(6, arc(row![2i64]));
        assert!(chain.modified_after(5));
        assert!(!chain.modified_after(6));

        chain.remove(8);
        assert!(chain.modified_after(7));
        assert!(!chain.modified_after(8));
    }

    #[test]
    fn gc_drops_only_unreachable_versions() {
        let mut chain = VersionChain::new();
        chain.install(1, arc(row![1i64]));
        chain.install(3, arc(row![2i64]));
        chain.install(5, arc(row![3i64]));
        assert_eq!(chain.len(), 3);

        // Readers at ts >= 4: the version ending at 3 is unreachable.
        let dropped = chain.gc_before(4);
        assert_eq!(dropped, 1);
        assert_eq!(chain.len(), 2);
        assert_eq!(chain.visible_at(4), Some(&arc(row![2i64])));
        assert_eq!(chain.visible_at(10), Some(&arc(row![3i64])));

        // GC below any end timestamp keeps everything.
        let dropped = chain.gc_before(0);
        assert_eq!(dropped, 0);
    }

    #[test]
    fn version_visibility_window() {
        let v = Version {
            begin_ts: 10,
            end_ts: 20,
            row: arc(row![1i64]),
        };
        assert!(!v.visible_at(9));
        assert!(v.visible_at(10));
        assert!(v.visible_at(19));
        assert!(!v.visible_at(20));
        assert!(!v.is_live());
    }
}
