//! # trod-db
//!
//! An in-memory, multi-version, transactional storage engine used as the
//! application DBMS substrate of the TROD reproduction (*Transactions Make
//! Debugging Easy*, CIDR 2023).
//!
//! The engine provides exactly the capabilities TROD's design relies on:
//!
//! * **ACID transactions** with three isolation levels; the default is
//!   strict serializability implemented with optimistic validation, so
//!   transactions are serialized in commit order (paper §3.1).
//! * **A commit-ordered transaction log** with change-data-capture
//!   records (before/after images) for every write (paper §3.4).
//! * **Time travel** (as-of reads) and **named snapshots**, plus cheap
//!   database **forks** used as the "development database" during replay
//!   and retroactive programming (paper §3.5–3.6).
//! * A synthetic **storage latency profile** so benchmarks can contrast an
//!   in-memory backing store (VoltDB in the paper) with an on-disk one
//!   (Postgres) when measuring tracing overhead (paper §3.7).
//!
//! ## Hot-path architecture
//!
//! Three design decisions keep the always-on tracing budget (<100 µs per
//! request, paper §3.7) intact as tables grow:
//!
//! * **Zero-copy MVCC reads.** Row images live in version chains as
//!   [`Arc<Row>`](std::sync::Arc); `get_at` / `scan_at` /
//!   `materialize_at`, CDC before/after images and the change log all
//!   share the writer's allocation. The read path never deep-copies a
//!   row — the query layer copies once, at the boundary where it
//!   materialises relations of owned values.
//!
//! * **O(Δ) serializable validation.** Each table keeps a bounded,
//!   commit-ordered [`ChangeLog`](changelog::ChangeLog) of recent row
//!   changes, appended by `install`/`remove` under that table's commit
//!   lock. Serializable predicate (phantom) validation walks only the
//!   entries in `(start_ts, now]` — cost proportional to the *delta*
//!   since the transaction began, independent of table size. Truncation
//!   raises a low-water mark; a window the log cannot cover falls back to
//!   the original full version scan, so truncation can never cause a
//!   missed conflict. The two paths are decision-equivalent
//!   (property-tested, plus a debug-build assertion on every commit), and
//!   [`Database::set_full_scan_validation`] exposes the slow path so the
//!   equivalence stays observable and the speedup measurable.
//!
//! * **Compiled predicates.** [`Predicate::compile`] resolves column
//!   names to ordinals once per scan/validation, so per-row evaluation
//!   ([`CompiledPredicate::matches`]) does no string lookups.
//!
//! * **Planned, sublinear scans.** Every predicate scan runs through a
//!   cost-based access-path planner: hash-index point probes and
//!   `IN (...)` multi-probes, ordered [`RangeIndex`](index::RangeIndex)
//!   probes for comparison windows, or the full chain walk — whichever
//!   estimates the fewest candidates. Index paths over-approximate and
//!   re-check, never under-approximate, so every path (at any read
//!   timestamp, time travel included) returns the full scan's exact
//!   result set. See the read-path docs on [`database`].
//!
//! * **Sharded commits, spanning stores.** There is no global commit
//!   lock: commits take the per-resource locks of their footprint in
//!   sorted name order, claim a timestamp from a global atomic
//!   allocator, and publish in timestamp order, so transactions over
//!   disjoint resources validate, install and (with an on-disk latency
//!   profile) even "fsync" fully concurrently while readers can never
//!   observe a torn multi-table commit. Resources are not only tables:
//!   other stores join a commit as
//!   [`CommitParticipant`](commit::CommitParticipant)s, contributing
//!   their own lock names (e.g. `kv:<namespace>`), validation and
//!   installation — one timestamp and one transaction-log entry span
//!   every store (the paper's §5 aligned history). An
//!   [`ActiveTxnRegistry`](registry::ActiveTxnRegistry) tracks
//!   `(txn_id, start_ts)` for every live transaction; its
//!   min-active-start-ts watermark (clamped to the published clock)
//!   bounds [`Database::gc_before`] and change-log ring eviction so
//!   reclamation never outruns an active transaction. See the protocol
//!   write-up on [`database`].
//!
//! ## Quick example
//!
//! ```
//! use trod_db::{Database, DataType, Predicate, Schema, row};
//!
//! let db = Database::new();
//! let schema = Schema::builder()
//!     .column("id", DataType::Int)
//!     .column("name", DataType::Text)
//!     .primary_key(&["id"])
//!     .build()
//!     .unwrap();
//! db.create_table("users", schema).unwrap();
//!
//! let mut txn = db.begin();
//! txn.insert("users", row![1i64, "alice"]).unwrap();
//! let info = txn.commit().unwrap();
//! assert_eq!(info.changes.len(), 1);
//!
//! let rows = db.scan_latest("users", &Predicate::eq("name", "alice")).unwrap();
//! assert_eq!(rows.len(), 1);
//! ```

pub mod cdc;
pub mod changelog;
pub mod checkpoint;
pub mod commit;
pub mod database;
pub mod error;
pub mod index;
pub mod latency;
pub mod log;
pub mod mvcc;
pub mod predicate;
pub mod registry;
pub mod row;
pub mod schema;
pub mod segment;
pub mod table;
pub mod txn;
pub mod value;
pub mod wal;

pub use cdc::{is_kv_table, ChangeOp, ChangeRecord, KV_TABLE_PREFIX};
pub use changelog::{ChangeEntry, ChangeLog};
pub use checkpoint::{
    decode_checkpoint, encode_checkpoint, Checkpoint, CheckpointContributor, CheckpointNamespace,
    CheckpointTable,
};
pub use commit::CommitParticipant;
pub use database::{Database, DbStats};
pub use error::{DbError, DbResult, KvError, KvResult, StorageError, TrodError, TrodResult};
pub use index::{RangeIndex, SecondaryIndex};
pub use latency::StorageProfile;
pub use log::{CommittedTxn, RetentionPolicy, TxnId};
pub use mvcc::{Ts, TS_LIVE};
pub use predicate::{CmpOp, ColumnBounds, CompiledPredicate, Predicate};
pub use registry::ActiveTxnRegistry;
pub use row::{Key, Row};
pub use schema::{Column, Schema, SchemaBuilder};
pub use segment::{
    DirFailpointHandle, FailpointDir, FsDir, LogDir, MemDir, SegmentedRecovery, SegmentedWal,
    WalStats,
};
pub use table::{BatchOp, ScanPlan, ScanRows, TableStore};
pub use txn::{CommitInfo, IsolationLevel, ReadSummary, Transaction};
pub use value::{DataType, Value};
pub use wal::{
    FailpointHandle, FailpointSink, FileSink, MemSink, RecoveryInfo, RecoveryReport, SyncMode, Wal,
    WalOptions, WalRecord, WalSink, DEFAULT_CHECKPOINT_BYTES, DEFAULT_SEGMENT_BYTES,
};
