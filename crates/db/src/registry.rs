//! Active-transaction registry: who is running, and since when.
//!
//! Every transaction registers `(txn_id, start_ts)` at `begin` and
//! deregisters when it commits, aborts, or is dropped. The registry's one
//! derived fact is the **watermark**: the minimum `start_ts` over all
//! active transactions ([`ActiveTxnRegistry::min_active_start_ts`]).
//!
//! The watermark bounds how aggressively history may be discarded:
//!
//! * [`Database::gc_before`](crate::Database::gc_before) clamps its
//!   horizon to the watermark, so garbage collection never drops a row
//!   version or change-log entry an active transaction can still read or
//!   must validate against;
//! * [`ChangeLog`](crate::changelog::ChangeLog) ring eviction only evicts
//!   entries at or below the watermark, so an active transaction's
//!   validation window is never truncated out from under it and the O(Δ)
//!   validator never falls back to the full version scan merely because
//!   the ring filled up.
//!
//! Registration reads the commit clock *inside* the registry lock (see
//! [`ActiveTxnRegistry::register_with`]), which makes begin and
//! watermark queries linearizable: a concurrent GC either sees the new
//! transaction (and keeps its snapshot) or completes before the
//! transaction's `start_ts` exists (and can only have truncated below it).
//!
//! The minimum is cached in an atomic so the hot paths (ring eviction on
//! every install, GC) read it without taking the registry lock.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::log::TxnId;
use crate::mvcc::Ts;

/// Watermark value when no transaction is active: nothing is pinned, all
/// history is collectable.
pub const NO_ACTIVE_TXN: Ts = Ts::MAX;

#[derive(Debug, Default)]
struct RegistryInner {
    /// txn id -> start_ts for every active transaction.
    by_id: HashMap<TxnId, Ts>,
    /// Multiset of active start timestamps (several transactions may share
    /// one): the watermark is the first key.
    by_start_ts: BTreeMap<Ts, usize>,
}

impl RegistryInner {
    fn min(&self) -> Ts {
        self.by_start_ts
            .keys()
            .next()
            .copied()
            .unwrap_or(NO_ACTIVE_TXN)
    }
}

/// Registry of active (begun, not yet finished) transactions.
#[derive(Debug, Default)]
pub struct ActiveTxnRegistry {
    inner: Mutex<RegistryInner>,
    /// Cached minimum active start_ts; [`NO_ACTIVE_TXN`] when idle.
    min_start_ts: AtomicU64,
}

impl ActiveTxnRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ActiveTxnRegistry {
            inner: Mutex::new(RegistryInner::default()),
            min_start_ts: AtomicU64::new(NO_ACTIVE_TXN),
        }
    }

    /// Registers transaction `id`, reading its snapshot timestamp via
    /// `read_clock` *while holding the registry lock*. Returns the
    /// registered `start_ts`.
    ///
    /// Taking the clock reading inside the lock closes the begin/GC race:
    /// the watermark can never be observed above a start_ts that is about
    /// to come into existence below it.
    pub fn register_with(&self, id: TxnId, read_clock: impl FnOnce() -> Ts) -> Ts {
        let mut inner = self.inner.lock();
        let start_ts = read_clock();
        let prev = inner.by_id.insert(id, start_ts);
        debug_assert!(prev.is_none(), "txn {id} registered twice");
        *inner.by_start_ts.entry(start_ts).or_insert(0) += 1;
        self.min_start_ts.store(inner.min(), Ordering::SeqCst);
        start_ts
    }

    /// Removes transaction `id`; returns true if it was registered.
    pub fn deregister(&self, id: TxnId) -> bool {
        let mut inner = self.inner.lock();
        let Some(start_ts) = inner.by_id.remove(&id) else {
            return false;
        };
        if let Some(count) = inner.by_start_ts.get_mut(&start_ts) {
            *count -= 1;
            if *count == 0 {
                inner.by_start_ts.remove(&start_ts);
            }
        }
        self.min_start_ts.store(inner.min(), Ordering::SeqCst);
        true
    }

    /// A guard that deregisters `id` when dropped; used by the commit path
    /// so the transaction stays registered (pinning its snapshot) through
    /// validation and install, whatever the outcome.
    pub fn deregister_on_drop(&self, id: TxnId) -> DeregisterGuard<'_> {
        DeregisterGuard { registry: self, id }
    }

    /// The minimum start timestamp over all active transactions, or `None`
    /// when no transaction is active.
    pub fn min_active_start_ts(&self) -> Option<Ts> {
        match self.min_start_ts.load(Ordering::SeqCst) {
            NO_ACTIVE_TXN => None,
            ts => Some(ts),
        }
    }

    /// The truncation watermark: [`Self::min_active_start_ts`], or
    /// [`NO_ACTIVE_TXN`] when idle. History at or below this timestamp is
    /// safe to discard; history above it is pinned.
    pub fn watermark(&self) -> Ts {
        self.min_start_ts.load(Ordering::SeqCst)
    }

    /// The horizon change-log ring eviction may discard up to:
    /// `min(watermark, published clock)`, with both read under the
    /// registry lock.
    ///
    /// Reading the cached watermark alone is racy against `begin`: an
    /// at-capacity append could observe "no active transaction", and a
    /// transaction registering concurrently (with a snapshot below an
    /// entry about to be evicted) would find its validation window
    /// truncated — benign (validation falls back to the full scan) but a
    /// needless O(total versions) cliff. Taking the registry lock orders
    /// this read against [`Self::register_with`], and clamping to the
    /// clock (read *inside* the same lock, via `read_clock`) covers the
    /// remaining case: a transaction that registers after this read
    /// obtains `start_ts >= clock-as-read-here` (the clock is monotone),
    /// so nothing above the returned horizon can sit inside its window.
    pub fn eviction_horizon(&self, read_clock: impl FnOnce() -> Ts) -> Ts {
        let inner = self.inner.lock();
        let clock = read_clock();
        inner.min().min(clock)
    }

    /// The start timestamp of a specific active transaction.
    pub fn start_ts_of(&self, id: TxnId) -> Option<Ts> {
        self.inner.lock().by_id.get(&id).copied()
    }

    /// Number of active transactions.
    pub fn active_count(&self) -> usize {
        self.inner.lock().by_id.len()
    }
}

/// See [`ActiveTxnRegistry::deregister_on_drop`].
#[derive(Debug)]
pub struct DeregisterGuard<'a> {
    registry: &'a ActiveTxnRegistry,
    id: TxnId,
}

impl Drop for DeregisterGuard<'_> {
    fn drop(&mut self) {
        self.registry.deregister(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermark_tracks_min_active_start_ts() {
        let reg = ActiveTxnRegistry::new();
        assert_eq!(reg.min_active_start_ts(), None);
        assert_eq!(reg.watermark(), NO_ACTIVE_TXN);

        reg.register_with(1, || 10);
        reg.register_with(2, || 5);
        reg.register_with(3, || 20);
        assert_eq!(reg.min_active_start_ts(), Some(5));
        assert_eq!(reg.active_count(), 3);
        assert_eq!(reg.start_ts_of(2), Some(5));

        assert!(reg.deregister(2));
        assert_eq!(reg.min_active_start_ts(), Some(10));
        assert!(reg.deregister(1));
        assert_eq!(reg.min_active_start_ts(), Some(20));
        assert!(reg.deregister(3));
        assert_eq!(reg.min_active_start_ts(), None);
        assert!(!reg.deregister(3), "double deregister is a no-op");
    }

    #[test]
    fn shared_start_ts_is_counted_not_clobbered() {
        let reg = ActiveTxnRegistry::new();
        reg.register_with(1, || 7);
        reg.register_with(2, || 7);
        assert!(reg.deregister(1));
        // The other transaction at ts 7 still pins the watermark.
        assert_eq!(reg.min_active_start_ts(), Some(7));
        assert!(reg.deregister(2));
        assert_eq!(reg.min_active_start_ts(), None);
    }

    #[test]
    fn eviction_horizon_clamps_to_watermark_and_clock() {
        let reg = ActiveTxnRegistry::new();
        // Idle registry: the horizon is the published clock, not MAX — a
        // not-yet-registered transaction can only begin at or above it.
        assert_eq!(reg.eviction_horizon(|| 42), 42);
        // An active transaction below the clock pins the horizon.
        reg.register_with(1, || 7);
        assert_eq!(reg.eviction_horizon(|| 42), 7);
        // The clock still clamps when the active transaction is newer.
        assert_eq!(reg.eviction_horizon(|| 3), 3);
        reg.deregister(1);
        assert_eq!(reg.eviction_horizon(|| 42), 42);
    }

    #[test]
    fn guard_deregisters_on_drop() {
        let reg = ActiveTxnRegistry::new();
        reg.register_with(9, || 3);
        {
            let _guard = reg.deregister_on_drop(9);
            assert_eq!(reg.active_count(), 1);
        }
        assert_eq!(reg.active_count(), 0);
        assert_eq!(reg.watermark(), NO_ACTIVE_TXN);
    }
}
