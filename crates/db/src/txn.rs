//! Transactions.
//!
//! The engine uses optimistic concurrency control: transactions buffer
//! their writes locally, read from a consistent snapshot, and validate at
//! commit time under the per-table commit locks of their footprint (see
//! the sharded commit protocol documented on [`crate::database`]). Under
//! [`IsolationLevel::Serializable`] both point reads and predicate scans
//! are validated, which yields strict serializability: the commit
//! (timestamp) order is the serial order (exactly the property the TROD
//! paper assumes in §3.1). Snapshot isolation validates only write-write
//! conflicts, and read committed performs no validation — these weaker
//! levels exist so that tests and benchmarks can demonstrate behaviour
//! under the "lower isolation levels" the paper mentions.
//!
//! Every transaction is tracked in the database's
//! [`ActiveTxnRegistry`](crate::registry::ActiveTxnRegistry) from `begin`
//! until commit, abort, or drop; the registry's min-active-start-ts
//! watermark keeps garbage collection and change-log eviction from
//! reclaiming history the transaction still needs.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::cdc::ChangeRecord;
use crate::database::Database;
use crate::error::{DbError, DbResult};
use crate::log::TxnId;
use crate::mvcc::Ts;
use crate::predicate::Predicate;
use crate::row::{Key, Row};

/// Transaction isolation levels supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IsolationLevel {
    /// Reads always observe the latest committed state; no validation.
    ReadCommitted,
    /// Reads observe the snapshot at `begin`; write-write conflicts abort.
    SnapshotIsolation,
    /// Snapshot reads plus read-set and predicate validation at commit:
    /// strictly serializable, serialized in commit order.
    #[default]
    Serializable,
}

/// A buffered, not-yet-committed write. Row images are `Arc`-shared so
/// that commit, CDC capture and the change log reuse one allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteOp {
    Insert(Arc<Row>),
    Update { before: Arc<Row>, after: Arc<Row> },
    Delete { before: Arc<Row> },
}

impl WriteOp {
    /// The row this transaction would observe for the key, if any.
    pub fn visible_row(&self) -> Option<&Arc<Row>> {
        match self {
            WriteOp::Insert(r) | WriteOp::Update { after: r, .. } => Some(r),
            WriteOp::Delete { .. } => None,
        }
    }
}

/// Internal mutable state of an active transaction; handed to the
/// database's commit path on commit.
#[derive(Debug)]
pub(crate) struct TxnState {
    pub id: TxnId,
    pub start_ts: Ts,
    pub isolation: IsolationLevel,
    /// Point reads: (table, key).
    pub read_set: Vec<(String, Key)>,
    /// Predicate reads (scans): (table, predicate). Needed for phantom
    /// detection and, in TROD, for read-dependency provenance.
    pub scan_set: Vec<(String, Predicate)>,
    /// Buffered writes per table, keyed by primary key.
    pub writes: BTreeMap<String, BTreeMap<Key, WriteOp>>,
    /// The visibility timestamp of the most recent read (see
    /// [`Transaction::last_read_ts`]).
    pub last_read_ts: Ts,
}

impl TxnState {
    fn new(id: TxnId, start_ts: Ts, isolation: IsolationLevel) -> Self {
        TxnState {
            id,
            start_ts,
            isolation,
            read_set: Vec::new(),
            scan_set: Vec::new(),
            writes: BTreeMap::new(),
            last_read_ts: start_ts,
        }
    }

    /// True if the transaction made no writes.
    pub fn is_read_only(&self) -> bool {
        self.writes.values().all(|m| m.is_empty())
    }
}

/// Result of a successful commit, consumed by the tracing layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitInfo {
    pub txn_id: TxnId,
    pub start_ts: Ts,
    pub commit_ts: Ts,
    /// Row-level changes in application order; empty for read-only commits.
    pub changes: Vec<ChangeRecord>,
}

/// Summary of a transaction's reads, exposed so the interposition layer
/// can record read provenance without re-deriving it.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadSummary {
    /// Point reads: (table, key, row-as-read-if-present).
    pub point_reads: Vec<(String, Key)>,
    /// Predicate reads: (table, predicate).
    pub predicate_reads: Vec<(String, Predicate)>,
}

/// An active transaction handle.
///
/// Dropping an uncommitted transaction aborts it implicitly: its buffered
/// writes are discarded and it is removed from the active-transaction
/// registry (releasing its pin on the GC watermark).
#[derive(Debug)]
pub struct Transaction {
    db: Database,
    state: Option<TxnState>,
}

impl Drop for Transaction {
    fn drop(&mut self) {
        // Commit hands the state (and the deregistration duty) to the
        // database; anything else — explicit abort or an implicit drop —
        // deregisters here.
        if let Some(state) = self.state.take() {
            self.db.registry().deregister(state.id);
        }
    }
}

impl Transaction {
    pub(crate) fn new(db: Database, id: TxnId, start_ts: Ts, isolation: IsolationLevel) -> Self {
        Transaction {
            db,
            state: Some(TxnState::new(id, start_ts, isolation)),
        }
    }

    /// The transaction id assigned at begin.
    pub fn id(&self) -> TxnId {
        self.state.as_ref().map(|s| s.id).unwrap_or(0)
    }

    /// The snapshot timestamp this transaction reads at (for snapshot
    /// isolation and serializable; read committed re-reads the latest
    /// committed state on every access).
    pub fn start_ts(&self) -> Ts {
        self.state.as_ref().map(|s| s.start_ts).unwrap_or(0)
    }

    /// The isolation level.
    pub fn isolation(&self) -> IsolationLevel {
        self.state.as_ref().map(|s| s.isolation).unwrap_or_default()
    }

    /// True if the transaction is still active.
    pub fn is_active(&self) -> bool {
        self.state.is_some()
    }

    fn state_mut(&mut self) -> DbResult<&mut TxnState> {
        self.state.as_mut().ok_or(DbError::TransactionClosed)
    }

    fn state_ref(&self) -> DbResult<&TxnState> {
        self.state.as_ref().ok_or(DbError::TransactionClosed)
    }

    fn read_ts(&self) -> DbResult<Ts> {
        let s = self.state_ref()?;
        Ok(match s.isolation {
            IsolationLevel::ReadCommitted => self.db.current_ts(),
            IsolationLevel::SnapshotIsolation | IsolationLevel::Serializable => s.start_ts,
        })
    }

    /// The visibility timestamp the most recent [`Transaction::get`] /
    /// [`Transaction::scan`] was served at (the transaction's snapshot
    /// until the first read). Under snapshot isolation and serializable
    /// this is always `start_ts`; under read committed it is the
    /// published clock at the time of the read — which is exactly the
    /// per-read provenance the tracing layer records so weak-isolation
    /// histories stay replayable.
    pub fn last_read_ts(&self) -> Ts {
        self.state
            .as_ref()
            .map(|s| s.last_read_ts)
            .unwrap_or_default()
    }

    /// Reads the row with primary key `key` from `table`, observing this
    /// transaction's own buffered writes.
    pub fn get(&mut self, table: &str, key: &Key) -> DbResult<Option<Arc<Row>>> {
        let read_ts = self.read_ts()?;
        let store = self.db.table(table)?;
        self.db.latency().on_read();
        let state = self.state_mut()?;
        state.last_read_ts = read_ts;
        state.read_set.push((table.to_string(), key.clone()));
        if let Some(op) = state.writes.get(table).and_then(|m| m.get(key)) {
            return Ok(op.visible_row().cloned());
        }
        Ok(store.get_at(key, read_ts))
    }

    /// Scans `table` for rows matching `pred`, observing this
    /// transaction's own buffered writes. Results are ordered by primary
    /// key so traces and replays are deterministic.
    pub fn scan(&mut self, table: &str, pred: &Predicate) -> DbResult<Vec<(Key, Arc<Row>)>> {
        let read_ts = self.read_ts()?;
        let store = self.db.table(table)?;
        self.db.latency().on_read();
        let compiled = pred.compile(store.schema())?;
        let mut rows: BTreeMap<Key, Arc<Row>> = store
            .scan_at_compiled(pred, &compiled, read_ts)?
            .into_iter()
            .collect();

        let state = self.state_mut()?;
        state.last_read_ts = read_ts;
        state.scan_set.push((table.to_string(), pred.clone()));
        if let Some(writes) = state.writes.get(table) {
            for (key, op) in writes {
                match op.visible_row() {
                    Some(row) if compiled.matches(row) => {
                        rows.insert(key.clone(), row.clone());
                    }
                    _ => {
                        rows.remove(key);
                    }
                }
            }
        }
        Ok(rows.into_iter().collect())
    }

    /// Convenience: true if any row matches `pred`.
    pub fn exists(&mut self, table: &str, pred: &Predicate) -> DbResult<bool> {
        Ok(!self.scan(table, pred)?.is_empty())
    }

    /// Convenience: number of rows matching `pred`.
    pub fn count(&mut self, table: &str, pred: &Predicate) -> DbResult<usize> {
        Ok(self.scan(table, pred)?.len())
    }

    /// Inserts a new row. Fails with [`DbError::DuplicateKey`] if a row
    /// with the same primary key is visible to this transaction.
    pub fn insert(&mut self, table: &str, row: Row) -> DbResult<Key> {
        let read_ts = self.read_ts()?;
        let store = self.db.table(table)?;
        store.schema().validate_row(table, &row)?;
        let key = Key::new(store.schema().key_of(&row));

        let exists_committed = store.exists_at(&key, read_ts);
        let row = Arc::new(row);
        let state = self.state_mut()?;
        // The duplicate check is a read of this key: record it so that a
        // concurrent insert of the same key is caught by validation.
        state.read_set.push((table.to_string(), key.clone()));
        let table_writes = state.writes.entry(table.to_string()).or_default();
        match table_writes.get(&key) {
            Some(WriteOp::Insert(_)) | Some(WriteOp::Update { .. }) => {
                return Err(DbError::DuplicateKey {
                    table: table.to_string(),
                    key: key.to_string(),
                });
            }
            Some(WriteOp::Delete { before }) => {
                // Deleted earlier in this transaction: the net effect is an
                // update of the original row.
                let before = before.clone();
                table_writes.insert(key.clone(), WriteOp::Update { before, after: row });
                return Ok(key);
            }
            None => {}
        }
        if exists_committed {
            return Err(DbError::DuplicateKey {
                table: table.to_string(),
                key: key.to_string(),
            });
        }
        table_writes.insert(key.clone(), WriteOp::Insert(row));
        Ok(key)
    }

    /// Updates the row with primary key `key` to `new_row`. The new row's
    /// primary key must be unchanged.
    pub fn update(&mut self, table: &str, key: &Key, new_row: Row) -> DbResult<()> {
        let read_ts = self.read_ts()?;
        let store = self.db.table(table)?;
        store.schema().validate_row(table, &new_row)?;
        let new_key = Key::new(store.schema().key_of(&new_row));
        if &new_key != key {
            return Err(DbError::Invalid(format!(
                "update must not change the primary key ({key} -> {new_key})"
            )));
        }
        let committed = store.get_at(key, read_ts);
        let new_row = Arc::new(new_row);
        let state = self.state_mut()?;
        state.read_set.push((table.to_string(), key.clone()));
        let table_writes = state.writes.entry(table.to_string()).or_default();
        let op = match table_writes.get(key) {
            Some(WriteOp::Insert(_)) => WriteOp::Insert(new_row),
            Some(WriteOp::Update { before, .. }) => WriteOp::Update {
                before: before.clone(),
                after: new_row,
            },
            Some(WriteOp::Delete { .. }) => {
                return Err(DbError::NoSuchKey {
                    table: table.to_string(),
                    key: key.to_string(),
                })
            }
            None => {
                let before = committed.ok_or_else(|| DbError::NoSuchKey {
                    table: table.to_string(),
                    key: key.to_string(),
                })?;
                WriteOp::Update {
                    before,
                    after: new_row,
                }
            }
        };
        table_writes.insert(key.clone(), op);
        Ok(())
    }

    /// Updates every row matching `pred` by applying `f`. Returns the
    /// number of rows updated.
    pub fn update_where<F>(&mut self, table: &str, pred: &Predicate, mut f: F) -> DbResult<usize>
    where
        F: FnMut(&Row) -> Row,
    {
        let matches = self.scan(table, pred)?;
        let mut n = 0;
        for (key, row) in matches {
            let new_row = f(&row);
            self.update(table, &key, new_row)?;
            n += 1;
        }
        Ok(n)
    }

    /// Deletes the row with primary key `key`. Returns true if a row was
    /// deleted.
    pub fn delete(&mut self, table: &str, key: &Key) -> DbResult<bool> {
        let read_ts = self.read_ts()?;
        let store = self.db.table(table)?;
        let committed = store.get_at(key, read_ts);
        let state = self.state_mut()?;
        state.read_set.push((table.to_string(), key.clone()));
        let table_writes = state.writes.entry(table.to_string()).or_default();
        match table_writes.get(key) {
            Some(WriteOp::Insert(_)) => {
                // Inserted and deleted within this transaction: net no-op.
                table_writes.remove(key);
                Ok(true)
            }
            Some(WriteOp::Update { before, .. }) => {
                let before = before.clone();
                table_writes.insert(key.clone(), WriteOp::Delete { before });
                Ok(true)
            }
            Some(WriteOp::Delete { .. }) => Ok(false),
            None => match committed {
                Some(before) => {
                    table_writes.insert(key.clone(), WriteOp::Delete { before });
                    Ok(true)
                }
                None => Ok(false),
            },
        }
    }

    /// Deletes every row matching `pred`. Returns the number deleted.
    pub fn delete_where(&mut self, table: &str, pred: &Predicate) -> DbResult<usize> {
        let matches = self.scan(table, pred)?;
        let mut n = 0;
        for (key, _) in matches {
            if self.delete(table, &key)? {
                n += 1;
            }
        }
        Ok(n)
    }

    /// A summary of the reads performed so far (point reads and predicate
    /// scans), used by the interposition layer for read provenance.
    pub fn read_summary(&self) -> ReadSummary {
        match &self.state {
            Some(s) => ReadSummary {
                point_reads: s.read_set.clone(),
                predicate_reads: s.scan_set.clone(),
            },
            None => ReadSummary {
                point_reads: Vec::new(),
                predicate_reads: Vec::new(),
            },
        }
    }

    /// The buffered (uncommitted) writes as CDC-style change records.
    pub fn pending_changes(&self) -> Vec<ChangeRecord> {
        let mut out = Vec::new();
        if let Some(s) = &self.state {
            for (table, writes) in &s.writes {
                for (key, op) in writes {
                    let rec = match op {
                        WriteOp::Insert(after) => {
                            ChangeRecord::insert(table.clone(), key.clone(), after.clone())
                        }
                        WriteOp::Update { before, after } => ChangeRecord::update(
                            table.clone(),
                            key.clone(),
                            before.clone(),
                            after.clone(),
                        ),
                        WriteOp::Delete { before } => {
                            ChangeRecord::delete(table.clone(), key.clone(), before.clone())
                        }
                    };
                    out.push(rec);
                }
            }
        }
        out
    }

    /// Commits the transaction, returning commit metadata and the CDC
    /// records. Concurrency failures ([`DbError::WriteConflict`],
    /// [`DbError::SerializationFailure`]) abort the transaction.
    pub fn commit(mut self) -> DbResult<CommitInfo> {
        let state = self.state.take().ok_or(DbError::TransactionClosed)?;
        self.db.commit_txn(state)
    }

    /// Commits the transaction together with external commit participants
    /// (other stores joining the same atomic commit; see
    /// [`crate::commit::CommitParticipant`]). Everything commits at one
    /// timestamp or nothing does; the participants' change records land
    /// in the same transaction-log entry as the relational ones. This is
    /// the choke point the unified `Txn` surface drives — `commit` is the
    /// zero-participant special case.
    pub fn commit_with_participants(
        mut self,
        participants: &[&dyn crate::commit::CommitParticipant],
    ) -> crate::error::TrodResult<CommitInfo> {
        let state = self
            .state
            .take()
            .ok_or(crate::error::TrodError::Relational(
                DbError::TransactionClosed,
            ))?;
        self.db.commit_coordinated(state, participants)
    }

    /// Aborts the transaction, discarding all buffered writes and
    /// deregistering it from the active-transaction registry (via `Drop`).
    pub fn abort(self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::row;
    use crate::schema::Schema;
    use crate::value::{DataType, Value};

    fn db_with_accounts() -> Database {
        let db = Database::new();
        let schema = Schema::builder()
            .column("id", DataType::Int)
            .column("owner", DataType::Text)
            .column("balance", DataType::Int)
            .primary_key(&["id"])
            .build()
            .unwrap();
        db.create_table("accounts", schema).unwrap();
        db
    }

    #[test]
    fn insert_get_commit_roundtrip() {
        let db = db_with_accounts();
        let mut txn = db.begin();
        txn.insert("accounts", row![1i64, "alice", 100i64]).unwrap();
        assert_eq!(
            txn.get("accounts", &Key::single(1i64)).unwrap(),
            Some(std::sync::Arc::new(row![1i64, "alice", 100i64]))
        );
        let info = txn.commit().unwrap();
        assert_eq!(info.changes.len(), 1);
        assert!(info.commit_ts > 0);

        let mut txn2 = db.begin();
        assert_eq!(
            txn2.get("accounts", &Key::single(1i64)).unwrap(),
            Some(std::sync::Arc::new(row![1i64, "alice", 100i64]))
        );
    }

    #[test]
    fn read_your_own_writes_in_scans() {
        let db = db_with_accounts();
        let mut setup = db.begin();
        setup
            .insert("accounts", row![1i64, "alice", 100i64])
            .unwrap();
        setup.commit().unwrap();

        let mut txn = db.begin();
        txn.insert("accounts", row![2i64, "bob", 50i64]).unwrap();
        txn.update("accounts", &Key::single(1i64), row![1i64, "alice", 75i64])
            .unwrap();
        let rows = txn.scan("accounts", &Predicate::True).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].1, row![1i64, "alice", 75i64]);
        assert_eq!(rows[1].1, row![2i64, "bob", 50i64]);

        txn.delete("accounts", &Key::single(1i64)).unwrap();
        let rows = txn.scan("accounts", &Predicate::True).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1, row![2i64, "bob", 50i64]);
    }

    #[test]
    fn duplicate_insert_rejected_within_and_across_txns() {
        let db = db_with_accounts();
        let mut txn = db.begin();
        txn.insert("accounts", row![1i64, "a", 1i64]).unwrap();
        let err = txn.insert("accounts", row![1i64, "b", 2i64]).unwrap_err();
        assert!(matches!(err, DbError::DuplicateKey { .. }));
        txn.commit().unwrap();

        let mut txn2 = db.begin();
        let err = txn2.insert("accounts", row![1i64, "c", 3i64]).unwrap_err();
        assert!(matches!(err, DbError::DuplicateKey { .. }));
    }

    #[test]
    fn delete_then_insert_becomes_update() {
        let db = db_with_accounts();
        let mut setup = db.begin();
        setup
            .insert("accounts", row![1i64, "alice", 100i64])
            .unwrap();
        setup.commit().unwrap();

        let mut txn = db.begin();
        txn.delete("accounts", &Key::single(1i64)).unwrap();
        txn.insert("accounts", row![1i64, "alice", 0i64]).unwrap();
        let info = txn.commit().unwrap();
        assert_eq!(info.changes.len(), 1);
        assert_eq!(info.changes[0].op.kind(), "Update");
    }

    #[test]
    fn insert_then_delete_is_a_net_noop() {
        let db = db_with_accounts();
        let mut txn = db.begin();
        txn.insert("accounts", row![9i64, "temp", 1i64]).unwrap();
        assert!(txn.delete("accounts", &Key::single(9i64)).unwrap());
        let info = txn.commit().unwrap();
        assert!(info.changes.is_empty());
        let mut check = db.begin();
        assert_eq!(check.get("accounts", &Key::single(9i64)).unwrap(), None);
    }

    #[test]
    fn update_missing_row_fails() {
        let db = db_with_accounts();
        let mut txn = db.begin();
        let err = txn
            .update("accounts", &Key::single(42i64), row![42i64, "x", 1i64])
            .unwrap_err();
        assert!(matches!(err, DbError::NoSuchKey { .. }));
    }

    #[test]
    fn update_cannot_change_primary_key() {
        let db = db_with_accounts();
        let mut setup = db.begin();
        setup.insert("accounts", row![1i64, "a", 1i64]).unwrap();
        setup.commit().unwrap();
        let mut txn = db.begin();
        let err = txn
            .update("accounts", &Key::single(1i64), row![2i64, "a", 1i64])
            .unwrap_err();
        assert!(matches!(err, DbError::Invalid(_)));
    }

    #[test]
    fn update_where_and_delete_where() {
        let db = db_with_accounts();
        let mut setup = db.begin();
        for i in 0..10i64 {
            setup
                .insert("accounts", row![i, format!("user{i}"), 100i64])
                .unwrap();
        }
        setup.commit().unwrap();

        let mut txn = db.begin();
        let updated = txn
            .update_where("accounts", &Predicate::lt("id", 5i64), |r| {
                let mut r = r.clone();
                r.set(2, 200i64);
                r
            })
            .unwrap();
        assert_eq!(updated, 5);
        let deleted = txn
            .delete_where("accounts", &Predicate::ge("id", 8i64))
            .unwrap();
        assert_eq!(deleted, 2);
        txn.commit().unwrap();

        let mut check = db.begin();
        assert_eq!(check.count("accounts", &Predicate::True).unwrap(), 8);
        assert_eq!(
            check
                .count("accounts", &Predicate::eq("balance", 200i64))
                .unwrap(),
            5
        );
    }

    #[test]
    fn operations_after_commit_fail() {
        let db = db_with_accounts();
        let txn = db.begin();
        let id = txn.id();
        assert!(id > 0);
        txn.commit().unwrap();
        // A new transaction works fine; the old handle is consumed by
        // commit so misuse is prevented at compile time. Verify abort too.
        let txn2 = db.begin();
        txn2.abort();
    }

    #[test]
    fn read_only_commit_produces_no_log_entry() {
        let db = db_with_accounts();
        let mut txn = db.begin();
        let _ = txn.scan("accounts", &Predicate::True).unwrap();
        let info = txn.commit().unwrap();
        assert!(info.changes.is_empty());
        assert_eq!(db.log_len(), 0);
    }

    #[test]
    fn pending_changes_reflect_buffered_writes() {
        let db = db_with_accounts();
        let mut txn = db.begin();
        txn.insert("accounts", row![1i64, "a", 1i64]).unwrap();
        let pending = txn.pending_changes();
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].table, "accounts");
        assert_eq!(pending[0].op.kind(), "Insert");
        let summary = txn.read_summary();
        assert_eq!(summary.point_reads.len(), 1);
        assert_eq!(summary.point_reads[0].1, Key::single(Value::Int(1)));
    }
}
