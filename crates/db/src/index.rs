//! Secondary hash indexes.
//!
//! Indexes map a column value to the set of primary keys whose *live*
//! version carried that value at some point. Lookups return candidate
//! keys; visibility is always re-checked against the version chain, so an
//! index can safely over-approximate (it never removes entries for old
//! values until the key is garbage collected).

use std::collections::{HashMap, HashSet};

use crate::row::{Key, Row};
use crate::schema::Schema;
use crate::value::Value;

/// A hash index over one column of a table.
#[derive(Debug, Default)]
pub struct SecondaryIndex {
    column: String,
    col_idx: usize,
    entries: HashMap<Value, HashSet<Key>>,
}

impl SecondaryIndex {
    /// Creates an index over `column` (resolved to `col_idx` in the schema).
    pub fn new(column: impl Into<String>, col_idx: usize) -> Self {
        SecondaryIndex {
            column: column.into(),
            col_idx,
            entries: HashMap::new(),
        }
    }

    /// The indexed column name.
    pub fn column(&self) -> &str {
        &self.column
    }

    /// Records that `key`'s row now carries `row[col]`.
    pub fn insert(&mut self, key: &Key, row: &Row) {
        if let Some(v) = row.get(self.col_idx) {
            if !v.is_null() {
                self.entries
                    .entry(v.clone())
                    .or_default()
                    .insert(key.clone());
            }
        }
    }

    /// Candidate keys whose rows may carry `value` in the indexed column.
    pub fn lookup(&self, value: &Value) -> Vec<Key> {
        self.entries
            .get(value)
            .map(|set| set.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Removes all entries pointing at `key` (used when a key's chain is
    /// garbage collected entirely).
    pub fn purge_key(&mut self, key: &Key) {
        for set in self.entries.values_mut() {
            set.remove(key);
        }
        self.entries.retain(|_, set| !set.is_empty());
    }

    /// Number of distinct indexed values.
    pub fn distinct_values(&self) -> usize {
        self.entries.len()
    }

    /// Rebuilds the index from scratch given the live rows of the table.
    pub fn rebuild<'a>(&mut self, schema: &Schema, rows: impl Iterator<Item = (&'a Key, &'a Row)>) {
        let _ = schema;
        self.entries.clear();
        for (key, row) in rows {
            self.insert(key, row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::builder()
            .column("id", DataType::Int)
            .column("forum", DataType::Text)
            .primary_key(&["id"])
            .build()
            .unwrap()
    }

    #[test]
    fn insert_and_lookup() {
        let mut idx = SecondaryIndex::new("forum", 1);
        idx.insert(&Key::single(1i64), &row![1i64, "F1"]);
        idx.insert(&Key::single(2i64), &row![2i64, "F2"]);
        idx.insert(&Key::single(3i64), &row![3i64, "F2"]);

        let mut hits = idx.lookup(&Value::Text("F2".into()));
        hits.sort();
        assert_eq!(hits, vec![Key::single(2i64), Key::single(3i64)]);
        assert!(idx.lookup(&Value::Text("F9".into())).is_empty());
        assert_eq!(idx.distinct_values(), 2);
    }

    #[test]
    fn null_values_are_not_indexed() {
        let mut idx = SecondaryIndex::new("forum", 1);
        idx.insert(&Key::single(1i64), &row![1i64, Value::Null]);
        assert_eq!(idx.distinct_values(), 0);
    }

    #[test]
    fn stale_entries_are_tolerated_and_purgeable() {
        let mut idx = SecondaryIndex::new("forum", 1);
        let k = Key::single(1i64);
        idx.insert(&k, &row![1i64, "F1"]);
        // Row updated to a new forum: the index keeps the old entry too
        // (over-approximation) until purged.
        idx.insert(&k, &row![1i64, "F2"]);
        assert_eq!(idx.lookup(&Value::Text("F1".into())), vec![k.clone()]);
        assert_eq!(idx.lookup(&Value::Text("F2".into())), vec![k.clone()]);

        idx.purge_key(&k);
        assert!(idx.lookup(&Value::Text("F1".into())).is_empty());
        assert!(idx.lookup(&Value::Text("F2".into())).is_empty());
        assert_eq!(idx.distinct_values(), 0);
    }

    #[test]
    fn rebuild_reflects_only_given_rows() {
        let s = schema();
        let mut idx = SecondaryIndex::new("forum", 1);
        idx.insert(&Key::single(9i64), &row![9i64, "OLD"]);
        let k1 = Key::single(1i64);
        let r1 = row![1i64, "F1"];
        let rows = vec![(&k1, &r1)];
        idx.rebuild(&s, rows.into_iter());
        assert!(idx.lookup(&Value::Text("OLD".into())).is_empty());
        assert_eq!(idx.lookup(&Value::Text("F1".into())), vec![k1]);
    }
}
