//! Secondary indexes: hash ([`SecondaryIndex`]) and ordered
//! ([`RangeIndex`]).
//!
//! Indexes map a column value to the primary keys whose rows carried that
//! value, together with the commit timestamp at which the key stopped
//! carrying it ([`TS_LIVE`] while it still does). Lookups return candidate
//! keys for a given read timestamp; visibility is always re-checked
//! against the version chain, so an index may over-approximate (return a
//! key whose visible row no longer matches) but must never
//! under-approximate.
//!
//! Maintenance is **eager**: the commit path unlinks a key from its old
//! value the moment an update changes the indexed column or a delete
//! removes the row, by stamping the entry with the closing commit
//! timestamp instead of leaving it live. Latest-timestamp lookups
//! therefore see an exact candidate set — dead keys no longer accumulate
//! between garbage collections — while time-travel and snapshot reads
//! below the unlink timestamp still find the key. Stamped-out entries are
//! physically removed by `purge_dead` when garbage collection retires the
//! versions that needed them.
//!
//! Both index kinds share this MVCC stamping discipline; they differ only
//! in the value map. [`SecondaryIndex`] hashes values and answers point
//! probes (`=`, and `IN (...)` one probe per element); [`RangeIndex`]
//! keeps values in a `BTreeMap` ordered by [`Value::total_cmp`] — the
//! same total order predicates compare with — and additionally answers
//! bounded range probes (`<`, `<=`, `>`, `>=` windows) at any read
//! timestamp.

use std::collections::{BTreeMap, HashMap};

use crate::mvcc::{Ts, TS_LIVE};
use crate::predicate::ColumnBounds;
use crate::row::{Key, Row};
use crate::schema::Schema;
use crate::value::Value;

/// One index slot: the keys that carried (or still carry) a value, each
/// stamped with the timestamp it stopped carrying it, plus a maintained
/// count of the live ([`TS_LIVE`]-stamped) entries. The live count is the
/// planner's cost estimate ([`SecondaryIndex::candidate_count`]): it is
/// what a latest-timestamp probe actually returns, so tombstone-heavy
/// slots no longer inflate probe estimates between garbage collections.
#[derive(Debug, Default)]
struct Slot {
    keys: HashMap<Key, Ts>,
    live: usize,
}

impl Slot {
    fn len(&self) -> usize {
        self.keys.len()
    }
    fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// The value→slot storage an index kind brings: a hash map for
/// [`SecondaryIndex`], an ordered map for [`RangeIndex`]. Everything
/// MVCC-sensitive — the stamp merge rules, eager unlink, purging, the
/// live/dead bookkeeping — lives in the shared functions below, generic
/// over this trait, so the two index kinds cannot drift apart
/// semantically.
trait ValueSlots {
    fn slot_mut(&mut self, value: &Value) -> Option<&mut Slot>;
    fn slot_or_default(&mut self, value: &Value) -> &mut Slot;
    fn for_each_slot(&mut self, f: impl FnMut(&mut Slot));
    fn drop_empty_slots(&mut self);
}

impl ValueSlots for HashMap<Value, Slot> {
    fn slot_mut(&mut self, value: &Value) -> Option<&mut Slot> {
        self.get_mut(value)
    }
    fn slot_or_default(&mut self, value: &Value) -> &mut Slot {
        self.entry(value.clone()).or_default()
    }
    fn for_each_slot(&mut self, f: impl FnMut(&mut Slot)) {
        self.values_mut().for_each(f);
    }
    fn drop_empty_slots(&mut self) {
        self.retain(|_, slot| !slot.is_empty());
    }
}

impl ValueSlots for BTreeMap<Value, Slot> {
    fn slot_mut(&mut self, value: &Value) -> Option<&mut Slot> {
        self.get_mut(value)
    }
    fn slot_or_default(&mut self, value: &Value) -> &mut Slot {
        self.entry(value.clone()).or_default()
    }
    fn for_each_slot(&mut self, f: impl FnMut(&mut Slot)) {
        self.values_mut().for_each(f);
    }
    fn drop_empty_slots(&mut self) {
        self.retain(|_, slot| !slot.is_empty());
    }
}

/// Records that `key`'s row carried `row[col_idx]` until `until`
/// ([`TS_LIVE`] for the live row). Backfill replays a chain's versions
/// oldest-first; later stamps only ever extend earlier ones, so a plain
/// max merge is correct. NULLs are never indexed.
fn record_slot(entries: &mut impl ValueSlots, col_idx: usize, key: &Key, row: &Row, until: Ts) {
    if let Some(v) = row.get(col_idx) {
        if !v.is_null() {
            let slot = entries.slot_or_default(v);
            match slot.keys.entry(key.clone()) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let old = *e.get();
                    let new = old.max(until);
                    if old != new {
                        // A dead stamp extending to TS_LIVE resurrects the
                        // entry (re-insert of a previously unlinked value).
                        if new == TS_LIVE {
                            slot.live += 1;
                        }
                        e.insert(new);
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(until);
                    if until == TS_LIVE {
                        slot.live += 1;
                    }
                }
            }
        }
    }
}

/// Eagerly unlinks `key` from `row[col_idx]`: stamps the entry with the
/// closing commit timestamp (the key stopped carrying the value at
/// `unlinked_at`) instead of removing it, so reads below the stamp still
/// find the key; `purge_dead_slots` removes it once GC retires the window.
fn unlink_slot(
    entries: &mut impl ValueSlots,
    col_idx: usize,
    key: &Key,
    row: &Row,
    unlinked_at: Ts,
) {
    let Some(v) = row.get(col_idx) else {
        return;
    };
    if v.is_null() {
        return;
    }
    if let Some(slot) = entries.slot_mut(v) {
        if let Some(stamp) = slot.keys.get_mut(key) {
            if *stamp == TS_LIVE {
                *stamp = unlinked_at;
                slot.live -= 1;
            } else {
                *stamp = (*stamp).max(unlinked_at);
            }
        }
    }
}

/// Removes entries unlinked at or before `horizon` — their versions are no
/// longer visible to any reader once GC has run at `horizon`. Returns the
/// number of entries removed.
fn purge_dead_slots(entries: &mut impl ValueSlots, horizon: Ts) -> usize {
    let mut purged = 0;
    entries.for_each_slot(|slot| {
        let before = slot.keys.len();
        let mut removed_live = 0;
        slot.keys.retain(|_, until| {
            if *until > horizon {
                true
            } else {
                if *until == TS_LIVE {
                    removed_live += 1;
                }
                false
            }
        });
        slot.live -= removed_live;
        purged += before - slot.keys.len();
    });
    entries.drop_empty_slots();
    purged
}

/// Removes all entries pointing at `key` (used when a key's chain is
/// garbage collected entirely).
fn purge_key_slots(entries: &mut impl ValueSlots, key: &Key) {
    entries.for_each_slot(|slot| {
        if let Some(ts) = slot.keys.remove(key) {
            if ts == TS_LIVE {
                slot.live -= 1;
            }
        }
    });
    entries.drop_empty_slots();
}

/// A hash index over one column of a table.
#[derive(Debug, Default)]
pub struct SecondaryIndex {
    column: String,
    col_idx: usize,
    /// value -> key -> timestamp until which the key's row carried the
    /// value ([`TS_LIVE`] while it still does). A key is a candidate for a
    /// read at `ts` iff its end stamp is strictly greater than `ts`.
    entries: HashMap<Value, Slot>,
}

impl SecondaryIndex {
    /// Creates an index over `column` (resolved to `col_idx` in the schema).
    pub fn new(column: impl Into<String>, col_idx: usize) -> Self {
        SecondaryIndex {
            column: column.into(),
            col_idx,
            entries: HashMap::new(),
        }
    }

    /// The indexed column name.
    pub fn column(&self) -> &str {
        &self.column
    }

    /// Records that `key`'s row carried `row[col]` until `until`
    /// ([`TS_LIVE`] for the live row); see [`record_slot`].
    pub fn record(&mut self, key: &Key, row: &Row, until: Ts) {
        record_slot(&mut self.entries, self.col_idx, key, row, until);
    }

    /// Records that `key`'s live row now carries `row[col]`.
    pub fn insert(&mut self, key: &Key, row: &Row) {
        self.record(key, row, TS_LIVE);
    }

    /// Eagerly unlinks `key` from `row[col]`: the row stopped carrying the
    /// value at `unlinked_at` (it was deleted, or updated away from it);
    /// see [`unlink_slot`].
    pub fn unlink(&mut self, key: &Key, row: &Row, unlinked_at: Ts) {
        unlink_slot(&mut self.entries, self.col_idx, key, row, unlinked_at);
    }

    /// Candidate keys whose rows may carry `value` for a read at `ts`.
    pub fn lookup_at(&self, value: &Value, ts: Ts) -> Vec<Key> {
        self.entries
            .get(value)
            .map(|slot| {
                slot.keys
                    .iter()
                    .filter(|(_, &until)| until > ts)
                    .map(|(k, _)| k.clone())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The planner's cost estimate for a probe on `value`, in O(1): the
    /// slot's maintained *live* entry count. This is exactly what a
    /// latest-timestamp probe returns (eager unlink keeps the stamps
    /// current), so a slot that accumulated tombstones between garbage
    /// collections no longer inflates the estimate. Time-travel probes can
    /// return up to the tombstoned total — the estimate targets the
    /// common latest-read case and cost errors never affect results (the
    /// chosen path still over-approximates and re-checks).
    pub fn candidate_count(&self, value: &Value) -> usize {
        self.entries.get(value).map(|slot| slot.live).unwrap_or(0)
    }

    /// Candidate keys whose *live* rows may carry `value` (exact up to
    /// concurrent re-check; unlinked keys are excluded immediately).
    pub fn lookup_live(&self, value: &Value) -> Vec<Key> {
        self.entries
            .get(value)
            .map(|slot| {
                slot.keys
                    .iter()
                    .filter(|(_, &until)| until == TS_LIVE)
                    .map(|(k, _)| k.clone())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Removes all entries pointing at `key` (used when a key's chain is
    /// garbage collected entirely).
    pub fn purge_key(&mut self, key: &Key) {
        purge_key_slots(&mut self.entries, key);
    }

    /// Removes entries unlinked at or before `horizon` — their versions
    /// are no longer visible to any reader once GC has run at `horizon`.
    /// Returns the number of entries removed.
    pub fn purge_dead(&mut self, horizon: Ts) -> usize {
        purge_dead_slots(&mut self.entries, horizon)
    }

    /// Number of distinct indexed values.
    pub fn distinct_values(&self) -> usize {
        self.entries.len()
    }

    /// Total (value, key) entries, live and tombstoned. Exposed so tests
    /// and stats can observe eager-unlink bookkeeping.
    pub fn entry_count(&self) -> usize {
        self.entries.values().map(Slot::len).sum()
    }

    /// Entries currently stamped live (sum of the per-slot counters the
    /// planner costs with).
    pub fn live_entry_count(&self) -> usize {
        self.entries.values().map(|slot| slot.live).sum()
    }

    /// Tombstoned entries awaiting `purge_dead`.
    pub fn dead_entry_count(&self) -> usize {
        self.entry_count() - self.live_entry_count()
    }

    /// Rebuilds the index from scratch given the live rows of the table.
    pub fn rebuild<'a>(&mut self, schema: &Schema, rows: impl Iterator<Item = (&'a Key, &'a Row)>) {
        let _ = schema;
        self.entries.clear();
        for (key, row) in rows {
            self.insert(key, row);
        }
    }
}

/// An ordered index over one column of a table.
///
/// Entries carry the same MVCC stamps as [`SecondaryIndex`] (value → key →
/// timestamp the key stopped carrying the value, [`TS_LIVE`] while live),
/// but values sit in a `BTreeMap` ordered by [`Value::total_cmp`], so the
/// index can answer *bounded range* probes — the candidate keys whose rows
/// may fall in a [`ColumnBounds`] window at any read timestamp — in
/// O(log V + hits) instead of a full scan. Maintenance (eager unlink on
/// update/delete, `purge_dead` on GC, full-history backfill) is identical;
/// the over-approximate-never-under-approximate contract holds unchanged.
#[derive(Debug, Default)]
pub struct RangeIndex {
    column: String,
    col_idx: usize,
    /// value -> key -> timestamp until which the key's row carried the
    /// value ([`TS_LIVE`] while it still does), values in total order.
    entries: BTreeMap<Value, Slot>,
}

impl RangeIndex {
    /// Creates an ordered index over `column` (resolved to `col_idx` in
    /// the schema).
    pub fn new(column: impl Into<String>, col_idx: usize) -> Self {
        RangeIndex {
            column: column.into(),
            col_idx,
            entries: BTreeMap::new(),
        }
    }

    /// The indexed column name.
    pub fn column(&self) -> &str {
        &self.column
    }

    /// Records that `key`'s row carried `row[col]` until `until`
    /// ([`TS_LIVE`] for the live row); see [`record_slot`].
    pub fn record(&mut self, key: &Key, row: &Row, until: Ts) {
        record_slot(&mut self.entries, self.col_idx, key, row, until);
    }

    /// Records that `key`'s live row now carries `row[col]`.
    pub fn insert(&mut self, key: &Key, row: &Row) {
        self.record(key, row, TS_LIVE);
    }

    /// Eagerly unlinks `key` from `row[col]` at `unlinked_at`; see
    /// [`unlink_slot`].
    pub fn unlink(&mut self, key: &Key, row: &Row, unlinked_at: Ts) {
        unlink_slot(&mut self.entries, self.col_idx, key, row, unlinked_at);
    }

    /// Candidate keys whose rows may carry a value inside `bounds` for a
    /// read at `ts`. Candidates can repeat across values a key carried in
    /// overlapping windows; the caller deduplicates (the scan path's
    /// key-ordered merge does so for free).
    pub fn range_at(&self, bounds: &ColumnBounds, ts: Ts) -> Vec<Key> {
        let mut out = Vec::new();
        for (_, slot) in self.range_slots(bounds) {
            out.extend(
                slot.keys
                    .iter()
                    .filter(|(_, &until)| until > ts)
                    .map(|(k, _)| k.clone()),
            );
        }
        out
    }

    /// The planner's cost estimate for a probe over `bounds`, counting at
    /// most `cap` *live* entries (the per-slot counters; see
    /// [`SecondaryIndex::candidate_count`] for why live, not total) before
    /// giving up. Once the count reaches the best competing estimate the
    /// path has already lost, so the walk stops instead of degenerating
    /// into an O(table) count.
    pub fn candidate_count_capped(&self, bounds: &ColumnBounds, cap: usize) -> usize {
        let mut n = 0;
        for (_, slot) in self.range_slots(bounds) {
            n += slot.live;
            if n >= cap {
                break;
            }
        }
        n
    }

    /// Walks the value slots inside `bounds` in value order — descending
    /// when `descending` — calling `visit` with each distinct value and
    /// its candidate keys at `ts` (values whose slots hold no candidate
    /// at `ts` are skipped). `visit` returns `false` to stop the walk;
    /// the streamed `ORDER BY ... LIMIT` scan path uses this to consume
    /// values in output order and stop at the limit instead of
    /// materialising and re-sorting the whole result. Candidates carry
    /// the usual over-approximation contract: the caller re-checks
    /// visibility, the row's current column value, and the predicate.
    pub fn ordered_walk_at(
        &self,
        bounds: &ColumnBounds,
        descending: bool,
        ts: Ts,
        mut visit: impl FnMut(&Value, Vec<Key>) -> bool,
    ) {
        if bounds.is_empty() {
            return;
        }
        let range = (bounds.lower.as_ref(), bounds.upper.as_ref());
        let iter = self.entries.range::<Value, _>(range);
        let mut step = |value: &Value, slot: &Slot| -> bool {
            let keys: Vec<Key> = slot
                .keys
                .iter()
                .filter(|(_, &until)| until > ts)
                .map(|(k, _)| k.clone())
                .collect();
            if keys.is_empty() {
                return true;
            }
            visit(value, keys)
        };
        if descending {
            for (value, slot) in iter.rev() {
                if !step(value, slot) {
                    return;
                }
            }
        } else {
            for (value, slot) in iter {
                if !step(value, slot) {
                    return;
                }
            }
        }
    }

    /// The value slots inside `bounds`. Guards the provably-empty window
    /// (`BTreeMap::range` panics on inverted bounds).
    fn range_slots<'a>(
        &'a self,
        bounds: &'a ColumnBounds,
    ) -> impl Iterator<Item = (&'a Value, &'a Slot)> + 'a {
        let empty = bounds.is_empty();
        let range = (bounds.lower.as_ref(), bounds.upper.as_ref());
        (!empty)
            .then(|| self.entries.range::<Value, _>(range))
            .into_iter()
            .flatten()
    }

    /// Removes all entries pointing at `key` (used when a key's chain is
    /// garbage collected entirely).
    pub fn purge_key(&mut self, key: &Key) {
        purge_key_slots(&mut self.entries, key);
    }

    /// Removes entries unlinked at or before `horizon`; see
    /// [`purge_dead_slots`]. Returns the number removed.
    pub fn purge_dead(&mut self, horizon: Ts) -> usize {
        purge_dead_slots(&mut self.entries, horizon)
    }

    /// Number of distinct indexed values.
    pub fn distinct_values(&self) -> usize {
        self.entries.len()
    }

    /// Total (value, key) entries, live and tombstoned.
    pub fn entry_count(&self) -> usize {
        self.entries.values().map(Slot::len).sum()
    }

    /// Entries currently stamped live (sum of the per-slot counters the
    /// planner costs with).
    pub fn live_entry_count(&self) -> usize {
        self.entries.values().map(|slot| slot.live).sum()
    }

    /// Tombstoned entries awaiting `purge_dead`.
    pub fn dead_entry_count(&self) -> usize {
        self.entry_count() - self.live_entry_count()
    }
}

#[cfg(test)]
mod tests {
    use std::ops::Bound;

    use super::*;
    use crate::row;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::builder()
            .column("id", DataType::Int)
            .column("forum", DataType::Text)
            .primary_key(&["id"])
            .build()
            .unwrap()
    }

    fn text(s: &str) -> Value {
        Value::Text(s.into())
    }

    #[test]
    fn insert_and_lookup() {
        let mut idx = SecondaryIndex::new("forum", 1);
        idx.insert(&Key::single(1i64), &row![1i64, "F1"]);
        idx.insert(&Key::single(2i64), &row![2i64, "F2"]);
        idx.insert(&Key::single(3i64), &row![3i64, "F2"]);

        let mut hits = idx.lookup_live(&text("F2"));
        hits.sort();
        assert_eq!(hits, vec![Key::single(2i64), Key::single(3i64)]);
        assert!(idx.lookup_live(&text("F9")).is_empty());
        assert_eq!(idx.distinct_values(), 2);
        assert_eq!(idx.entry_count(), 3);
    }

    #[test]
    fn null_values_are_not_indexed() {
        let mut idx = SecondaryIndex::new("forum", 1);
        idx.insert(&Key::single(1i64), &row![1i64, Value::Null]);
        assert_eq!(idx.distinct_values(), 0);
    }

    #[test]
    fn unlink_hides_keys_from_later_reads_only() {
        let mut idx = SecondaryIndex::new("forum", 1);
        let k = Key::single(1i64);
        let r = row![1i64, "F1"];
        idx.insert(&k, &r);
        // Deleted at commit ts 5.
        idx.unlink(&k, &r, 5);

        assert!(idx.lookup_live(&text("F1")).is_empty(), "eagerly unlinked");
        assert!(idx.lookup_at(&text("F1"), 5).is_empty());
        assert_eq!(idx.lookup_at(&text("F1"), 4), vec![k.clone()]);

        // Reinserted later: live again, and history below 5 still works.
        idx.insert(&k, &r);
        assert_eq!(idx.lookup_live(&text("F1")), vec![k.clone()]);
        assert_eq!(idx.lookup_at(&text("F1"), 4), vec![k.clone()]);
    }

    #[test]
    fn update_unlinks_the_old_value() {
        let mut idx = SecondaryIndex::new("forum", 1);
        let k = Key::single(1i64);
        let before = row![1i64, "F1"];
        let after = row![1i64, "F2"];
        idx.insert(&k, &before);
        // Commit at ts 7 updates F1 -> F2: the table unlinks the before
        // image and inserts the after image.
        idx.unlink(&k, &before, 7);
        idx.insert(&k, &after);

        assert!(idx.lookup_live(&text("F1")).is_empty());
        assert_eq!(idx.lookup_live(&text("F2")), vec![k.clone()]);
        // A snapshot read below the update still finds the key via F1.
        assert_eq!(idx.lookup_at(&text("F1"), 6), vec![k.clone()]);
        assert_eq!(idx.lookup_at(&text("F2"), 6), vec![k.clone()]);
    }

    #[test]
    fn purge_dead_drops_only_entries_below_the_horizon() {
        let mut idx = SecondaryIndex::new("forum", 1);
        let k1 = Key::single(1i64);
        let k2 = Key::single(2i64);
        idx.insert(&k1, &row![1i64, "F1"]);
        idx.insert(&k2, &row![2i64, "F1"]);
        idx.unlink(&k1, &row![1i64, "F1"], 3);
        idx.unlink(&k2, &row![2i64, "F1"], 9);

        assert_eq!(idx.purge_dead(5), 1, "only the ts-3 tombstone is dead");
        assert!(idx.lookup_at(&text("F1"), 2).len() == 1, "k2 remains");
        assert_eq!(idx.purge_dead(9), 1);
        assert_eq!(idx.distinct_values(), 0);
    }

    #[test]
    fn live_dead_counters_track_stamp_purge_and_resurrection() {
        let mut idx = SecondaryIndex::new("forum", 1);
        let k1 = Key::single(1i64);
        let k2 = Key::single(2i64);
        let r = row![1i64, "F1"];
        idx.insert(&k1, &r);
        idx.insert(&k2, &row![2i64, "F1"]);
        assert_eq!(idx.live_entry_count(), 2);
        assert_eq!(idx.dead_entry_count(), 0);
        assert_eq!(idx.candidate_count(&text("F1")), 2);

        // Unlink tombstones without shrinking entry_count — but the
        // planner estimate follows the live count.
        idx.unlink(&k1, &r, 5);
        assert_eq!(idx.live_entry_count(), 1);
        assert_eq!(idx.dead_entry_count(), 1);
        assert_eq!(idx.candidate_count(&text("F1")), 1);
        // A second unlink of the same (already dead) entry is a no-op.
        idx.unlink(&k1, &r, 7);
        assert_eq!(idx.live_entry_count(), 1);

        // Re-insert resurrects the entry: live again.
        idx.insert(&k1, &r);
        assert_eq!(idx.live_entry_count(), 2);
        assert_eq!(idx.dead_entry_count(), 0);

        // Purge after another unlink drops the dead entry and leaves the
        // counters exact.
        idx.unlink(&k2, &row![2i64, "F1"], 9);
        assert_eq!(idx.purge_dead(9), 1);
        assert_eq!(idx.live_entry_count(), 1);
        assert_eq!(idx.dead_entry_count(), 0);
        // purge_key on a live entry keeps the counters consistent too.
        idx.purge_key(&k1);
        assert_eq!(idx.live_entry_count(), 0);
        assert_eq!(idx.entry_count(), 0);
    }

    #[test]
    fn range_live_counters_cost_probes_without_tombstones() {
        let mut idx = scored_range_index(10);
        assert_eq!(idx.live_entry_count(), 10);
        for i in 1..=5i64 {
            idx.unlink(&Key::single(i), &row![i, 10 * i], 50);
        }
        assert_eq!(idx.live_entry_count(), 5);
        assert_eq!(idx.dead_entry_count(), 5);
        // The estimate over a window of tombstoned slots is their live
        // count (0), while the probe itself still serves time travel.
        assert_eq!(idx.candidate_count_capped(&int_bounds(10, 50), 100), 0);
        assert_eq!(idx.range_at(&int_bounds(10, 50), 49).len(), 5);
        assert!(idx.range_at(&int_bounds(10, 50), 50).is_empty());
    }

    #[test]
    fn purge_key_removes_all_traces() {
        let mut idx = SecondaryIndex::new("forum", 1);
        let k = Key::single(1i64);
        idx.insert(&k, &row![1i64, "F1"]);
        idx.insert(&k, &row![1i64, "F2"]);
        idx.purge_key(&k);
        assert!(idx.lookup_at(&text("F1"), 0).is_empty());
        assert!(idx.lookup_at(&text("F2"), 0).is_empty());
        assert_eq!(idx.distinct_values(), 0);
    }

    fn bounds(lower: Bound<Value>, upper: Bound<Value>) -> ColumnBounds {
        ColumnBounds { lower, upper }
    }

    fn int_bounds(lo: i64, hi: i64) -> ColumnBounds {
        bounds(
            Bound::Included(Value::Int(lo)),
            Bound::Included(Value::Int(hi)),
        )
    }

    /// An index over `score` (column 1) with keys 1..=n carrying score 10*i.
    fn scored_range_index(n: i64) -> RangeIndex {
        let mut idx = RangeIndex::new("score", 1);
        for i in 1..=n {
            idx.insert(&Key::single(i), &row![i, 10 * i]);
        }
        idx
    }

    #[test]
    fn range_probe_returns_keys_inside_the_window() {
        let idx = scored_range_index(5);
        let mut hits = idx.range_at(&int_bounds(20, 40), TS_LIVE - 1);
        hits.sort();
        assert_eq!(
            hits,
            vec![Key::single(2i64), Key::single(3i64), Key::single(4i64)]
        );
        // Exclusive ends trim the boundary values.
        let hits = idx.range_at(
            &bounds(
                Bound::Excluded(Value::Int(20)),
                Bound::Excluded(Value::Int(40)),
            ),
            0,
        );
        assert_eq!(hits, vec![Key::single(3i64)]);
        // Unbounded sides work.
        let hits = idx.range_at(
            &bounds(Bound::Unbounded, Bound::Included(Value::Int(20))),
            0,
        );
        assert_eq!(hits.len(), 2);
        assert_eq!(idx.distinct_values(), 5);
        assert_eq!(idx.entry_count(), 5);
    }

    #[test]
    fn empty_and_inverted_windows_probe_nothing() {
        let idx = scored_range_index(3);
        assert!(idx.range_at(&int_bounds(25, 25), 0).is_empty());
        assert!(idx.range_at(&int_bounds(30, 10), 0).is_empty(), "inverted");
        assert!(
            idx.range_at(
                &bounds(
                    Bound::Excluded(Value::Int(20)),
                    Bound::Included(Value::Int(20)),
                ),
                0,
            )
            .is_empty(),
            "half-open single point"
        );
        assert_eq!(idx.candidate_count_capped(&int_bounds(30, 10), 10), 0);
    }

    #[test]
    fn range_unlink_hides_keys_from_later_reads_only() {
        let mut idx = RangeIndex::new("score", 1);
        let k = Key::single(1i64);
        let r = row![1i64, 30i64];
        idx.insert(&k, &r);
        idx.unlink(&k, &r, 5);
        assert!(idx.range_at(&int_bounds(0, 100), 5).is_empty());
        assert_eq!(idx.range_at(&int_bounds(0, 100), 4), vec![k.clone()]);

        // Updated to a new value at ts 5.
        idx.insert(&k, &row![1i64, 70i64]);
        assert_eq!(idx.range_at(&int_bounds(60, 80), 5), vec![k.clone()]);
        // Below the update the new slot still lists the key — a stamp
        // records when a key STOPPED carrying a value, not when it began,
        // so the candidate set over-approximates (the scan re-checks the
        // visible row) but never under-approximates.
        assert_eq!(idx.range_at(&int_bounds(60, 80), 4), vec![k.clone()]);
        // A window spanning both values yields the key once per slot;
        // callers dedup.
        let hits = idx.range_at(&int_bounds(0, 100), 4);
        assert_eq!(hits, vec![k.clone(), k.clone()]);
    }

    #[test]
    fn range_purge_dead_and_purge_key() {
        let mut idx = scored_range_index(3);
        idx.unlink(&Key::single(1i64), &row![1i64, 10i64], 3);
        idx.unlink(&Key::single(2i64), &row![2i64, 20i64], 9);
        assert_eq!(idx.purge_dead(5), 1);
        assert_eq!(idx.range_at(&int_bounds(0, 25), 2), vec![Key::single(2i64)]);
        idx.purge_key(&Key::single(3i64));
        assert_eq!(idx.entry_count(), 1);
        assert_eq!(idx.purge_dead(9), 1);
        assert_eq!(idx.distinct_values(), 0);
    }

    #[test]
    fn capped_count_stops_early_but_never_undercounts_small_windows() {
        let idx = scored_range_index(100);
        assert_eq!(idx.candidate_count_capped(&int_bounds(10, 50), 1000), 5);
        // The cap short-circuits a wide window.
        let capped = idx.candidate_count_capped(&int_bounds(0, 10_000), 7);
        assert!((7..100).contains(&capped), "stopped early at {capped}");
    }

    #[test]
    fn range_null_values_are_not_indexed() {
        let mut idx = RangeIndex::new("score", 1);
        idx.insert(&Key::single(1i64), &row![1i64, Value::Null]);
        assert_eq!(idx.distinct_values(), 0);
    }

    #[test]
    fn rebuild_reflects_only_given_rows() {
        let s = schema();
        let mut idx = SecondaryIndex::new("forum", 1);
        idx.insert(&Key::single(9i64), &row![9i64, "OLD"]);
        let k1 = Key::single(1i64);
        let r1 = row![1i64, "F1"];
        let rows = vec![(&k1, &r1)];
        idx.rebuild(&s, rows.into_iter());
        assert!(idx.lookup_live(&text("OLD")).is_empty());
        assert_eq!(idx.lookup_live(&text("F1")), vec![k1]);
    }
}
