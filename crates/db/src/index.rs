//! Secondary hash indexes.
//!
//! Indexes map a column value to the primary keys whose rows carried that
//! value, together with the commit timestamp at which the key stopped
//! carrying it ([`TS_LIVE`] while it still does). Lookups return candidate
//! keys for a given read timestamp; visibility is always re-checked
//! against the version chain, so an index may over-approximate (return a
//! key whose visible row no longer matches) but must never
//! under-approximate.
//!
//! Maintenance is **eager**: the commit path unlinks a key from its old
//! value the moment an update changes the indexed column or a delete
//! removes the row, by stamping the entry with the closing commit
//! timestamp instead of leaving it live. Latest-timestamp lookups
//! therefore see an exact candidate set — dead keys no longer accumulate
//! between garbage collections — while time-travel and snapshot reads
//! below the unlink timestamp still find the key. Stamped-out entries are
//! physically removed by [`SecondaryIndex::purge_dead`] when garbage
//! collection retires the versions that needed them.

use std::collections::HashMap;

use crate::mvcc::{Ts, TS_LIVE};
use crate::row::{Key, Row};
use crate::schema::Schema;
use crate::value::Value;

/// A hash index over one column of a table.
#[derive(Debug, Default)]
pub struct SecondaryIndex {
    column: String,
    col_idx: usize,
    /// value -> key -> timestamp until which the key's row carried the
    /// value ([`TS_LIVE`] while it still does). A key is a candidate for a
    /// read at `ts` iff its end stamp is strictly greater than `ts`.
    entries: HashMap<Value, HashMap<Key, Ts>>,
}

impl SecondaryIndex {
    /// Creates an index over `column` (resolved to `col_idx` in the schema).
    pub fn new(column: impl Into<String>, col_idx: usize) -> Self {
        SecondaryIndex {
            column: column.into(),
            col_idx,
            entries: HashMap::new(),
        }
    }

    /// The indexed column name.
    pub fn column(&self) -> &str {
        &self.column
    }

    /// Records that `key`'s row carried `row[col]` until `until`
    /// ([`TS_LIVE`] for the live row). Used by backfill, which replays a
    /// chain's versions oldest-first; later stamps only ever extend
    /// earlier ones, so a plain max merge is correct.
    pub fn record(&mut self, key: &Key, row: &Row, until: Ts) {
        if let Some(v) = row.get(self.col_idx) {
            if !v.is_null() {
                let slot = self
                    .entries
                    .entry(v.clone())
                    .or_default()
                    .entry(key.clone())
                    .or_insert(until);
                *slot = (*slot).max(until);
            }
        }
    }

    /// Records that `key`'s live row now carries `row[col]`.
    pub fn insert(&mut self, key: &Key, row: &Row) {
        self.record(key, row, TS_LIVE);
    }

    /// Eagerly unlinks `key` from `row[col]`: the row stopped carrying the
    /// value at `unlinked_at` (it was deleted, or updated away from it).
    /// The entry is stamped, not removed, so reads below `unlinked_at`
    /// still see the key; [`SecondaryIndex::purge_dead`] removes it once
    /// GC retires the window.
    pub fn unlink(&mut self, key: &Key, row: &Row, unlinked_at: Ts) {
        let Some(v) = row.get(self.col_idx) else {
            return;
        };
        if v.is_null() {
            return;
        }
        if let Some(keys) = self.entries.get_mut(v) {
            if let Some(slot) = keys.get_mut(key) {
                if *slot == TS_LIVE {
                    *slot = unlinked_at;
                } else {
                    *slot = (*slot).max(unlinked_at);
                }
            }
        }
    }

    /// Candidate keys whose rows may carry `value` for a read at `ts`.
    pub fn lookup_at(&self, value: &Value, ts: Ts) -> Vec<Key> {
        self.entries
            .get(value)
            .map(|keys| {
                keys.iter()
                    .filter(|(_, &until)| until > ts)
                    .map(|(k, _)| k.clone())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Candidate keys whose *live* rows may carry `value` (exact up to
    /// concurrent re-check; unlinked keys are excluded immediately).
    pub fn lookup_live(&self, value: &Value) -> Vec<Key> {
        self.entries
            .get(value)
            .map(|keys| {
                keys.iter()
                    .filter(|(_, &until)| until == TS_LIVE)
                    .map(|(k, _)| k.clone())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Removes all entries pointing at `key` (used when a key's chain is
    /// garbage collected entirely).
    pub fn purge_key(&mut self, key: &Key) {
        for set in self.entries.values_mut() {
            set.remove(key);
        }
        self.entries.retain(|_, set| !set.is_empty());
    }

    /// Removes entries unlinked at or before `horizon` — their versions
    /// are no longer visible to any reader once GC has run at `horizon`.
    /// Returns the number of entries removed.
    pub fn purge_dead(&mut self, horizon: Ts) -> usize {
        let mut purged = 0;
        for set in self.entries.values_mut() {
            let before = set.len();
            set.retain(|_, &mut until| until > horizon);
            purged += before - set.len();
        }
        self.entries.retain(|_, set| !set.is_empty());
        purged
    }

    /// Number of distinct indexed values.
    pub fn distinct_values(&self) -> usize {
        self.entries.len()
    }

    /// Total (value, key) entries, live and tombstoned. Exposed so tests
    /// and stats can observe eager-unlink bookkeeping.
    pub fn entry_count(&self) -> usize {
        self.entries.values().map(|set| set.len()).sum()
    }

    /// Rebuilds the index from scratch given the live rows of the table.
    pub fn rebuild<'a>(&mut self, schema: &Schema, rows: impl Iterator<Item = (&'a Key, &'a Row)>) {
        let _ = schema;
        self.entries.clear();
        for (key, row) in rows {
            self.insert(key, row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::builder()
            .column("id", DataType::Int)
            .column("forum", DataType::Text)
            .primary_key(&["id"])
            .build()
            .unwrap()
    }

    fn text(s: &str) -> Value {
        Value::Text(s.into())
    }

    #[test]
    fn insert_and_lookup() {
        let mut idx = SecondaryIndex::new("forum", 1);
        idx.insert(&Key::single(1i64), &row![1i64, "F1"]);
        idx.insert(&Key::single(2i64), &row![2i64, "F2"]);
        idx.insert(&Key::single(3i64), &row![3i64, "F2"]);

        let mut hits = idx.lookup_live(&text("F2"));
        hits.sort();
        assert_eq!(hits, vec![Key::single(2i64), Key::single(3i64)]);
        assert!(idx.lookup_live(&text("F9")).is_empty());
        assert_eq!(idx.distinct_values(), 2);
        assert_eq!(idx.entry_count(), 3);
    }

    #[test]
    fn null_values_are_not_indexed() {
        let mut idx = SecondaryIndex::new("forum", 1);
        idx.insert(&Key::single(1i64), &row![1i64, Value::Null]);
        assert_eq!(idx.distinct_values(), 0);
    }

    #[test]
    fn unlink_hides_keys_from_later_reads_only() {
        let mut idx = SecondaryIndex::new("forum", 1);
        let k = Key::single(1i64);
        let r = row![1i64, "F1"];
        idx.insert(&k, &r);
        // Deleted at commit ts 5.
        idx.unlink(&k, &r, 5);

        assert!(idx.lookup_live(&text("F1")).is_empty(), "eagerly unlinked");
        assert!(idx.lookup_at(&text("F1"), 5).is_empty());
        assert_eq!(idx.lookup_at(&text("F1"), 4), vec![k.clone()]);

        // Reinserted later: live again, and history below 5 still works.
        idx.insert(&k, &r);
        assert_eq!(idx.lookup_live(&text("F1")), vec![k.clone()]);
        assert_eq!(idx.lookup_at(&text("F1"), 4), vec![k.clone()]);
    }

    #[test]
    fn update_unlinks_the_old_value() {
        let mut idx = SecondaryIndex::new("forum", 1);
        let k = Key::single(1i64);
        let before = row![1i64, "F1"];
        let after = row![1i64, "F2"];
        idx.insert(&k, &before);
        // Commit at ts 7 updates F1 -> F2: the table unlinks the before
        // image and inserts the after image.
        idx.unlink(&k, &before, 7);
        idx.insert(&k, &after);

        assert!(idx.lookup_live(&text("F1")).is_empty());
        assert_eq!(idx.lookup_live(&text("F2")), vec![k.clone()]);
        // A snapshot read below the update still finds the key via F1.
        assert_eq!(idx.lookup_at(&text("F1"), 6), vec![k.clone()]);
        assert_eq!(idx.lookup_at(&text("F2"), 6), vec![k.clone()]);
    }

    #[test]
    fn purge_dead_drops_only_entries_below_the_horizon() {
        let mut idx = SecondaryIndex::new("forum", 1);
        let k1 = Key::single(1i64);
        let k2 = Key::single(2i64);
        idx.insert(&k1, &row![1i64, "F1"]);
        idx.insert(&k2, &row![2i64, "F1"]);
        idx.unlink(&k1, &row![1i64, "F1"], 3);
        idx.unlink(&k2, &row![2i64, "F1"], 9);

        assert_eq!(idx.purge_dead(5), 1, "only the ts-3 tombstone is dead");
        assert!(idx.lookup_at(&text("F1"), 2).len() == 1, "k2 remains");
        assert_eq!(idx.purge_dead(9), 1);
        assert_eq!(idx.distinct_values(), 0);
    }

    #[test]
    fn purge_key_removes_all_traces() {
        let mut idx = SecondaryIndex::new("forum", 1);
        let k = Key::single(1i64);
        idx.insert(&k, &row![1i64, "F1"]);
        idx.insert(&k, &row![1i64, "F2"]);
        idx.purge_key(&k);
        assert!(idx.lookup_at(&text("F1"), 0).is_empty());
        assert!(idx.lookup_at(&text("F2"), 0).is_empty());
        assert_eq!(idx.distinct_values(), 0);
    }

    #[test]
    fn rebuild_reflects_only_given_rows() {
        let s = schema();
        let mut idx = SecondaryIndex::new("forum", 1);
        idx.insert(&Key::single(9i64), &row![9i64, "OLD"]);
        let k1 = Key::single(1i64);
        let r1 = row![1i64, "F1"];
        let rows = vec![(&k1, &r1)];
        idx.rebuild(&s, rows.into_iter());
        assert!(idx.lookup_live(&text("OLD")).is_empty());
        assert_eq!(idx.lookup_live(&text("F1")), vec![k1]);
    }
}
