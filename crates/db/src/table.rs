//! Physical table storage: a map from primary key to version chain, plus
//! optional secondary indexes.

use std::collections::HashMap;

use parking_lot::RwLock;

use crate::error::{DbError, DbResult};
use crate::index::SecondaryIndex;
use crate::mvcc::{Ts, VersionChain};
use crate::predicate::Predicate;
use crate::row::{Key, Row};
use crate::schema::Schema;

/// Storage for one table.
///
/// All mutation goes through [`TableStore::install`] / [`TableStore::remove`],
/// which are only called by the database's commit path while it holds the
/// global commit lock, so per-table locking only needs to protect readers
/// from concurrent writers.
#[derive(Debug)]
pub struct TableStore {
    name: String,
    schema: Schema,
    rows: RwLock<HashMap<Key, VersionChain>>,
    indexes: RwLock<Vec<SecondaryIndex>>,
}

impl TableStore {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        TableStore {
            name: name.into(),
            schema,
            rows: RwLock::new(HashMap::new()),
            indexes: RwLock::new(Vec::new()),
        }
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Registers a secondary index over `column`.
    pub fn create_index(&self, column: &str) -> DbResult<()> {
        let col_idx = self
            .schema
            .column_index(column)
            .ok_or_else(|| DbError::NoSuchColumn {
                table: self.name.clone(),
                column: column.to_string(),
            })?;
        let mut indexes = self.indexes.write();
        if indexes.iter().any(|i| i.column() == column) {
            return Err(DbError::Invalid(format!(
                "index on `{}.{}` already exists",
                self.name, column
            )));
        }
        let mut idx = SecondaryIndex::new(column, col_idx);
        // Backfill from current live rows.
        let rows = self.rows.read();
        for (key, chain) in rows.iter() {
            if let Some(row) = chain.live() {
                idx.insert(key, row);
            }
        }
        indexes.push(idx);
        Ok(())
    }

    /// Names of indexed columns.
    pub fn indexed_columns(&self) -> Vec<String> {
        self.indexes
            .read()
            .iter()
            .map(|i| i.column().to_string())
            .collect()
    }

    /// Reads the row with `key` visible at `ts`.
    pub fn get_at(&self, key: &Key, ts: Ts) -> Option<Row> {
        self.rows
            .read()
            .get(key)
            .and_then(|chain| chain.visible_at(ts))
            .cloned()
    }

    /// Scans rows visible at `ts` matching `pred`. Uses a secondary index
    /// when the predicate pins an indexed column to a single value.
    pub fn scan_at(&self, pred: &Predicate, ts: Ts) -> DbResult<Vec<(Key, Row)>> {
        let rows = self.rows.read();
        let mut out = Vec::new();

        // Try an index lookup first.
        let candidates: Option<Vec<Key>> = {
            let indexes = self.indexes.read();
            indexes.iter().find_map(|idx| {
                pred.equality_on(idx.column())
                    .map(|value| idx.lookup(value))
            })
        };

        match candidates {
            Some(keys) => {
                for key in keys {
                    if let Some(chain) = rows.get(&key) {
                        if let Some(row) = chain.visible_at(ts) {
                            if pred.matches(&self.schema, row)? {
                                out.push((key.clone(), row.clone()));
                            }
                        }
                    }
                }
            }
            None => {
                for (key, chain) in rows.iter() {
                    if let Some(row) = chain.visible_at(ts) {
                        if pred.matches(&self.schema, row)? {
                            out.push((key.clone(), row.clone()));
                        }
                    }
                }
            }
        }
        // Deterministic order for traces and tests.
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    /// True if any version of `key` was created or superseded after `ts`.
    pub fn key_modified_after(&self, key: &Key, ts: Ts) -> bool {
        self.rows
            .read()
            .get(key)
            .map(|chain| chain.modified_after(ts))
            .unwrap_or(false)
    }

    /// Returns keys whose chains changed after `ts` together with the rows
    /// involved (both old rows that were superseded and new rows created),
    /// used for serializable predicate (phantom) validation.
    pub fn rows_touched_after(&self, ts: Ts) -> Vec<(Key, Row)> {
        let rows = self.rows.read();
        let mut out = Vec::new();
        for (key, chain) in rows.iter() {
            for v in chain.versions() {
                if v.begin_ts > ts || (v.end_ts != crate::mvcc::TS_LIVE && v.end_ts > ts) {
                    out.push((key.clone(), v.row.clone()));
                }
            }
        }
        out
    }

    /// Whether a live (visible at `ts`) row exists for `key`.
    pub fn exists_at(&self, key: &Key, ts: Ts) -> bool {
        self.get_at(key, ts).is_some()
    }

    /// Installs a new version for `key` at `commit_ts`; updates indexes.
    /// Returns the before image, if any. Only called under the commit lock.
    pub fn install(&self, key: &Key, row: Row, commit_ts: Ts) -> Option<Row> {
        let mut rows = self.rows.write();
        let chain = rows.entry(key.clone()).or_default();
        let before = chain.install(commit_ts, row.clone());
        drop(rows);
        let mut indexes = self.indexes.write();
        for idx in indexes.iter_mut() {
            idx.insert(key, &row);
        }
        before
    }

    /// Deletes the live version of `key` at `commit_ts`. Returns the
    /// deleted row, if any. Only called under the commit lock.
    pub fn remove(&self, key: &Key, commit_ts: Ts) -> Option<Row> {
        let mut rows = self.rows.write();
        rows.get_mut(key).and_then(|chain| chain.remove(commit_ts))
    }

    /// Number of live rows at `ts`.
    pub fn count_at(&self, ts: Ts) -> usize {
        self.rows
            .read()
            .values()
            .filter(|c| c.visible_at(ts).is_some())
            .count()
    }

    /// Total stored versions (live + historical), for stats/GC decisions.
    pub fn version_count(&self) -> usize {
        self.rows.read().values().map(|c| c.len()).sum()
    }

    /// Garbage collects versions not visible to any reader at or after
    /// `ts`. Returns how many versions were dropped.
    pub fn gc_before(&self, ts: Ts) -> usize {
        let mut rows = self.rows.write();
        let mut dropped = 0;
        let mut dead_keys = Vec::new();
        for (key, chain) in rows.iter_mut() {
            dropped += chain.gc_before(ts);
            if chain.is_empty() {
                dead_keys.push(key.clone());
            }
        }
        for key in &dead_keys {
            rows.remove(key);
        }
        drop(rows);
        if !dead_keys.is_empty() {
            let mut indexes = self.indexes.write();
            for idx in indexes.iter_mut() {
                for key in &dead_keys {
                    idx.purge_key(key);
                }
            }
        }
        dropped
    }

    /// Snapshot of live rows at `ts`, used when forking a database.
    pub fn materialize_at(&self, ts: Ts) -> Vec<(Key, Row)> {
        let rows = self.rows.read();
        let mut out: Vec<(Key, Row)> = rows
            .iter()
            .filter_map(|(k, c)| c.visible_at(ts).map(|r| (k.clone(), r.clone())))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::value::{DataType, Value};

    fn subs_table() -> TableStore {
        let schema = Schema::builder()
            .column("user_id", DataType::Text)
            .column("forum", DataType::Text)
            .primary_key(&["user_id", "forum"])
            .build()
            .unwrap();
        TableStore::new("forum_sub", schema)
    }

    fn key(u: &str, f: &str) -> Key {
        Key::new(vec![Value::Text(u.into()), Value::Text(f.into())])
    }

    #[test]
    fn install_get_scan() {
        let t = subs_table();
        t.install(&key("U1", "F1"), row!["U1", "F1"], 1);
        t.install(&key("U1", "F2"), row!["U1", "F2"], 2);

        assert_eq!(t.get_at(&key("U1", "F1"), 1), Some(row!["U1", "F1"]));
        assert_eq!(t.get_at(&key("U1", "F2"), 1), None);
        assert_eq!(t.get_at(&key("U1", "F2"), 2), Some(row!["U1", "F2"]));

        let hits = t.scan_at(&Predicate::eq("user_id", "U1"), 2).unwrap();
        assert_eq!(hits.len(), 2);
        assert_eq!(t.count_at(2), 2);
        assert_eq!(t.count_at(1), 1);
    }

    #[test]
    fn index_accelerated_scan_returns_same_results() {
        let t = subs_table();
        for i in 0..50 {
            let u = format!("U{i}");
            t.install(&key(&u, "F2"), row![u.clone(), "F2"], i + 1);
        }
        let no_index = t.scan_at(&Predicate::eq("forum", "F2"), 100).unwrap();
        t.create_index("forum").unwrap();
        let with_index = t.scan_at(&Predicate::eq("forum", "F2"), 100).unwrap();
        assert_eq!(no_index, with_index);
        assert_eq!(with_index.len(), 50);
        assert_eq!(t.indexed_columns(), vec!["forum".to_string()]);
    }

    #[test]
    fn duplicate_index_rejected() {
        let t = subs_table();
        t.create_index("forum").unwrap();
        assert!(t.create_index("forum").is_err());
        assert!(t.create_index("no_such_column").is_err());
    }

    #[test]
    fn remove_and_time_travel() {
        let t = subs_table();
        let k = key("U1", "F2");
        t.install(&k, row!["U1", "F2"], 3);
        let before = t.remove(&k, 7);
        assert_eq!(before, Some(row!["U1", "F2"]));
        assert_eq!(t.get_at(&k, 6), Some(row!["U1", "F2"]));
        assert_eq!(t.get_at(&k, 7), None);
        assert!(t.key_modified_after(&k, 5));
        assert!(!t.key_modified_after(&k, 7));
    }

    #[test]
    fn rows_touched_after_reports_new_and_superseded_versions() {
        let t = subs_table();
        let k = key("U1", "F2");
        t.install(&k, row!["U1", "F2"], 2);
        assert_eq!(t.rows_touched_after(5).len(), 0);
        t.install(&k, row!["U1", "F2-renamed"], 6);
        let touched = t.rows_touched_after(5);
        // The superseded version (ended at 6) and the new one (began at 6).
        assert_eq!(touched.len(), 2);
    }

    #[test]
    fn gc_drops_history_and_dead_keys() {
        let t = subs_table();
        let k = key("U1", "F1");
        t.install(&k, row!["U1", "F1"], 1);
        t.install(&k, row!["U1", "F1b"], 2);
        t.remove(&k, 3);
        assert_eq!(t.version_count(), 2);
        let dropped = t.gc_before(10);
        assert_eq!(dropped, 2);
        assert_eq!(t.version_count(), 0);
        assert_eq!(t.count_at(10), 0);
    }

    #[test]
    fn materialize_at_reflects_point_in_time() {
        let t = subs_table();
        t.install(&key("U1", "F1"), row!["U1", "F1"], 1);
        t.install(&key("U2", "F1"), row!["U2", "F1"], 5);
        let early = t.materialize_at(2);
        assert_eq!(early.len(), 1);
        let late = t.materialize_at(5);
        assert_eq!(late.len(), 2);
    }
}
