//! Physical table storage: a map from primary key to version chain, plus
//! optional secondary indexes and the per-table commit change log.

use std::collections::HashMap;
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::changelog::{ChangeEntry, ChangeLog};
use crate::error::{DbError, DbResult};
use crate::index::{RangeIndex, SecondaryIndex};
use crate::mvcc::{Ts, VersionChain};
use crate::predicate::{ColumnBounds, CompiledPredicate, Predicate};
use crate::registry::ActiveTxnRegistry;
use crate::row::{Key, Row};
use crate::schema::Schema;
use crate::value::Value;

/// Rows returned by a scan: `(primary key, shared row)` pairs.
pub type ScanRows = Vec<(Key, Arc<Row>)>;

/// One write in a per-commit batch: `Some(after)` installs a new
/// version, `None` installs a tombstone.
pub type BatchOp = (Key, Option<Arc<Row>>);

/// The access path the scan planner chose for a predicate, with the
/// candidate-count estimate that won. Exposed (via
/// [`TableStore::plan_scan`]) so tests and diagnostics can observe
/// planner decisions; the scan path computes the same plan internally.
///
/// Every path other than `FullScan` produces *candidate keys* that may
/// over-approximate the result (stale index entries, bounds wider than
/// the predicate): candidates are always re-checked against the version
/// chain for visibility at the read timestamp and against the full
/// compiled predicate. No path may under-approximate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScanPlan {
    /// The predicate is provably unsatisfiable
    /// ([`Predicate::provably_empty`]): the scan returns an empty result
    /// without touching the version store or taking any index lock.
    Empty,
    /// Walk every version chain; `rows` is the number of chains.
    FullScan { rows: usize },
    /// Probe a hash index once: the predicate pins `column` to one value.
    PointProbe { column: String, candidates: usize },
    /// Probe a hash index once per `IN (...)` element and merge.
    MultiProbe {
        column: String,
        probes: usize,
        candidates: usize,
    },
    /// Walk an ordered index over the window the predicate's comparison
    /// conjuncts imply on `column`.
    RangeProbe { column: String, candidates: usize },
    /// Stream the value-ordered [`RangeIndex`] on `column` in `ORDER BY`
    /// direction and stop after `limit` result rows: top-k in O(k)
    /// instead of materialise + re-sort (see
    /// [`TableStore::scan_ordered_limit`]).
    OrderedProbe { column: String, limit: usize },
}

impl ScanPlan {
    /// True if the planner avoided the full chain walk — an index path,
    /// or the [`ScanPlan::Empty`] short-circuit.
    pub fn uses_index(&self) -> bool {
        !matches!(self, ScanPlan::FullScan { .. })
    }
}

/// The winning access path with enough context to materialise its
/// candidate keys (borrows the locked index vectors).
enum PathChoice<'a> {
    Full,
    Point(&'a SecondaryIndex, &'a Value),
    Multi(&'a SecondaryIndex, &'a [Value]),
    Range(&'a RangeIndex, ColumnBounds),
}

/// Storage for one table.
///
/// All mutation goes through [`TableStore::install`] / [`TableStore::remove`],
/// which are only called by the database's commit path while it holds
/// *this table's* commit lock ([`TableStore::commit_lock`]) — the sharded
/// replacement for the old global commit mutex, see the commit-protocol
/// docs on [`crate::database`]. Internal per-table locking therefore only
/// needs to protect readers from the one concurrent writer.
///
/// Row images are stored and returned as [`Arc<Row>`]: reads at any
/// timestamp, CDC records and the change log all share the writer's
/// allocation, so the read path never deep-copies row payloads.
#[derive(Debug)]
pub struct TableStore {
    name: String,
    schema: Schema,
    rows: RwLock<HashMap<Key, VersionChain>>,
    indexes: RwLock<Vec<SecondaryIndex>>,
    range_indexes: RwLock<Vec<RangeIndex>>,
    /// Commit-ordered ring of recent row changes; serves O(Δ)
    /// serializable validation (see the [`crate::changelog`] docs).
    changelog: ChangeLog,
    /// This table's commit lock, shared as an `Arc` so the commit
    /// coordinator can merge it with other participants' resource locks
    /// (e.g. `kv:<namespace>` shards) into one sorted acquisition order;
    /// see the protocol docs on [`crate::database`].
    commit_lock: Arc<Mutex<()>>,
    /// The owning database's active-transaction registry; its watermark
    /// bounds change-log ring eviction so an active transaction's
    /// validation window is never evicted. Standalone stores (unit tests)
    /// get a private empty registry, which pins nothing.
    registry: Arc<ActiveTxnRegistry>,
    /// The owning database's publication clock, used to clamp ring
    /// eviction so a transaction beginning concurrently with an
    /// at-capacity append cannot find its window evicted (see
    /// [`ActiveTxnRegistry::eviction_horizon`]). `None` for standalone
    /// stores, which have no clock (and no concurrent begins).
    clock: Option<Arc<AtomicU64>>,
}

impl TableStore {
    /// Creates an empty, standalone table (no shared transaction
    /// registry; nothing pins the change-log ring).
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        TableStore::with_registry(name, schema, Arc::new(ActiveTxnRegistry::new()), None)
    }

    /// Creates an empty table wired to the owning database's
    /// active-transaction registry and publication clock.
    pub(crate) fn with_registry(
        name: impl Into<String>,
        schema: Schema,
        registry: Arc<ActiveTxnRegistry>,
        clock: Option<Arc<AtomicU64>>,
    ) -> Self {
        TableStore {
            name: name.into(),
            schema,
            rows: RwLock::new(HashMap::new()),
            indexes: RwLock::new(Vec::new()),
            range_indexes: RwLock::new(Vec::new()),
            changelog: ChangeLog::default(),
            commit_lock: Arc::new(Mutex::new(())),
            registry,
            clock,
        }
    }

    /// This table's commit lock; acquired by the database commit path (and
    /// cloned into the coordinator's merged resource-lock order).
    pub(crate) fn commit_lock(&self) -> &Arc<Mutex<()>> {
        &self.commit_lock
    }

    /// The change-log eviction horizon: the active-transaction watermark
    /// clamped to the published clock, both read under the registry lock
    /// (linearizable with `begin`). Standalone stores fall back to the
    /// raw watermark — they have no clock and no concurrent begins.
    fn eviction_horizon(&self) -> Ts {
        match &self.clock {
            Some(clock) => self
                .registry
                .eviction_horizon(|| clock.load(Ordering::SeqCst)),
            None => self.registry.watermark(),
        }
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The table's commit change log.
    pub fn changelog(&self) -> &ChangeLog {
        &self.changelog
    }

    /// Registers a secondary index over `column`.
    pub fn create_index(&self, column: &str) -> DbResult<()> {
        let col_idx = self
            .schema
            .column_index(column)
            .ok_or_else(|| DbError::NoSuchColumn {
                table: self.name.clone(),
                column: column.to_string(),
            })?;
        // Lock order: `rows` strictly before an index lock, everywhere
        // (the scan path nests them the same way). Holding `rows` across
        // the duplicate check + backfill + publish also keeps the new
        // index exactly consistent with the version store.
        let rows = self.rows.read();
        let mut indexes = self.indexes.write();
        if indexes.iter().any(|i| i.column() == column) {
            return Err(DbError::Invalid(format!(
                "index on `{}.{}` already exists",
                self.name, column
            )));
        }
        let mut idx = SecondaryIndex::new(column, col_idx);
        // Backfill from the full version history (oldest first), stamping
        // each value with the version's end timestamp, so snapshot and
        // time-travel scans through the index see rows that were already
        // updated away or deleted when the index was created.
        for (key, chain) in rows.iter() {
            for version in chain.versions() {
                idx.record(key, &version.row, version.end_ts);
            }
        }
        indexes.push(idx);
        Ok(())
    }

    /// Registers an ordered ([`RangeIndex`]) index over `column`, serving
    /// bounded range probes (`<`, `<=`, `>`, `>=` windows) in addition to
    /// equality. A column may carry both a hash and a range index; the
    /// scan planner picks whichever estimates cheaper per predicate.
    pub fn create_range_index(&self, column: &str) -> DbResult<()> {
        let col_idx = self
            .schema
            .column_index(column)
            .ok_or_else(|| DbError::NoSuchColumn {
                table: self.name.clone(),
                column: column.to_string(),
            })?;
        // Same lock order as `create_index`: `rows` before the index lock.
        let rows = self.rows.read();
        let mut range_indexes = self.range_indexes.write();
        if range_indexes.iter().any(|i| i.column() == column) {
            return Err(DbError::Invalid(format!(
                "range index on `{}.{}` already exists",
                self.name, column
            )));
        }
        let mut idx = RangeIndex::new(column, col_idx);
        // Same full-history backfill as `create_index`: snapshot and
        // time-travel probes below the creation point must still resolve.
        for (key, chain) in rows.iter() {
            for version in chain.versions() {
                idx.record(key, &version.row, version.end_ts);
            }
        }
        range_indexes.push(idx);
        Ok(())
    }

    /// Names of hash-indexed columns.
    pub fn indexed_columns(&self) -> Vec<String> {
        self.indexes
            .read()
            .iter()
            .map(|i| i.column().to_string())
            .collect()
    }

    /// Names of range-indexed columns.
    pub fn range_indexed_columns(&self) -> Vec<String> {
        self.range_indexes
            .read()
            .iter()
            .map(|i| i.column().to_string())
            .collect()
    }

    /// Reads the row with `key` visible at `ts`. The returned `Arc` shares
    /// the stored allocation (no deep copy).
    pub fn get_at(&self, key: &Key, ts: Ts) -> Option<Arc<Row>> {
        self.rows
            .read()
            .get(key)
            .and_then(|chain| chain.visible_at(ts))
            .cloned()
    }

    /// Scans rows visible at `ts` matching `pred` through the access-path
    /// planner (see [`TableStore::plan_scan`]): the cheapest of a point
    /// index probe, an `IN (...)` multi-probe, an ordered range probe and
    /// the full chain walk serves the candidates, which are then
    /// visibility- and predicate-checked against the version store. The
    /// predicate is compiled once; rows are shared, not copied.
    pub fn scan_at(&self, pred: &Predicate, ts: Ts) -> DbResult<Vec<(Key, Arc<Row>)>> {
        self.scan_at_compiled(pred, &pred.compile(&self.schema)?, ts)
    }

    /// [`TableStore::scan_at`] for callers that already compiled `pred`
    /// against this table's schema (the transactional scan path compiles
    /// once and reuses it for its own buffered-write overlay). `pred` is
    /// still needed for access-path planning, which analyses the
    /// uncompiled tree (`equality_on` / `in_list_on` / `bounds_on`).
    pub fn scan_at_compiled(
        &self,
        pred: &Predicate,
        compiled: &CompiledPredicate,
        ts: Ts,
    ) -> DbResult<Vec<(Key, Arc<Row>)>> {
        // A provably unsatisfiable predicate (False, empty IN list, or a
        // contradictory comparison window) short-circuits before any lock
        // is taken: no chain walk, no index probe.
        if pred.provably_empty() {
            return Ok(Vec::new());
        }
        let rows = self.rows.read();
        let indexes = self.indexes.read();
        let range_indexes = self.range_indexes.read();
        let (choice, _) = plan_access_path(pred, rows.len(), &indexes, &range_indexes);

        let mut out = Vec::new();
        match choice {
            PathChoice::Full => {
                for (key, chain) in rows.iter() {
                    if let Some(row) = chain.visible_at(ts) {
                        if compiled.matches(row) {
                            out.push((key.clone(), row.clone()));
                        }
                    }
                }
            }
            choice => {
                // Candidates are filtered by the read timestamp already
                // (keys eagerly unlinked at or before `ts` are excluded),
                // then re-checked for visibility and the full predicate:
                // indexes over-approximate, never under-approximate.
                let mut keys = match choice {
                    PathChoice::Full => unreachable!("handled above"),
                    PathChoice::Point(idx, value) => idx.lookup_at(value, ts),
                    PathChoice::Multi(idx, values) => {
                        let mut keys = Vec::new();
                        for value in values {
                            keys.extend(idx.lookup_at(value, ts));
                        }
                        keys
                    }
                    PathChoice::Range(idx, bounds) => idx.range_at(&bounds, ts),
                };
                // Multi-value paths can surface a key once per value it
                // carried in overlapping stamp windows.
                keys.sort_unstable();
                keys.dedup();
                for key in keys {
                    if let Some(chain) = rows.get(&key) {
                        if let Some(row) = chain.visible_at(ts) {
                            if compiled.matches(row) {
                                out.push((key, row.clone()));
                            }
                        }
                    }
                }
            }
        }
        // Deterministic order for traces and tests.
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    /// The access path [`TableStore::scan_at`] would take for `pred`,
    /// without executing it. Diagnostics and tests use this to observe
    /// planner decisions; equivalence tests pair it with
    /// [`TableStore::scan_at_full`].
    pub fn plan_scan(&self, pred: &Predicate) -> ScanPlan {
        if pred.provably_empty() {
            return ScanPlan::Empty;
        }
        let rows = self.rows.read();
        let indexes = self.indexes.read();
        let range_indexes = self.range_indexes.read();
        let (choice, cost) = plan_access_path(pred, rows.len(), &indexes, &range_indexes);
        // Rendering the plan (column-name allocations) happens only here,
        // on the diagnostics path — the scan path drops it unrendered.
        match choice {
            PathChoice::Full => ScanPlan::FullScan { rows: rows.len() },
            PathChoice::Point(idx, _) => ScanPlan::PointProbe {
                column: idx.column().to_string(),
                candidates: cost,
            },
            PathChoice::Multi(idx, values) => ScanPlan::MultiProbe {
                column: idx.column().to_string(),
                probes: values.len(),
                candidates: cost,
            },
            PathChoice::Range(idx, _) => ScanPlan::RangeProbe {
                column: idx.column().to_string(),
                candidates: cost,
            },
        }
    }

    /// Streams rows visible at `ts` matching `pred` in `order_col` order
    /// (descending if `descending`), stopping after `limit` rows — the
    /// `ORDER BY <indexed col> LIMIT k` fast path. Returns `None` when
    /// the streamed probe is not applicable and the caller must fall back
    /// to scan + sort:
    ///
    /// * no [`RangeIndex`] exists on `order_col`, or
    /// * `order_col` is nullable *and* the predicate places no bounds on
    ///   it — NULLs are never indexed, but they sort (first ascending,
    ///   last descending, per [`Value::total_cmp`]'s type ranking), so
    ///   the walk would drop or misplace them. A comparison window on the
    ///   column excludes NULL rows (NULL fails every comparison), making
    ///   the index complete over the result set again.
    ///
    /// The output is exactly what scan + stable-sort-by-`order_col` +
    /// truncate produces: values in index order, ties broken by primary
    /// key (the stable sort's input is key-ordered). Each candidate is
    /// accepted only if its visible row still carries the slot's value —
    /// a key the index over-approximates into several value slots lands
    /// exactly once, in its current group.
    pub fn scan_ordered_limit(
        &self,
        pred: &Predicate,
        order_col: &str,
        descending: bool,
        limit: usize,
        ts: Ts,
    ) -> DbResult<Option<ScanRows>> {
        let Some(col_idx) = self.schema.column_index(order_col) else {
            return Ok(None);
        };
        let bounds = pred.bounds_on(order_col);
        if self.schema.columns()[col_idx].nullable && bounds.is_none() {
            return Ok(None);
        }
        let compiled = pred.compile(&self.schema)?;
        if pred.provably_empty() {
            // Still index-eligible: the empty result needs no fallback.
            return Ok(Some(Vec::new()));
        }
        let rows = self.rows.read();
        let range_indexes = self.range_indexes.read();
        let Some(idx) = range_indexes.iter().find(|i| i.column() == order_col) else {
            return Ok(None);
        };
        let bounds = bounds.unwrap_or(ColumnBounds {
            lower: Bound::Unbounded,
            upper: Bound::Unbounded,
        });
        let mut out = Vec::new();
        idx.ordered_walk_at(&bounds, descending, ts, |value, mut keys| {
            // Ties within a value group break by primary key, matching
            // the fallback's stable sort over a key-ordered scan.
            keys.sort_unstable();
            for key in keys {
                if let Some(row) = rows.get(&key).and_then(|chain| chain.visible_at(ts)) {
                    if row.get(col_idx) == Some(value) && compiled.matches(row) {
                        out.push((key, row.clone()));
                    }
                }
            }
            out.len() < limit
        });
        out.truncate(limit);
        Ok(Some(out))
    }

    /// The access path [`TableStore::scan_ordered_limit`] would take for
    /// this predicate/ORDER BY combination, or `None` when it would fall
    /// back (same eligibility rules). Lets tests and diagnostics observe
    /// the planner's ordered-probe choice.
    pub fn plan_ordered_scan(
        &self,
        pred: &Predicate,
        order_col: &str,
        limit: usize,
    ) -> Option<ScanPlan> {
        let col_idx = self.schema.column_index(order_col)?;
        if self.schema.columns()[col_idx].nullable && pred.bounds_on(order_col).is_none() {
            return None;
        }
        self.range_indexes
            .read()
            .iter()
            .any(|i| i.column() == order_col)
            .then(|| ScanPlan::OrderedProbe {
                column: order_col.to_string(),
                limit,
            })
    }

    /// [`TableStore::scan_at`] forced down the full-scan path, bypassing
    /// the planner. This is the oracle the planner's paths must agree
    /// with (every index path over-approximates candidates and re-checks,
    /// so results are identical by construction — property-tested in
    /// `tests/scan_path_equivalence.rs`), and the baseline the `scan_path`
    /// benchmark measures speedups against.
    pub fn scan_at_full(&self, pred: &Predicate, ts: Ts) -> DbResult<Vec<(Key, Arc<Row>)>> {
        let compiled = pred.compile(&self.schema)?;
        let rows = self.rows.read();
        let mut out = Vec::new();
        for (key, chain) in rows.iter() {
            if let Some(row) = chain.visible_at(ts) {
                if compiled.matches(row) {
                    out.push((key.clone(), row.clone()));
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    /// True if any version of `key` was created or superseded after `ts`.
    pub fn key_modified_after(&self, key: &Key, ts: Ts) -> bool {
        self.rows
            .read()
            .get(key)
            .map(|chain| chain.modified_after(ts))
            .unwrap_or(false)
    }

    /// True if `key` was written by a commit in the open window
    /// `(after, upto)`. The SSI commit path re-validates unlocked point
    /// reads with this inside the publication window: `upto` is the
    /// validating commit's own timestamp, so versions a concurrent
    /// *successor* installed early (at a higher timestamp, on this
    /// unlocked table) never count as conflicts.
    pub fn key_modified_in(&self, key: &Key, after: Ts, upto: Ts) -> bool {
        self.rows
            .read()
            .get(key)
            .map(|chain| chain.modified_in(after, upto))
            .unwrap_or(false)
    }

    /// Returns keys whose chains changed after `ts` together with the rows
    /// involved (both old rows that were superseded and new rows created).
    ///
    /// This is an O(total versions) full scan, retained as a diagnostic
    /// view of the same window the commit path validates. The commit path
    /// itself uses [`TableStore::predicate_conflict_after`], whose
    /// full-scan fallback shares [`crate::mvcc::Version::touched_after`]
    /// with this method.
    pub fn rows_touched_after(&self, ts: Ts) -> Vec<(Key, Arc<Row>)> {
        let rows = self.rows.read();
        let mut out = Vec::new();
        for (key, chain) in rows.iter() {
            for v in chain.versions() {
                if v.touched_after(ts) {
                    out.push((key.clone(), v.row.clone()));
                }
            }
        }
        out
    }

    /// Serializable (phantom) validation primitive: returns the key of a
    /// row change committed after `ts` that `pred` can observe, or `None`
    /// if the predicate's result set is untouched since `ts`.
    ///
    /// Fast path: walk the change log entries in `(ts, now]` — O(Δ) in
    /// the number of changes since the transaction began — testing the
    /// compiled predicate against each before/after image. Falls back to
    /// the full version scan when the log no longer covers the window
    /// (GC truncation or ring overflow) or when `force_full_scan` is set.
    pub fn predicate_conflict_after(
        &self,
        pred: &Predicate,
        ts: Ts,
        force_full_scan: bool,
    ) -> DbResult<Option<Key>> {
        let compiled = pred.compile(&self.schema)?;
        if !force_full_scan {
            let from_log = self.changelog.scan_after(ts, |entry: &ChangeEntry| {
                let before_hit = entry.before.as_deref().is_some_and(|r| compiled.matches(r));
                let after_hit = entry.after.as_deref().is_some_and(|r| compiled.matches(r));
                (before_hit || after_hit).then(|| entry.key.clone())
            });
            if let Ok(decision) = from_log {
                #[cfg(debug_assertions)]
                {
                    let oracle = self.full_scan_conflict_in(&compiled, ts, Ts::MAX);
                    debug_assert_eq!(
                        decision.is_some(),
                        oracle.is_some(),
                        "change-log validation diverged from full scan for {} at ts {}",
                        self.name,
                        ts
                    );
                }
                return Ok(decision);
            }
        }
        Ok(self.full_scan_conflict_in(&compiled, ts, Ts::MAX))
    }

    /// [`TableStore::predicate_conflict_after`] bounded above: conflicts
    /// committed in the open window `(after, upto)` only. This is the SSI
    /// validation primitive for tables the committing transaction did
    /// *not* lock:
    ///
    /// * Called with `upto == Ts::MAX` it is the optimistic pre-claim
    ///   check. Concurrent commits may be mid-install on this table, so
    ///   the change-log decision is a racy snapshot (still sound: any
    ///   missed conflict is caught by the in-window re-check, and any
    ///   extra hit is a real committed-or-certain-to-publish write) — the
    ///   debug full-scan oracle is therefore skipped, as the two racy
    ///   snapshots could legitimately diverge.
    /// * Called with `upto` = the claimed commit timestamp, *inside* the
    ///   publication window, it is the authoritative re-check: every
    ///   commit below `upto` is fully installed and published, every
    ///   version at or above `upto` belongs to a successor and is
    ///   excluded, so the decision is exact and the oracle runs.
    pub fn predicate_conflict_in(
        &self,
        pred: &Predicate,
        after: Ts,
        upto: Ts,
        force_full_scan: bool,
    ) -> DbResult<Option<Key>> {
        let compiled = pred.compile(&self.schema)?;
        if !force_full_scan {
            let from_log = self.changelog.scan_after(after, |entry: &ChangeEntry| {
                if entry.commit_ts >= upto {
                    return None;
                }
                let before_hit = entry.before.as_deref().is_some_and(|r| compiled.matches(r));
                let after_hit = entry.after.as_deref().is_some_and(|r| compiled.matches(r));
                (before_hit || after_hit).then(|| entry.key.clone())
            });
            if let Ok(decision) = from_log {
                #[cfg(debug_assertions)]
                if upto != Ts::MAX {
                    let oracle = self.full_scan_conflict_in(&compiled, after, upto);
                    debug_assert_eq!(
                        decision.is_some(),
                        oracle.is_some(),
                        "bounded change-log validation diverged from full scan for {} in ({}, {})",
                        self.name,
                        after,
                        upto
                    );
                }
                return Ok(decision);
            }
        }
        Ok(self.full_scan_conflict_in(&compiled, after, upto))
    }

    /// The full-scan oracle behind [`TableStore::predicate_conflict_after`]
    /// and [`TableStore::predicate_conflict_in`] (`upto == Ts::MAX` is the
    /// unbounded case).
    fn full_scan_conflict_in(
        &self,
        compiled: &CompiledPredicate,
        after: Ts,
        upto: Ts,
    ) -> Option<Key> {
        let rows = self.rows.read();
        for (key, chain) in rows.iter() {
            for v in chain.versions() {
                if v.touched_in(after, upto) && compiled.matches(&v.row) {
                    return Some(key.clone());
                }
            }
        }
        None
    }

    /// Whether a live (visible at `ts`) row exists for `key`.
    pub fn exists_at(&self, key: &Key, ts: Ts) -> bool {
        self.rows
            .read()
            .get(key)
            .and_then(|chain| chain.visible_at(ts))
            .is_some()
    }

    /// Installs a new version for `key` at `commit_ts`; updates indexes
    /// (eagerly unlinking the before image's values) and appends to the
    /// change log. Returns the before image, if any. Only called under
    /// this table's commit lock — crate-private so code outside the
    /// engine cannot bypass the commit protocol through a
    /// [`crate::Database::table`] handle.
    /// Installs a whole checkpoint snapshot in one pass: one lock
    /// acquisition for every row, no changelog entries (a restored base
    /// is *state*, not a change — emitting it as CDC would present the
    /// entire snapshot as writes at `commit_ts`). Indexes are rebuilt by
    /// the caller afterwards via `create_index` backfill.
    pub(crate) fn install_snapshot<I>(&self, entries: I, commit_ts: Ts)
    where
        I: IntoIterator<Item = (Key, Arc<Row>)>,
    {
        let mut rows = self.rows.write();
        for (key, row) in entries {
            rows.entry(key).or_default().install(commit_ts, row);
        }
    }

    pub(crate) fn install(&self, key: &Key, row: Arc<Row>, commit_ts: Ts) -> Option<Arc<Row>> {
        let mut rows = self.rows.write();
        let chain = rows.entry(key.clone()).or_default();
        let before = chain.install(commit_ts, row.clone());
        drop(rows);
        self.changelog.append(
            ChangeEntry {
                commit_ts,
                key: key.clone(),
                before: before.clone(),
                after: Some(row.clone()),
            },
            || self.eviction_horizon(),
        );
        let mut indexes = self.indexes.write();
        for idx in indexes.iter_mut() {
            // Unlink-then-insert: if the update kept the indexed value the
            // insert restores the live stamp; if it changed the value the
            // old entry is tombstoned at `commit_ts`.
            if let Some(before) = &before {
                idx.unlink(key, before, commit_ts);
            }
            idx.insert(key, &row);
        }
        drop(indexes);
        let mut range_indexes = self.range_indexes.write();
        for idx in range_indexes.iter_mut() {
            if let Some(before) = &before {
                idx.unlink(key, before, commit_ts);
            }
            idx.insert(key, &row);
        }
        before
    }

    /// Applies a whole commit's writes to this table in one pass:
    /// `Some(row)` installs, `None` deletes. Returns the before image per
    /// entry (parallel to `ops`).
    ///
    /// Semantically identical to calling [`TableStore::install`] /
    /// [`TableStore::remove`] per entry in order — same version chains,
    /// same change-log entries in the same order, same index stamps — but
    /// each internal lock (`rows`, then `indexes`, then `range_indexes`;
    /// the crate-wide lock order) is taken *once per commit* instead of
    /// once per row, which is what makes multi-row commits on indexed
    /// tables cheap. Only called under this table's commit lock.
    pub(crate) fn apply_batch(&self, ops: &[BatchOp], commit_ts: Ts) -> Vec<Option<Arc<Row>>> {
        let mut befores = Vec::with_capacity(ops.len());
        {
            let mut rows = self.rows.write();
            for (key, after) in ops {
                let before = match after {
                    Some(row) => rows
                        .entry(key.clone())
                        .or_default()
                        .install(commit_ts, row.clone()),
                    None => rows.get_mut(key).and_then(|chain| chain.remove(commit_ts)),
                };
                befores.push(before);
            }
        }
        for ((key, after), before) in ops.iter().zip(&befores) {
            // A delete that found nothing changes nothing: no change-log
            // entry, no index work (matching `remove`).
            if after.is_none() && before.is_none() {
                continue;
            }
            self.changelog.append(
                ChangeEntry {
                    commit_ts,
                    key: key.clone(),
                    before: before.clone(),
                    after: after.clone(),
                },
                || self.eviction_horizon(),
            );
        }
        let mut indexes = self.indexes.write();
        for idx in indexes.iter_mut() {
            for ((key, after), before) in ops.iter().zip(&befores) {
                if let Some(before) = before {
                    idx.unlink(key, before, commit_ts);
                }
                if let Some(after) = after {
                    idx.insert(key, after);
                }
            }
        }
        drop(indexes);
        let mut range_indexes = self.range_indexes.write();
        for idx in range_indexes.iter_mut() {
            for ((key, after), before) in ops.iter().zip(&befores) {
                if let Some(before) = before {
                    idx.unlink(key, before, commit_ts);
                }
                if let Some(after) = after {
                    idx.insert(key, after);
                }
            }
        }
        befores
    }

    /// Deletes the live version of `key` at `commit_ts`, eagerly unlinking
    /// it from all secondary indexes. Returns the deleted row, if any.
    /// Only called under this table's commit lock; crate-private for the
    /// same reason as [`TableStore::install`]. Commit paths go through
    /// [`TableStore::apply_batch`]; this single-row form remains as the
    /// reference implementation the batch is tested against.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn remove(&self, key: &Key, commit_ts: Ts) -> Option<Arc<Row>> {
        let mut rows = self.rows.write();
        let before = rows.get_mut(key).and_then(|chain| chain.remove(commit_ts));
        drop(rows);
        if let Some(before) = &before {
            self.changelog.append(
                ChangeEntry {
                    commit_ts,
                    key: key.clone(),
                    before: Some(before.clone()),
                    after: None,
                },
                || self.eviction_horizon(),
            );
            let mut indexes = self.indexes.write();
            for idx in indexes.iter_mut() {
                idx.unlink(key, before, commit_ts);
            }
            drop(indexes);
            let mut range_indexes = self.range_indexes.write();
            for idx in range_indexes.iter_mut() {
                idx.unlink(key, before, commit_ts);
            }
        }
        before
    }

    /// Number of live rows at `ts`.
    pub fn count_at(&self, ts: Ts) -> usize {
        self.rows
            .read()
            .values()
            .filter(|c| c.visible_at(ts).is_some())
            .count()
    }

    /// Total stored versions (live + historical), for stats/GC decisions.
    pub fn version_count(&self) -> usize {
        self.rows.read().values().map(|c| c.len()).sum()
    }

    /// Garbage collects versions not visible to any reader at or after
    /// `ts`, truncating the change log over the same window. Returns how
    /// many versions were dropped.
    pub(crate) fn gc_before(&self, ts: Ts) -> usize {
        let mut rows = self.rows.write();
        let mut dropped = 0;
        let mut dead_keys = Vec::new();
        for (key, chain) in rows.iter_mut() {
            dropped += chain.gc_before(ts);
            if chain.is_empty() {
                dead_keys.push(key.clone());
            }
        }
        for key in &dead_keys {
            rows.remove(key);
        }
        drop(rows);
        self.changelog.truncate_before(ts);
        let mut indexes = self.indexes.write();
        for idx in indexes.iter_mut() {
            // Entries tombstoned at or below the horizon point at versions
            // that no longer exist; eager unlink stamped them, GC drops
            // them. (This subsumes the old per-dead-key purge.)
            idx.purge_dead(ts);
        }
        drop(indexes);
        let mut range_indexes = self.range_indexes.write();
        for idx in range_indexes.iter_mut() {
            idx.purge_dead(ts);
        }
        dropped
    }

    /// Snapshot of live rows at `ts`, used when forking a database. Rows
    /// are shared with the version store, not copied.
    pub fn materialize_at(&self, ts: Ts) -> Vec<(Key, Arc<Row>)> {
        let rows = self.rows.read();
        let mut out: Vec<(Key, Arc<Row>)> = rows
            .iter()
            .filter_map(|(k, c)| c.visible_at(ts).map(|r| (k.clone(), r.clone())))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

/// The scan planner: enumerates every applicable access path and picks the
/// one with the smallest candidate-count estimate.
///
/// Estimates are the per-slot *live* entry counters maintained on every
/// index stamp/purge — exactly what a latest-timestamp probe returns, so
/// slots that accumulated tombstones between garbage collections no
/// longer inflate probe estimates (time-travel probes can exceed the
/// estimate; cost errors never affect results). Hash estimates cost O(1)
/// per probe; the range estimate walks value slots but stops counting at
/// the best estimate so far — once a path has lost it is never fully
/// costed. The full scan (estimate = number of chains) is the baseline;
/// an index path must beat it *strictly*, since its per-candidate cost
/// (hash lookup per key) is higher than the walk's. Analysis only ever extracts *conjunctive*
/// constraints (`equality_on` / `in_list_on` / `bounds_on` all return
/// `None` under `Or`/`Not`), so a chosen path's candidates always
/// over-approximate the predicate's match set — the caller re-checks
/// visibility and the full predicate against the chains.
fn plan_access_path<'a>(
    pred: &'a Predicate,
    chain_count: usize,
    indexes: &'a [SecondaryIndex],
    range_indexes: &'a [RangeIndex],
) -> (PathChoice<'a>, usize) {
    let mut best_cost = chain_count;
    let mut choice = PathChoice::Full;
    for idx in indexes {
        if let Some(value) = pred.equality_on(idx.column()) {
            let cost = idx.candidate_count(value);
            if cost < best_cost {
                best_cost = cost;
                choice = PathChoice::Point(idx, value);
            }
        }
        if let Some(values) = pred.in_list_on(idx.column()) {
            let cost: usize = values.iter().map(|v| idx.candidate_count(v)).sum();
            if cost < best_cost {
                best_cost = cost;
                choice = PathChoice::Multi(idx, values);
            }
        }
    }
    for idx in range_indexes {
        if let Some(bounds) = pred.bounds_on(idx.column()) {
            let cost = idx.candidate_count_capped(&bounds, best_cost);
            if cost < best_cost {
                best_cost = cost;
                choice = PathChoice::Range(idx, bounds);
            }
        }
    }
    (choice, best_cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::value::{DataType, Value};

    fn subs_table() -> TableStore {
        let schema = Schema::builder()
            .column("user_id", DataType::Text)
            .column("forum", DataType::Text)
            .primary_key(&["user_id", "forum"])
            .build()
            .unwrap();
        TableStore::new("forum_sub", schema)
    }

    fn key(u: &str, f: &str) -> Key {
        Key::new(vec![Value::Text(u.into()), Value::Text(f.into())])
    }

    fn arc(r: Row) -> Arc<Row> {
        Arc::new(r)
    }

    #[test]
    fn install_get_scan() {
        let t = subs_table();
        t.install(&key("U1", "F1"), arc(row!["U1", "F1"]), 1);
        t.install(&key("U1", "F2"), arc(row!["U1", "F2"]), 2);

        assert_eq!(t.get_at(&key("U1", "F1"), 1), Some(arc(row!["U1", "F1"])));
        assert_eq!(t.get_at(&key("U1", "F2"), 1), None);
        assert_eq!(t.get_at(&key("U1", "F2"), 2), Some(arc(row!["U1", "F2"])));

        let hits = t.scan_at(&Predicate::eq("user_id", "U1"), 2).unwrap();
        assert_eq!(hits.len(), 2);
        assert_eq!(t.count_at(2), 2);
        assert_eq!(t.count_at(1), 1);
    }

    #[test]
    fn reads_share_the_installed_allocation() {
        let t = subs_table();
        let row = arc(row!["U1", "F1"]);
        t.install(&key("U1", "F1"), row.clone(), 1);
        let got = t.get_at(&key("U1", "F1"), 1).unwrap();
        assert!(Arc::ptr_eq(&got, &row), "get_at must not deep-copy");
        let scanned = t.scan_at(&Predicate::True, 1).unwrap();
        assert!(
            Arc::ptr_eq(&scanned[0].1, &row),
            "scan_at must not deep-copy"
        );
        let materialized = t.materialize_at(1);
        assert!(Arc::ptr_eq(&materialized[0].1, &row));
    }

    #[test]
    fn index_accelerated_scan_returns_same_results() {
        let t = subs_table();
        for i in 0..50 {
            let u = format!("U{i}");
            t.install(&key(&u, "F2"), arc(row![u.clone(), "F2"]), i + 1);
        }
        let no_index = t.scan_at(&Predicate::eq("forum", "F2"), 100).unwrap();
        t.create_index("forum").unwrap();
        let with_index = t.scan_at(&Predicate::eq("forum", "F2"), 100).unwrap();
        assert_eq!(no_index, with_index);
        assert_eq!(with_index.len(), 50);
        assert_eq!(t.indexed_columns(), vec!["forum".to_string()]);
    }

    #[test]
    fn delete_unlinks_index_eagerly_but_keeps_history_readable() {
        let t = subs_table();
        t.create_index("forum").unwrap();
        for i in 0..10 {
            let u = format!("U{i}");
            t.install(&key(&u, "F2"), arc(row![u.clone(), "F2"]), 1);
        }
        t.remove(&key("U3", "F2"), 5);

        // Latest scan through the index: the deleted row is gone and the
        // candidate set is exact (no dead key to filter).
        let live = t.scan_at(&Predicate::eq("forum", "F2"), 5).unwrap();
        assert_eq!(live.len(), 9);
        // Snapshot/time-travel scan below the delete still sees it.
        let old = t.scan_at(&Predicate::eq("forum", "F2"), 4).unwrap();
        assert_eq!(old.len(), 10);
    }

    #[test]
    fn update_unlinks_old_indexed_value_eagerly() {
        let schema = Schema::builder()
            .column("user_id", DataType::Text)
            .column("forum", DataType::Text)
            .primary_key(&["user_id"])
            .build()
            .unwrap();
        let t = TableStore::new("subs", schema);
        t.create_index("forum").unwrap();
        let k = Key::single(Value::Text("U1".into()));
        t.install(&k, arc(row!["U1", "F1"]), 2);
        t.install(&k, arc(row!["U1", "F2"]), 6);

        // At the latest timestamp only F2 matches; the F1 entry was
        // tombstoned by the update, not left as a dead candidate.
        assert_eq!(
            t.scan_at(&Predicate::eq("forum", "F1"), 6).unwrap().len(),
            0
        );
        assert_eq!(
            t.scan_at(&Predicate::eq("forum", "F2"), 6).unwrap().len(),
            1
        );
        // Below the update, the index still resolves F1.
        assert_eq!(
            t.scan_at(&Predicate::eq("forum", "F1"), 5).unwrap().len(),
            1
        );
    }

    #[test]
    fn index_backfill_covers_historical_versions() {
        let t = subs_table();
        let k = key("U1", "F2");
        t.install(&k, arc(row!["U1", "F2"]), 2);
        t.remove(&k, 4);
        // Index created after the delete: time travel below ts 4 must
        // still find the row through the index.
        t.create_index("forum").unwrap();
        assert_eq!(
            t.scan_at(&Predicate::eq("forum", "F2"), 3).unwrap().len(),
            1
        );
        assert_eq!(
            t.scan_at(&Predicate::eq("forum", "F2"), 4).unwrap().len(),
            0
        );
    }

    fn scored_table(n: i64) -> TableStore {
        let schema = Schema::builder()
            .column("id", DataType::Int)
            .column("grp", DataType::Int)
            .column("score", DataType::Int)
            .primary_key(&["id"])
            .build()
            .unwrap();
        let t = TableStore::new("scored", schema);
        for i in 0..n {
            t.install(&Key::single(i), arc(row![i, i % 10, i]), (i + 1) as u64);
        }
        t
    }

    #[test]
    fn planner_picks_the_cheapest_path() {
        let t = scored_table(100);
        t.create_index("grp").unwrap();
        t.create_range_index("score").unwrap();

        // No constraint: full scan.
        assert_eq!(
            t.plan_scan(&Predicate::True),
            ScanPlan::FullScan { rows: 100 }
        );
        // Equality on the hash-indexed column: point probe (10 candidates
        // beat 100 chains).
        assert_eq!(
            t.plan_scan(&Predicate::eq("grp", 3i64)),
            ScanPlan::PointProbe {
                column: "grp".into(),
                candidates: 10
            }
        );
        // IN (...) on the hash-indexed column: one probe per element.
        assert_eq!(
            t.plan_scan(&Predicate::in_list(
                "grp",
                vec![Value::Int(3), Value::Int(4)]
            )),
            ScanPlan::MultiProbe {
                column: "grp".into(),
                probes: 2,
                candidates: 20
            }
        );
        // Narrow window on the range-indexed column: range probe.
        assert_eq!(
            t.plan_scan(&Predicate::ge("score", 95i64)),
            ScanPlan::RangeProbe {
                column: "score".into(),
                candidates: 5
            }
        );
        // A selective range beats a broad point probe when both apply.
        let pred = Predicate::eq("grp", 3i64).and(Predicate::ge("score", 98i64));
        assert_eq!(
            t.plan_scan(&pred),
            ScanPlan::RangeProbe {
                column: "score".into(),
                candidates: 2
            }
        );
        // ...and vice versa.
        let pred = Predicate::eq("grp", 3i64).and(Predicate::ge("score", 0i64));
        assert!(matches!(t.plan_scan(&pred), ScanPlan::PointProbe { .. }));
        // OR forces the planner off every index.
        let pred = Predicate::eq("grp", 3i64).or(Predicate::ge("score", 95i64));
        assert_eq!(t.plan_scan(&pred), ScanPlan::FullScan { rows: 100 });
    }

    #[test]
    fn provably_empty_predicates_short_circuit_the_scan() {
        let t = scored_table(100);
        t.create_index("grp").unwrap();
        t.create_range_index("score").unwrap();
        let empty_preds = [
            Predicate::False,
            Predicate::in_list("grp", Vec::new()),
            Predicate::gt("score", 90i64).and(Predicate::lt("score", 10i64)),
            Predicate::eq("grp", 3i64).and(Predicate::False),
        ];
        for pred in &empty_preds {
            assert_eq!(t.plan_scan(pred), ScanPlan::Empty, "for [{pred}]");
            assert!(t.scan_at(pred, 1000).unwrap().is_empty());
            assert_eq!(
                t.scan_at(pred, 1000).unwrap(),
                t.scan_at_full(pred, 1000).unwrap()
            );
        }
        // A satisfiable window still plans a probe.
        assert!(matches!(
            t.plan_scan(&Predicate::ge("score", 95i64)),
            ScanPlan::RangeProbe { .. }
        ));
    }

    #[test]
    fn tombstone_heavy_slots_no_longer_inflate_probe_estimates() {
        // 100 rows in group 3; delete 95 of them. The slot still carries
        // 100 entries (tombstones await GC), but the estimate follows the
        // live count, so a latest probe costs 5, not 100.
        let schema = Schema::builder()
            .column("id", DataType::Int)
            .column("grp", DataType::Int)
            .primary_key(&["id"])
            .build()
            .unwrap();
        let t = TableStore::new("tombs", schema);
        t.create_index("grp").unwrap();
        for i in 0..100i64 {
            t.install(&Key::single(i), arc(row![i, 3i64]), (i + 1) as u64);
        }
        for i in 0..95i64 {
            t.remove(&Key::single(i), 200 + i as u64);
        }
        let plan = t.plan_scan(&Predicate::eq("grp", 3i64));
        assert_eq!(
            plan,
            ScanPlan::PointProbe {
                column: "grp".into(),
                candidates: 5
            }
        );
        // Results stay exact on every path and timestamp, including time
        // travel back into the tombstoned window.
        for ts in [100u64, 250, 400] {
            assert_eq!(
                t.scan_at(&Predicate::eq("grp", 3i64), ts).unwrap(),
                t.scan_at_full(&Predicate::eq("grp", 3i64), ts).unwrap()
            );
        }
    }

    #[test]
    fn planned_paths_agree_with_the_full_scan_oracle() {
        let t = scored_table(60);
        t.create_index("grp").unwrap();
        t.create_range_index("score").unwrap();
        // Touch history: delete some rows, update others away from their
        // group, so candidate sets carry tombstones.
        for i in (0..60i64).step_by(7) {
            t.remove(&Key::single(i), 100 + i as u64);
        }
        for i in (1..60i64).step_by(11) {
            t.install(
                &Key::single(i),
                arc(row![i, 99i64, i + 1000]),
                200 + i as u64,
            );
        }
        let preds = [
            Predicate::eq("grp", 4i64),
            Predicate::in_list("grp", vec![Value::Int(1), Value::Int(99)]),
            Predicate::ge("score", 40i64).and(Predicate::lt("score", 55i64)),
            Predicate::gt("score", 1000i64),
            Predicate::eq("grp", 4i64).and(Predicate::ge("score", 30i64)),
            Predicate::eq("grp", 4i64).or(Predicate::ge("score", 58i64)),
            Predicate::ge("score", 40i64).negate(),
        ];
        // Latest, mid-history and pre-history timestamps.
        for ts in [0u64, 30, 120, 250, 1000] {
            for pred in &preds {
                assert_eq!(
                    t.scan_at(pred, ts).unwrap(),
                    t.scan_at_full(pred, ts).unwrap(),
                    "path diverged for [{pred}] at ts {ts}"
                );
            }
        }
    }

    #[test]
    fn in_list_scan_probes_the_index_and_merges() {
        let t = subs_table();
        t.create_index("forum").unwrap();
        for i in 0..30 {
            let u = format!("U{i}");
            let f = format!("F{}", i % 3);
            t.install(&key(&u, &f), arc(row![u.clone(), f.clone()]), i + 1);
        }
        let pred = Predicate::in_list(
            "forum",
            vec![Value::Text("F0".into()), Value::Text("F2".into())],
        );
        assert!(t.plan_scan(&pred).uses_index());
        let hits = t.scan_at(&pred, 100).unwrap();
        assert_eq!(hits.len(), 20);
        assert_eq!(hits, t.scan_at_full(&pred, 100).unwrap());
        // Empty list: index path, empty result.
        let pred = Predicate::in_list("forum", Vec::new());
        assert!(t.plan_scan(&pred).uses_index());
        assert!(t.scan_at(&pred, 100).unwrap().is_empty());
    }

    #[test]
    fn range_index_serves_time_travel_and_deletes() {
        let t = scored_table(20);
        t.create_range_index("score").unwrap();
        t.remove(&Key::single(15i64), 50);
        let pred = Predicate::ge("score", 10i64).and(Predicate::le("score", 16i64));
        // Latest: the deleted row is gone.
        assert_eq!(t.scan_at(&pred, 60).unwrap().len(), 6);
        // Below the delete it is still found through the index.
        assert_eq!(t.scan_at(&pred, 49).unwrap().len(), 7);
        // Before the rows existed: nothing.
        assert_eq!(t.scan_at(&pred, 5).unwrap().len(), 0);
    }

    #[test]
    fn range_index_backfill_covers_historical_versions() {
        let t = scored_table(10);
        t.remove(&Key::single(4i64), 30);
        // Index created after the delete: time travel below ts 30 must
        // still find the row through the index.
        t.create_range_index("score").unwrap();
        let pred = Predicate::ge("score", 4i64).and(Predicate::le("score", 4i64));
        assert!(t.plan_scan(&pred).uses_index());
        assert_eq!(t.scan_at(&pred, 29).unwrap().len(), 1);
        assert_eq!(t.scan_at(&pred, 30).unwrap().len(), 0);
    }

    #[test]
    fn duplicate_range_index_rejected() {
        let t = scored_table(1);
        t.create_range_index("score").unwrap();
        assert!(t.create_range_index("score").is_err());
        assert!(t.create_range_index("no_such_column").is_err());
        // A hash index on the same column is a different index kind.
        t.create_index("score").unwrap();
        assert_eq!(t.range_indexed_columns(), vec!["score".to_string()]);
        assert_eq!(t.indexed_columns(), vec!["score".to_string()]);
    }

    #[test]
    fn gc_purges_tombstoned_index_entries() {
        let t = subs_table();
        t.create_index("forum").unwrap();
        let k = key("U1", "F2");
        t.install(&k, arc(row!["U1", "F2"]), 1);
        t.remove(&k, 2);
        t.install(&key("U2", "F1"), arc(row!["U2", "F1"]), 3);
        t.gc_before(10);
        let indexes = t.indexes.read();
        assert_eq!(indexes[0].entry_count(), 1, "only the live entry remains");
    }

    #[test]
    fn duplicate_index_rejected() {
        let t = subs_table();
        t.create_index("forum").unwrap();
        assert!(t.create_index("forum").is_err());
        assert!(t.create_index("no_such_column").is_err());
    }

    #[test]
    fn remove_and_time_travel() {
        let t = subs_table();
        let k = key("U1", "F2");
        t.install(&k, arc(row!["U1", "F2"]), 3);
        let before = t.remove(&k, 7);
        assert_eq!(before, Some(arc(row!["U1", "F2"])));
        assert_eq!(t.get_at(&k, 6), Some(arc(row!["U1", "F2"])));
        assert_eq!(t.get_at(&k, 7), None);
        assert!(t.key_modified_after(&k, 5));
        assert!(!t.key_modified_after(&k, 7));
    }

    #[test]
    fn rows_touched_after_reports_new_and_superseded_versions() {
        let t = subs_table();
        let k = key("U1", "F2");
        t.install(&k, arc(row!["U1", "F2"]), 2);
        assert_eq!(t.rows_touched_after(5).len(), 0);
        t.install(&k, arc(row!["U1", "F2-renamed"]), 6);
        let touched = t.rows_touched_after(5);
        // The superseded version (ended at 6) and the new one (began at 6).
        assert_eq!(touched.len(), 2);
    }

    #[test]
    fn predicate_conflict_uses_log_and_matches_full_scan() {
        let t = subs_table();
        t.install(&key("U1", "F1"), arc(row!["U1", "F1"]), 1);
        t.install(&key("U2", "F2"), arc(row!["U2", "F2"]), 5);

        let pred_f2 = Predicate::eq("forum", "F2");
        let pred_f9 = Predicate::eq("forum", "F9");
        for force_full in [false, true] {
            // A write to F2 after ts 2 conflicts with the F2 predicate...
            let hit = t.predicate_conflict_after(&pred_f2, 2, force_full).unwrap();
            assert_eq!(hit, Some(key("U2", "F2")));
            // ...but not with an unrelated predicate, and not before ts 5.
            assert_eq!(
                t.predicate_conflict_after(&pred_f9, 2, force_full).unwrap(),
                None
            );
            assert_eq!(
                t.predicate_conflict_after(&pred_f2, 5, force_full).unwrap(),
                None
            );
        }
    }

    #[test]
    fn predicate_conflict_sees_before_images_of_updates_and_deletes() {
        let t = subs_table();
        let k = key("U1", "F2");
        t.install(&k, arc(row!["U1", "F2"]), 2);
        // Update away from F2 at ts 4: a transaction that scanned for F2
        // at ts 3 must still see a conflict (its result set shrank).
        t.install(&k, arc(row!["U1", "F2-moved"]), 4);
        let pred = Predicate::eq("forum", "F2");
        for force_full in [false, true] {
            assert_eq!(
                t.predicate_conflict_after(&pred, 3, force_full).unwrap(),
                Some(k.clone())
            );
        }
        // Delete at ts 6: same story for a scan taken at ts 5 looking for
        // the moved row.
        t.remove(&k, 6);
        let pred_moved = Predicate::eq("forum", "F2-moved");
        for force_full in [false, true] {
            assert_eq!(
                t.predicate_conflict_after(&pred_moved, 5, force_full)
                    .unwrap(),
                Some(k.clone())
            );
        }
    }

    #[test]
    fn predicate_conflict_falls_back_after_log_truncation() {
        let t = subs_table();
        let k = key("U1", "F2");
        t.install(&k, arc(row!["U1", "F2"]), 2);
        t.install(&k, arc(row!["U1", "F2b"]), 5);
        // Truncate the log above ts 1: the log can no longer answer a
        // window starting at 1, but the full scan still can.
        t.changelog().truncate_before(3);
        let pred = Predicate::eq("user_id", "U1");
        let hit = t.predicate_conflict_after(&pred, 1, false).unwrap();
        assert!(hit.is_some(), "fallback must still detect the conflict");
    }

    #[test]
    fn gc_drops_history_and_dead_keys() {
        let t = subs_table();
        let k = key("U1", "F1");
        t.install(&k, arc(row!["U1", "F1"]), 1);
        t.install(&k, arc(row!["U1", "F1b"]), 2);
        t.remove(&k, 3);
        assert_eq!(t.version_count(), 2);
        let dropped = t.gc_before(10);
        assert_eq!(dropped, 2);
        assert_eq!(t.version_count(), 0);
        assert_eq!(t.count_at(10), 0);
        // The change log was truncated with the versions.
        assert!(t.changelog().is_empty());
        assert_eq!(t.changelog().low_water(), 10);
    }

    #[test]
    fn materialize_at_reflects_point_in_time() {
        let t = subs_table();
        t.install(&key("U1", "F1"), arc(row!["U1", "F1"]), 1);
        t.install(&key("U2", "F1"), arc(row!["U2", "F1"]), 5);
        let early = t.materialize_at(2);
        assert_eq!(early.len(), 1);
        let late = t.materialize_at(5);
        assert_eq!(late.len(), 2);
    }
}
