//! The commit-ordered transaction log.
//!
//! Strict serializability means transactions are serialized in commit
//! order (paper §3.1); the log records exactly that order together with
//! each transaction's change-data-capture records. The TROD interposition
//! layer reads committed entries from here, and the replay engine re-applies
//! them to reconstruct past database states.
//!
//! The aligned log is also the engine's **recovery log**: with a WAL
//! attached ([`crate::wal`]), the commit coordinator streams every entry
//! appended here into the durable active segment inside the publication
//! window (byte order == commit order), and recovery replays those
//! entries — verbatim, identity included — back through the participant
//! commit path. On disk the log is segmented ([`crate::segment`]): the
//! GC floor established by [`TxnLog::truncate_before`] is also the
//! compaction floor — sealed segments whose entries all sit at or below
//! it are compacted into immutable cold files rather than deleted, so
//! the durable history GC removes from memory stays recoverable.
//! Entries truncated by GC additionally spill through
//! [`RetentionPolicy`], keeping them *queryable* without a replay.

use parking_lot::Mutex;

use crate::cdc::ChangeRecord;
use crate::mvcc::Ts;

/// Identifier assigned to every transaction at `begin`.
pub type TxnId = u64;

/// A committed transaction as recorded in the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommittedTxn {
    /// Transaction identifier.
    pub txn_id: TxnId,
    /// Snapshot timestamp the transaction read at.
    pub start_ts: Ts,
    /// Commit timestamp; defines the serial order.
    pub commit_ts: Ts,
    /// Row-level changes, in the order they were applied.
    pub changes: Vec<ChangeRecord>,
}

impl CommittedTxn {
    /// Tables written by this transaction.
    pub fn written_tables(&self) -> Vec<&str> {
        let mut tables: Vec<&str> = self.changes.iter().map(|c| c.table.as_str()).collect();
        tables.sort_unstable();
        tables.dedup();
        tables
    }

    /// True if this transaction wrote the given table.
    pub fn writes_table(&self, table: &str) -> bool {
        self.changes.iter().any(|c| c.table == table)
    }
}

/// A hook invoked when the transaction log truncates aligned history.
///
/// `TxnLog` entries are the aligned cross-store history (relational and
/// `kv:<namespace>` change records share one entry per commit), and
/// [`crate::Database::gc_before`] truncates them together with the row
/// versions they describe. A retention policy receives every entry about
/// to be dropped, *before* it becomes unreachable, so a longer-lived
/// store (e.g. the TROD provenance database) can spill the aligned
/// history and keep debugging reach decoupled from GC pressure. The hook
/// runs under the log lock on the GC path — implementations should only
/// move the entries somewhere, not do heavy work inline.
pub trait RetentionPolicy: Send + Sync {
    /// Called with the entries being truncated, in commit order. Entries
    /// are handed over by value; once this returns they exist nowhere
    /// else.
    fn spill(&self, entries: Vec<CommittedTxn>);
}

/// Append-only, commit-ordered transaction log.
#[derive(Debug, Default)]
pub struct TxnLog {
    entries: Vec<CommittedTxn>,
    /// Highest timestamp ever passed to truncation: entries (and the row
    /// versions GC'd with them) at or below this are gone, so a fork or
    /// time-travel read below it cannot be served from live state alone.
    truncated_below: Ts,
}

impl TxnLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        TxnLog::default()
    }

    /// Appends a committed transaction. Callers must append in commit
    /// order; this is enforced with a debug assertion.
    pub fn append(&mut self, entry: CommittedTxn) {
        debug_assert!(
            self.entries
                .last()
                .map(|prev| prev.commit_ts < entry.commit_ts)
                .unwrap_or(true),
            "transaction log must be appended in commit order"
        );
        self.entries.push(entry);
    }

    /// All entries in commit order.
    pub fn entries(&self) -> &[CommittedTxn] {
        &self.entries
    }

    /// Entries with commit timestamp strictly greater than `ts`.
    pub fn since(&self, ts: Ts) -> Vec<CommittedTxn> {
        // Entries are sorted by commit_ts, binary search for the cut point.
        let start = self.entries.partition_point(|e| e.commit_ts <= ts);
        self.entries[start..].to_vec()
    }

    /// Entries with commit timestamps in `(after, up_to]`.
    pub fn between(&self, after: Ts, up_to: Ts) -> Vec<CommittedTxn> {
        self.entries
            .iter()
            .filter(|e| e.commit_ts > after && e.commit_ts <= up_to)
            .cloned()
            .collect()
    }

    /// Looks up the entry for a transaction id.
    pub fn entry_for(&self, txn_id: TxnId) -> Option<&CommittedTxn> {
        self.entries.iter().find(|e| e.txn_id == txn_id)
    }

    /// Number of committed transactions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has committed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops entries with commit timestamp at or below `ts` (log
    /// truncation after a checkpoint). Returns the number removed.
    /// Drops in place — no allocation; use
    /// [`TxnLog::truncate_before_drain`] when the entries must survive
    /// (retention spilling).
    pub fn truncate_before(&mut self, ts: Ts) -> usize {
        self.truncated_below = self.truncated_below.max(ts);
        let cut = self.entries.partition_point(|e| e.commit_ts <= ts);
        self.entries.drain(0..cut);
        cut
    }

    /// Like [`TxnLog::truncate_before`], but hands the removed entries
    /// back (in commit order) so a [`RetentionPolicy`] can spill them
    /// instead of losing them.
    pub fn truncate_before_drain(&mut self, ts: Ts) -> Vec<CommittedTxn> {
        self.truncated_below = self.truncated_below.max(ts);
        let cut = self.entries.partition_point(|e| e.commit_ts <= ts);
        self.entries.drain(0..cut).collect()
    }

    /// The highest truncation horizon so far: history at or below this
    /// timestamp is no longer in the log (0 if never truncated).
    pub fn truncated_below(&self) -> Ts {
        self.truncated_below
    }
}

/// Number of staging shards in [`LogStaging`]. Power of two so the shard
/// pick is a mask; sized to comfortably exceed the number of commits that
/// can be between "published" and "drained" at once.
const STAGING_SHARDS: usize = 8;

/// Sharded staging buffers between the publication window and the
/// [`TxnLog`].
///
/// Publishers used to append straight into the single `Mutex<TxnLog>`
/// inside the ordered publication window, making that mutex the fan-in
/// point of every commit. Instead, a publisher now pushes its entry into
/// a small per-timestamp shard (uncontended unless two in-flight commits
/// land on the same shard) *before* bumping the published clock; log
/// readers drain the shards back into the `TxnLog` in commit order (see
/// `Database::synced_log`). The observable log — order, contents,
/// truncation floors — is byte-identical to the direct-append scheme.
///
/// Correctness hinges on one happens-before edge: a publisher pushes its
/// entry and *then* stores the clock, so any reader that snapshots the
/// published clock first is guaranteed to find every entry with
/// `commit_ts <=` that snapshot already in a shard. Entries above the
/// snapshot are left staged for a later drain.
#[derive(Debug, Default)]
pub struct LogStaging {
    shards: [Mutex<Vec<CommittedTxn>>; STAGING_SHARDS],
}

impl LogStaging {
    /// Creates empty staging shards.
    pub fn new() -> Self {
        LogStaging::default()
    }

    /// Stages a published entry. Called by the publication window owner
    /// before it bumps the published clock; only shard-local locking.
    pub fn push(&self, entry: CommittedTxn) {
        let shard = (entry.commit_ts as usize) & (STAGING_SHARDS - 1);
        self.shards[shard].lock().push(entry);
    }

    /// Removes and returns every staged entry with
    /// `commit_ts <= published`, sorted by commit timestamp. The caller
    /// must have read `published` from the publication clock *before*
    /// calling (see the type docs) and must serialize drains (the
    /// `TxnLog` lock does) so drained ranges append in order.
    pub fn drain_up_to(&self, published: Ts) -> Vec<CommittedTxn> {
        let mut drained = Vec::new();
        for shard in &self.shards {
            let mut entries = shard.lock();
            let mut i = 0;
            while i < entries.len() {
                if entries[i].commit_ts <= published {
                    drained.push(entries.swap_remove(i));
                } else {
                    i += 1;
                }
            }
        }
        drained.sort_unstable_by_key(|e| e.commit_ts);
        drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdc::ChangeRecord;
    use crate::row;
    use crate::row::Key;

    fn entry(txn_id: TxnId, commit_ts: Ts, table: &str) -> CommittedTxn {
        CommittedTxn {
            txn_id,
            start_ts: commit_ts.saturating_sub(1),
            commit_ts,
            changes: vec![ChangeRecord::insert(
                table,
                Key::single(txn_id as i64),
                row![txn_id as i64],
            )],
        }
    }

    #[test]
    fn append_and_query_ranges() {
        let mut log = TxnLog::new();
        assert!(log.is_empty());
        for (id, ts) in [(1, 5), (2, 8), (3, 12)] {
            log.append(entry(id, ts, "t"));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.since(5).len(), 2);
        assert_eq!(log.since(12).len(), 0);
        assert_eq!(log.between(5, 12).len(), 2);
        assert_eq!(log.between(0, 5).len(), 1);
        assert_eq!(log.entry_for(2).unwrap().commit_ts, 8);
        assert!(log.entry_for(99).is_none());
    }

    #[test]
    fn written_tables_dedups() {
        let mut e = entry(1, 1, "a");
        e.changes
            .push(ChangeRecord::insert("a", Key::single(2i64), row![2i64]));
        e.changes
            .push(ChangeRecord::insert("b", Key::single(3i64), row![3i64]));
        assert_eq!(e.written_tables(), vec!["a", "b"]);
        assert!(e.writes_table("a"));
        assert!(!e.writes_table("c"));
    }

    #[test]
    fn truncation_removes_old_entries() {
        let mut log = TxnLog::new();
        for (id, ts) in [(1, 1), (2, 2), (3, 3), (4, 4)] {
            log.append(entry(id, ts, "t"));
        }
        let removed = log.truncate_before(2);
        assert_eq!(removed, 2);
        assert_eq!(log.len(), 2);
        assert_eq!(log.entries()[0].commit_ts, 3);
        assert_eq!(log.truncated_below(), 2);
    }

    #[test]
    fn truncation_drain_hands_entries_back_in_order() {
        let mut log = TxnLog::new();
        for (id, ts) in [(1, 1), (2, 2), (3, 3)] {
            log.append(entry(id, ts, "t"));
        }
        let drained = log.truncate_before_drain(2);
        assert_eq!(
            drained.iter().map(|e| e.commit_ts).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert_eq!(log.len(), 1);
        // The horizon only ever rises.
        log.truncate_before(1);
        assert_eq!(log.truncated_below(), 2);
    }

    #[test]
    #[should_panic(expected = "commit order")]
    #[cfg(debug_assertions)]
    fn out_of_order_append_panics_in_debug() {
        let mut log = TxnLog::new();
        log.append(entry(1, 10, "t"));
        log.append(entry(2, 5, "t"));
    }
}
