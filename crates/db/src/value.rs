//! Typed values stored in table cells.
//!
//! The engine is dynamically typed at the row level but every column has a
//! declared [`DataType`]; inserts and updates are validated against the
//! schema. `Value` provides a total order (needed for sorting and index
//! range scans) and a stable hash (needed for hash joins and secondary
//! indexes), including for floating-point values.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// The declared type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Bool,
    Int,
    Float,
    Text,
    Bytes,
    /// Microseconds since an arbitrary epoch; used for trace timestamps.
    Timestamp,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "BOOL",
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
            DataType::Bytes => "BYTES",
            DataType::Timestamp => "TIMESTAMP",
        };
        f.write_str(s)
    }
}

/// A single cell value.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Text(String),
    Bytes(Vec<u8>),
    Timestamp(i64),
}

impl Value {
    /// Returns the value's data type, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Bytes(_) => Some(DataType::Bytes),
            Value::Timestamp(_) => Some(DataType::Timestamp),
        }
    }

    /// True if the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Checks that the value can be stored in a column of type `dtype`.
    ///
    /// Integers are accepted for TIMESTAMP columns (and vice versa) because
    /// the trace layer treats timestamps as plain integers.
    pub fn conforms_to(&self, dtype: DataType) -> bool {
        matches!(
            (self, dtype),
            (Value::Null, _)
                | (Value::Bool(_), DataType::Bool)
                | (Value::Int(_), DataType::Int)
                | (Value::Int(_), DataType::Timestamp)
                | (Value::Float(_), DataType::Float)
                | (Value::Text(_), DataType::Text)
                | (Value::Bytes(_), DataType::Bytes)
                | (Value::Timestamp(_), DataType::Timestamp)
                | (Value::Timestamp(_), DataType::Int)
        )
    }

    /// Extracts an integer, treating TIMESTAMP as INT.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) | Value::Timestamp(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts a float; integers widen losslessly within `f64` range.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) | Value::Timestamp(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Extracts a string slice.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Extracts a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric rank used to order values of different types. NULL sorts
    /// first, then booleans, then numbers, then text, bytes, timestamps.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) | Value::Timestamp(_) => 2,
            Value::Text(_) => 3,
            Value::Bytes(_) => 4,
        }
    }

    /// Compares two values as SQL would for ordering purposes: numbers
    /// compare numerically across INT/FLOAT/TIMESTAMP; otherwise values of
    /// different types order by type rank.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Text(a), Text(b)) => a.cmp(b),
            (Bytes(a), Bytes(b)) => a.cmp(b),
            (a, b) => {
                let (ra, rb) = (a.type_rank(), b.type_rank());
                if ra == 2 && rb == 2 {
                    let fa = a.as_float().unwrap_or(f64::NAN);
                    let fb = b.as_float().unwrap_or(f64::NAN);
                    fa.total_cmp(&fb)
                } else {
                    ra.cmp(&rb)
                }
            }
        }
    }

    /// SQL-style equality: numbers compare numerically across numeric
    /// types; NULL equals nothing (including NULL) — use
    /// [`Value::total_cmp`] when three-valued logic is not wanted.
    pub fn sql_eq(&self, other: &Value) -> bool {
        if self.is_null() || other.is_null() {
            return false;
        }
        self.total_cmp(other) == Ordering::Equal
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Numeric values hash identically when numerically equal so
            // that Int(1), Timestamp(1) and Float(1.0) land in the same
            // hash bucket, matching `total_cmp` equality.
            Value::Int(_) | Value::Float(_) | Value::Timestamp(_) => {
                2u8.hash(state);
                let f = self.as_float().unwrap_or(f64::NAN);
                f.to_bits().hash(state);
            }
            Value::Text(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Value::Bytes(b) => {
                4u8.hash(state);
                b.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Bytes(b) => write!(f, "0x{}", hex(b)),
            Value::Timestamp(v) => write!(f, "{v}"),
        }
    }
}

fn hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn conforms_to_matches_types() {
        assert!(Value::Int(1).conforms_to(DataType::Int));
        assert!(Value::Int(1).conforms_to(DataType::Timestamp));
        assert!(Value::Timestamp(1).conforms_to(DataType::Int));
        assert!(Value::Null.conforms_to(DataType::Text));
        assert!(!Value::Text("x".into()).conforms_to(DataType::Int));
        assert!(!Value::Bool(true).conforms_to(DataType::Float));
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_eq!(Value::Int(7), Value::Timestamp(7));
        assert_ne!(Value::Int(3), Value::Float(3.5));
        assert_eq!(hash_of(&Value::Int(3)), hash_of(&Value::Float(3.0)));
    }

    #[test]
    fn sql_eq_null_semantics() {
        assert!(!Value::Null.sql_eq(&Value::Null));
        assert!(!Value::Null.sql_eq(&Value::Int(1)));
        assert!(Value::Int(1).sql_eq(&Value::Int(1)));
    }

    #[test]
    fn ordering_is_total_and_type_ranked() {
        let mut vals = [
            Value::Text("b".into()),
            Value::Int(10),
            Value::Null,
            Value::Bool(true),
            Value::Float(2.5),
            Value::Text("a".into()),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[2], Value::Float(2.5));
        assert_eq!(vals[3], Value::Int(10));
        assert_eq!(vals[4], Value::Text("a".into()));
        assert_eq!(vals[5], Value::Text("b".into()));
    }

    #[test]
    fn nan_ordering_is_stable() {
        // total_cmp must not panic or produce inconsistent ordering.
        let a = Value::Float(f64::NAN);
        let b = Value::Float(1.0);
        let _ = a.total_cmp(&b);
        assert_eq!(a.total_cmp(&a), Ordering::Equal);
    }

    #[test]
    fn conversions_from_rust_types() {
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from("hi"), Value::Text("hi".into()));
        assert_eq!(Value::from(Some(2i64)), Value::Int(2));
        assert_eq!(Value::from(Option::<i64>::None), Value::Null);
        assert_eq!(Value::from(true), Value::Bool(true));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Bytes(vec![0xab, 0x01]).to_string(), "0xab01");
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(4).as_int(), Some(4));
        assert_eq!(Value::Timestamp(4).as_int(), Some(4));
        assert_eq!(Value::Text("x".into()).as_text(), Some("x"));
        assert_eq!(Value::Bool(false).as_bool(), Some(false));
        assert_eq!(Value::Int(2).as_float(), Some(2.0));
        assert_eq!(Value::Text("x".into()).as_int(), None);
    }
}
