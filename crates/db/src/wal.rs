//! The durable write-ahead log: group commit, checksummed recovery and
//! crash-point fault injection.
//!
//! The aligned transaction log ([`crate::log::TxnLog`]) *is* the recovery
//! log: every committed transaction is one [`CommittedTxn`] entry whose
//! change records span the relational tables and the `kv:<namespace>`
//! participants. The WAL streams each entry (and each DDL statement) into
//! an append-only segment file as a length-prefixed, CRC-checksummed
//! record, so reopening the file and replaying the records rebuilds the
//! whole environment — state *and* aligned history — exactly as it was at
//! the last durable commit.
//!
//! # Record format
//!
//! ```text
//! [payload_len: u32 LE][payload_crc32: u32 LE][header_crc32: u32 LE][payload]
//! ```
//!
//! `header_crc32` covers the first 8 header bytes, so a torn header is
//! distinguishable from a valid header whose payload is missing. The
//! payload starts with a record tag ([`WalRecord`]); all integers are
//! little-endian, strings are length-prefixed UTF-8. The CRC is the
//! hand-rolled IEEE polynomial ([`crc32`]) — no external dependency.
//!
//! # Group commit
//!
//! [`Wal::append_record`] only memcpys the framed record into an
//! in-process buffer under a mutex — it is called inside the commit
//! protocol's ordered publication window, which makes the WAL byte order
//! identical to the commit order. [`Wal::sync_to`] runs *after* the
//! committer dropped its footprint locks: the first waiter whose bytes
//! are not yet durable becomes the **leader**, takes the sink and the
//! whole pending buffer, and performs one write + one fsync for every
//! commit that landed in the buffer meanwhile — one fsync amortized
//! across the group, so durable throughput scales with batch size instead
//! of being 1/fsync flat. Followers sleep on a condvar until the durable
//! watermark covers their LSN.
//!
//! A failed group write/fsync fails **only the commits in that group**
//! (`last_fail` records the covered end offset); their bytes stay queued
//! at the front of the buffer — the log must remain a commit-order
//! prefix — and the next leader repairs the sink (truncate to the last
//! confirmed offset) and retries them together with its own group. The
//! commit path is never poisoned: once the sink recovers, subsequent
//! groups proceed.
//!
//! # Torn-tail rule
//!
//! On open, records are validated in sequence. A record that fails at the
//! *end* of the file — truncated header, truncated payload, or a checksum
//! mismatch with no valid record anywhere after it — is a **torn tail**:
//! the file is truncated back to the last valid record and recovery
//! proceeds (an unacknowledged commit died mid-write; losing it is
//! correct). A damaged record with provably valid records *after* it is
//! **corruption**: truncating would silently drop acknowledged commits,
//! so recovery refuses with [`StorageError::Corrupt`] — never a panic,
//! never a silently wrong state.
//!
//! # Fault injection
//!
//! [`FailpointSink`] wraps any sink and injects faults at exact points:
//! IO errors on the next N appends or fsyncs, a short write at the Nth
//! byte, or a "crash" at the Nth byte (all later bytes silently dropped
//! while reporting success — the kernel-never-persisted-the-tail case).
//! [`MemSink`] captures the raw byte stream so property tests can
//! materialize *every* crash prefix of a workload from one run.

use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek, SeekFrom, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::cdc::{ChangeOp, ChangeRecord};
use crate::error::StorageError;
use crate::log::CommittedTxn;
use crate::row::{Key, Row};
use crate::schema::{Column, Schema};
use crate::value::{DataType, Value};

/// How far [`Wal::sync_to`] pushes a group before acknowledging it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncMode {
    /// Write + fsync: acknowledged commits survive power loss.
    #[default]
    Sync,
    /// Write to the OS, no fsync: acknowledged commits survive a process
    /// crash but not power loss.
    Flush,
    /// Buffer in process; bytes reach the OS only when the buffer fills
    /// or [`Wal::flush`] is called. Fastest, weakest: a crash loses the
    /// buffered tail.
    Cached,
}

/// Configuration for a [`Wal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalOptions {
    pub sync_mode: SyncMode,
    /// `true` (default): one leader syncs the whole pending buffer per
    /// group. `false`: the commit protocol syncs each commit inside its
    /// publication window — the serial-fsync baseline benchmarks compare
    /// against.
    pub group_commit: bool,
    /// Size bound at which a [`crate::segment::SegmentedWal`] rolls its
    /// active segment (checked after each group sync, so a segment can
    /// overshoot by one group). `0` disables rotation — the log stays a
    /// single ever-growing segment, the pre-segmentation behaviour.
    pub segment_bytes: u64,
    /// Bytes of new WAL appends after which the database takes the next
    /// environment checkpoint (on the post-ack path, outside the
    /// publication window). `0` disables automatic checkpoints; explicit
    /// [`crate::Database::checkpoint`] calls still work.
    pub checkpoint_bytes: u64,
}

/// Default [`WalOptions::segment_bytes`]: 64 MiB.
pub const DEFAULT_SEGMENT_BYTES: u64 = 64 << 20;

/// Default [`WalOptions::checkpoint_bytes`]: 64 MiB of appended WAL
/// bytes between automatic environment checkpoints.
pub const DEFAULT_CHECKPOINT_BYTES: u64 = 64 << 20;

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            sync_mode: SyncMode::Sync,
            group_commit: true,
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            checkpoint_bytes: DEFAULT_CHECKPOINT_BYTES,
        }
    }
}

impl WalOptions {
    pub fn with_sync_mode(mode: SyncMode) -> Self {
        WalOptions {
            sync_mode: mode,
            ..Default::default()
        }
    }
}

// ---------------------------------------------------------------------
// CRC32 (IEEE), hand-rolled — the container has no crc crate.
// ---------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE 802.3, reflected) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Records and their binary codec
// ---------------------------------------------------------------------

/// One durable log record: a committed transaction (the aligned history
/// entry, verbatim — including `kv:` participant records) or a DDL
/// statement, so recovery can rebuild the catalog before replaying the
/// commits that use it.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// One committed transaction — one aligned history entry.
    Commit(CommittedTxn),
    /// A table was created with this schema.
    CreateTable { name: String, schema: Schema },
    /// A secondary index was created (`ranged` = ordered range index).
    CreateIndex {
        table: String,
        column: String,
        ranged: bool,
    },
    /// A key-value namespace was created.
    CreateNamespace { name: String },
}

const TAG_COMMIT: u8 = 1;
const TAG_CREATE_TABLE: u8 = 2;
const TAG_CREATE_INDEX: u8 = 3;
const TAG_CREATE_NAMESPACE: u8 = 4;

/// Frame header size: payload length + payload CRC + header CRC.
pub const FRAME_HEADER_LEN: usize = 12;
/// Upper bound on a single record's payload; a valid header advertising
/// more is treated as damage, not as an allocation request.
const MAX_RECORD_LEN: u32 = 1 << 28;

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

pub(crate) fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(*b as u8);
        }
        Value::Int(i) => {
            out.push(2);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(3);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Text(s) => {
            out.push(4);
            put_str(out, s);
        }
        Value::Bytes(b) => {
            out.push(5);
            put_u32(out, b.len() as u32);
            out.extend_from_slice(b);
        }
        Value::Timestamp(t) => {
            out.push(6);
            out.extend_from_slice(&t.to_le_bytes());
        }
    }
}

pub(crate) fn put_values(out: &mut Vec<u8>, values: &[Value]) {
    put_u32(out, values.len() as u32);
    for v in values {
        put_value(out, v);
    }
}

fn put_change(out: &mut Vec<u8>, change: &ChangeRecord) {
    put_str(out, &change.table);
    put_values(out, change.key.values());
    match &change.op {
        ChangeOp::Insert { after } => {
            out.push(0);
            put_values(out, after.values());
        }
        ChangeOp::Update { before, after } => {
            out.push(1);
            put_values(out, before.values());
            put_values(out, after.values());
        }
        ChangeOp::Delete { before } => {
            out.push(2);
            put_values(out, before.values());
        }
    }
}

pub(crate) fn dtype_tag(d: DataType) -> u8 {
    match d {
        DataType::Bool => 0,
        DataType::Int => 1,
        DataType::Float => 2,
        DataType::Text => 3,
        DataType::Bytes => 4,
        DataType::Timestamp => 5,
    }
}

fn encode_payload(record: &WalRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    match record {
        WalRecord::Commit(entry) => {
            out.push(TAG_COMMIT);
            put_u64(&mut out, entry.txn_id);
            put_u64(&mut out, entry.start_ts);
            put_u64(&mut out, entry.commit_ts);
            put_u32(&mut out, entry.changes.len() as u32);
            for change in &entry.changes {
                put_change(&mut out, change);
            }
        }
        WalRecord::CreateTable { name, schema } => {
            out.push(TAG_CREATE_TABLE);
            put_str(&mut out, name);
            put_u32(&mut out, schema.columns().len() as u32);
            for col in schema.columns() {
                put_str(&mut out, &col.name);
                out.push(dtype_tag(col.dtype));
                out.push(col.nullable as u8);
            }
            // Primary key as column names, so the schema round-trips
            // through its public constructor.
            put_u32(&mut out, schema.primary_key().len() as u32);
            for &idx in schema.primary_key() {
                put_str(&mut out, &schema.columns()[idx].name);
            }
        }
        WalRecord::CreateIndex {
            table,
            column,
            ranged,
        } => {
            out.push(TAG_CREATE_INDEX);
            put_str(&mut out, table);
            put_str(&mut out, column);
            out.push(*ranged as u8);
        }
        WalRecord::CreateNamespace { name } => {
            out.push(TAG_CREATE_NAMESPACE);
            put_str(&mut out, name);
        }
    }
    out
}

/// Encodes one record as a complete frame (header + payload) — the exact
/// bytes [`Wal::append_record`] appends. Exposed so tests can compute
/// record boundaries of a captured byte stream.
pub fn encode_frame(record: &WalRecord) -> Vec<u8> {
    let payload = encode_payload(record);
    let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    put_u32(&mut frame, payload.len() as u32);
    put_u32(&mut frame, crc32(&payload));
    let hdr_crc = crc32(&frame[0..8]);
    put_u32(&mut frame, hdr_crc);
    frame.extend_from_slice(&payload);
    frame
}

// Bounds-checked reader: every decode failure is a `String` detail the
// caller wraps into a typed error — malformed bytes can never panic.
// Shared with the MANIFEST codec in `crate::segment`.
pub(crate) struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.data.len() - self.pos < n {
            return Err(format!(
                "record payload truncated: wanted {n} bytes at {}, have {}",
                self.pos,
                self.data.len() - self.pos
            ));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, String> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn str(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "invalid UTF-8 in string".to_string())
    }

    pub(crate) fn value(&mut self) -> Result<Value, String> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Bool(self.u8()? != 0),
            2 => Value::Int(self.i64()?),
            3 => Value::Float(f64::from_bits(self.u64()?)),
            4 => Value::Text(self.str()?),
            5 => {
                let len = self.u32()? as usize;
                Value::Bytes(self.take(len)?.to_vec())
            }
            6 => Value::Timestamp(self.i64()?),
            t => return Err(format!("unknown value tag {t}")),
        })
    }

    pub(crate) fn values(&mut self) -> Result<Vec<Value>, String> {
        let n = self.u32()? as usize;
        if n > self.data.len() - self.pos {
            // Each value is at least one byte; reject absurd counts
            // before reserving.
            return Err(format!("value count {n} exceeds remaining payload"));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.value()?);
        }
        Ok(out)
    }

    fn change(&mut self) -> Result<ChangeRecord, String> {
        let table = self.str()?;
        let key = Key::from(self.values()?);
        let op = match self.u8()? {
            0 => ChangeOp::Insert {
                after: Arc::new(Row::from(self.values()?)),
            },
            1 => ChangeOp::Update {
                before: Arc::new(Row::from(self.values()?)),
                after: Arc::new(Row::from(self.values()?)),
            },
            2 => ChangeOp::Delete {
                before: Arc::new(Row::from(self.values()?)),
            },
            t => return Err(format!("unknown change-op tag {t}")),
        };
        Ok(ChangeRecord { table, key, op })
    }

    pub(crate) fn dtype(&mut self) -> Result<DataType, String> {
        Ok(match self.u8()? {
            0 => DataType::Bool,
            1 => DataType::Int,
            2 => DataType::Float,
            3 => DataType::Text,
            4 => DataType::Bytes,
            5 => DataType::Timestamp,
            t => return Err(format!("unknown data-type tag {t}")),
        })
    }
}

fn decode_payload(payload: &[u8]) -> Result<WalRecord, String> {
    let mut c = Cursor::new(payload);
    let record = match c.u8()? {
        TAG_COMMIT => {
            let txn_id = c.u64()?;
            let start_ts = c.u64()?;
            let commit_ts = c.u64()?;
            let n = c.u32()? as usize;
            if n > payload.len() {
                return Err(format!("change count {n} exceeds payload"));
            }
            let mut changes = Vec::with_capacity(n);
            for _ in 0..n {
                changes.push(c.change()?);
            }
            WalRecord::Commit(CommittedTxn {
                txn_id,
                start_ts,
                commit_ts,
                changes,
            })
        }
        TAG_CREATE_TABLE => {
            let name = c.str()?;
            let ncols = c.u32()? as usize;
            if ncols > payload.len() {
                return Err(format!("column count {ncols} exceeds payload"));
            }
            let mut columns = Vec::with_capacity(ncols);
            for _ in 0..ncols {
                let col_name = c.str()?;
                let dtype = c.dtype()?;
                let nullable = c.u8()? != 0;
                columns.push(if nullable {
                    Column::nullable(col_name, dtype)
                } else {
                    Column::new(col_name, dtype)
                });
            }
            let npk = c.u32()? as usize;
            if npk > payload.len() {
                return Err(format!("primary-key count {npk} exceeds payload"));
            }
            let mut pk = Vec::with_capacity(npk);
            for _ in 0..npk {
                pk.push(c.str()?);
            }
            let pk_refs: Vec<&str> = pk.iter().map(String::as_str).collect();
            let schema =
                Schema::new(columns, &pk_refs).map_err(|e| format!("invalid schema: {e}"))?;
            WalRecord::CreateTable { name, schema }
        }
        TAG_CREATE_INDEX => WalRecord::CreateIndex {
            table: c.str()?,
            column: c.str()?,
            ranged: c.u8()? != 0,
        },
        TAG_CREATE_NAMESPACE => WalRecord::CreateNamespace { name: c.str()? },
        t => return Err(format!("unknown record tag {t}")),
    };
    if c.pos != payload.len() {
        return Err(format!(
            "{} trailing bytes after record payload",
            payload.len() - c.pos
        ));
    }
    Ok(record)
}

// ---------------------------------------------------------------------
// Recovery: frame validation and the torn-tail rule
// ---------------------------------------------------------------------

/// What recovery found in a log file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// Bytes of valid log consumed (the repaired file length).
    pub valid_len: u64,
    /// Bytes discarded as a torn tail (0 for a clean log).
    pub truncated_bytes: u64,
}

/// What a full environment replay (`Database::open_durable` /
/// `Session::open_durable`) rebuilt from the log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Committed transactions replayed.
    pub commits: usize,
    /// Tables re-created from DDL records.
    pub tables: usize,
    /// Secondary/range indexes re-created from DDL records.
    pub indexes: usize,
    /// Key-value namespaces re-created from DDL records.
    pub namespaces: Vec<String>,
    /// Key-value writes re-installed while replaying commits.
    pub kv_writes_replayed: usize,
    /// Bytes discarded as a torn tail before replay began.
    pub truncated_bytes: u64,
    /// Segment files the recovery walked (sealed + active; 1 for a
    /// single-segment log).
    pub segments: usize,
    /// Immutable cold files replayed before the segments.
    pub cold_files: usize,
    /// Timestamp of the checkpoint this boot restored from, if any —
    /// `Some(ts)` means only WAL records after `ts` were replayed.
    pub checkpoint_ts: Option<crate::mvcc::Ts>,
    /// Checkpoints that failed validation before a usable one was found
    /// (each fell back to the next older one, or to full replay).
    pub checkpoint_fallbacks: usize,
    /// Cold/sealed files recovery skipped entirely because every commit
    /// in them preceded the checkpoint.
    pub skipped_files: usize,
}

enum Parse {
    Record(WalRecord, usize),
    CleanEnd,
    /// Structurally incomplete or checksum-damaged at this offset; the
    /// caller decides torn-tail vs corruption.
    Damaged(String),
}

fn parse_one(data: &[u8], pos: usize) -> Parse {
    let remaining = data.len() - pos;
    if remaining == 0 {
        return Parse::CleanEnd;
    }
    if remaining < FRAME_HEADER_LEN {
        return Parse::Damaged(format!("truncated header ({remaining} bytes)"));
    }
    let hdr = &data[pos..pos + FRAME_HEADER_LEN];
    let stored_hdr_crc = u32::from_le_bytes(hdr[8..12].try_into().unwrap());
    if crc32(&hdr[0..8]) != stored_hdr_crc {
        return Parse::Damaged("header checksum mismatch".to_string());
    }
    let len = u32::from_le_bytes(hdr[0..4].try_into().unwrap());
    if len > MAX_RECORD_LEN {
        return Parse::Damaged(format!("record length {len} exceeds maximum"));
    }
    let len = len as usize;
    if remaining < FRAME_HEADER_LEN + len {
        return Parse::Damaged(format!(
            "truncated payload ({} of {len} bytes)",
            remaining - FRAME_HEADER_LEN
        ));
    }
    let payload = &data[pos + FRAME_HEADER_LEN..pos + FRAME_HEADER_LEN + len];
    let stored_payload_crc = u32::from_le_bytes(hdr[4..8].try_into().unwrap());
    if crc32(payload) != stored_payload_crc {
        return Parse::Damaged("payload checksum mismatch".to_string());
    }
    match decode_payload(payload) {
        Ok(record) => Parse::Record(record, pos + FRAME_HEADER_LEN + len),
        Err(detail) => Parse::Damaged(format!("undecodable record: {detail}")),
    }
}

/// True if a complete, valid chain of ≥1 records runs from `pos` to EOF.
fn chain_is_clean(data: &[u8], pos: usize) -> bool {
    let mut at = pos;
    let mut any = false;
    loop {
        match parse_one(data, at) {
            Parse::Record(_, next) => {
                any = true;
                at = next;
            }
            Parse::CleanEnd => return any,
            Parse::Damaged(_) => return false,
        }
    }
}

/// Validates and decodes a log byte stream, applying the torn-tail rule
/// (module docs): damage at the tail truncates, damage followed by valid
/// records is a typed [`StorageError::Corrupt`].
pub fn decode_records(data: &[u8]) -> Result<(Vec<WalRecord>, RecoveryInfo), StorageError> {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        match parse_one(data, pos) {
            Parse::Record(record, next) => {
                records.push(record);
                pos = next;
            }
            Parse::CleanEnd => {
                return Ok((
                    records,
                    RecoveryInfo {
                        valid_len: pos as u64,
                        truncated_bytes: 0,
                    },
                ));
            }
            Parse::Damaged(detail) => {
                // Resync scan: if any later offset starts a valid chain
                // of records running to EOF, the damage is mid-file
                // corruption — truncating here would drop acknowledged
                // commits. A damaged region extending to EOF is a torn
                // tail. The cheap header-CRC check gates the expensive
                // chain walk.
                let resync_found =
                    (pos + 1..data.len().saturating_sub(FRAME_HEADER_LEN - 1)).any(|cand| {
                        let hdr = &data[cand..cand + FRAME_HEADER_LEN];
                        let stored = u32::from_le_bytes(hdr[8..12].try_into().unwrap());
                        crc32(&hdr[0..8]) == stored && chain_is_clean(data, cand)
                    });
                if resync_found {
                    return Err(StorageError::Corrupt {
                        offset: pos as u64,
                        detail,
                    });
                }
                return Ok((
                    records,
                    RecoveryInfo {
                        valid_len: pos as u64,
                        truncated_bytes: (data.len() - pos) as u64,
                    },
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------

/// Where WAL bytes go. Implementations must append `write_all` bytes at
/// the end and support truncating back to a known-good length (repair
/// after a failed group write).
pub trait WalSink: Send {
    fn write_all(&mut self, bytes: &[u8]) -> Result<(), StorageError>;
    /// Durably persist everything written so far (fsync).
    fn sync(&mut self) -> Result<(), StorageError>;
    /// Truncate back to `len` bytes, discarding a partial write.
    fn truncate_to(&mut self, len: u64) -> Result<(), StorageError>;
}

/// A real file.
pub struct FileSink {
    file: File,
}

impl FileSink {
    pub fn new(file: File) -> Self {
        FileSink { file }
    }
}

impl WalSink for FileSink {
    fn write_all(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        self.file.write_all(bytes).map_err(|e| StorageError::Io {
            op: "append",
            detail: e.to_string(),
        })
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        self.file.sync_data().map_err(|e| StorageError::Io {
            op: "sync",
            detail: e.to_string(),
        })
    }

    fn truncate_to(&mut self, len: u64) -> Result<(), StorageError> {
        self.file
            .set_len(len)
            .and_then(|()| self.file.seek(SeekFrom::Start(len)).map(|_| ()))
            .map_err(|e| StorageError::Io {
                op: "truncate",
                detail: e.to_string(),
            })
    }
}

/// An in-memory sink; the shared handle exposes the exact byte stream a
/// file would contain, so tests can cut crash prefixes from one run.
pub struct MemSink {
    data: Arc<Mutex<Vec<u8>>>,
}

impl MemSink {
    pub fn new() -> Self {
        MemSink {
            data: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// The shared byte stream (what "the file" contains).
    pub fn contents(&self) -> Arc<Mutex<Vec<u8>>> {
        self.data.clone()
    }
}

impl Default for MemSink {
    fn default() -> Self {
        MemSink::new()
    }
}

impl WalSink for MemSink {
    fn write_all(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        self.data.lock().extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        Ok(())
    }

    fn truncate_to(&mut self, len: u64) -> Result<(), StorageError> {
        self.data.lock().truncate(len as usize);
        Ok(())
    }
}

#[derive(Debug, Default)]
struct Failpoints {
    fail_appends: usize,
    fail_syncs: usize,
    short_write_at: Option<u64>,
    crash_at: Option<u64>,
}

/// Shared control handle for a [`FailpointSink`]; settable while the WAL
/// is live, so tests inject faults at exact moments.
#[derive(Clone, Default)]
pub struct FailpointHandle {
    inner: Arc<Mutex<Failpoints>>,
}

impl FailpointHandle {
    pub fn new() -> Self {
        FailpointHandle::default()
    }

    /// Fail the next `n` append (write) calls with an injected IO error.
    pub fn fail_appends(&self, n: usize) {
        self.inner.lock().fail_appends = n;
    }

    /// Fail the next `n` sync (fsync) calls with an injected IO error.
    pub fn fail_syncs(&self, n: usize) {
        self.inner.lock().fail_syncs = n;
    }

    /// The write crossing total byte `offset` persists only up to it and
    /// reports an error (a short write / full disk).
    pub fn short_write_at(&self, offset: u64) {
        self.inner.lock().short_write_at = Some(offset);
    }

    /// Silently stop persisting at total byte `offset` while reporting
    /// success — the crash where the page cache never reached the disk.
    pub fn crash_at(&self, offset: u64) {
        self.inner.lock().crash_at = Some(offset);
    }

    /// Clears every failpoint (the sink "recovers").
    pub fn clear(&self) {
        *self.inner.lock() = Failpoints::default();
    }
}

/// A sink wrapper that injects faults per its [`FailpointHandle`] — the
/// crash-point fault-injection layer of the robustness tests.
pub struct FailpointSink<S: WalSink> {
    inner: S,
    points: FailpointHandle,
    /// Total bytes the caller has asked to write (not necessarily
    /// persisted — crash/short-write points count against this).
    offset: u64,
}

impl<S: WalSink> FailpointSink<S> {
    pub fn new(inner: S, points: FailpointHandle) -> Self {
        FailpointSink {
            inner,
            points,
            offset: 0,
        }
    }
}

impl<S: WalSink> WalSink for FailpointSink<S> {
    fn write_all(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        let (fail, short_at, crash_at) = {
            let mut p = self.points.inner.lock();
            let fail = if p.fail_appends > 0 {
                p.fail_appends -= 1;
                true
            } else {
                false
            };
            (fail, p.short_write_at, p.crash_at)
        };
        if fail {
            return Err(StorageError::Io {
                op: "append",
                detail: "injected append failure".to_string(),
            });
        }
        if let Some(limit) = crash_at {
            // Persist only what fits below the crash point, but report
            // success for everything.
            let keep = limit.saturating_sub(self.offset).min(bytes.len() as u64) as usize;
            if keep > 0 {
                self.inner.write_all(&bytes[..keep])?;
            }
            self.offset += bytes.len() as u64;
            return Ok(());
        }
        if let Some(limit) = short_at {
            if self.offset + bytes.len() as u64 > limit {
                let keep = limit.saturating_sub(self.offset) as usize;
                if keep > 0 {
                    self.inner.write_all(&bytes[..keep])?;
                }
                self.offset += keep as u64;
                return Err(StorageError::Io {
                    op: "append",
                    detail: format!("injected short write at byte {limit}"),
                });
            }
        }
        self.inner.write_all(bytes)?;
        self.offset += bytes.len() as u64;
        Ok(())
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        {
            let mut p = self.points.inner.lock();
            if p.fail_syncs > 0 {
                p.fail_syncs -= 1;
                return Err(StorageError::Io {
                    op: "sync",
                    detail: "injected sync failure".to_string(),
                });
            }
        }
        self.inner.sync()
    }

    fn truncate_to(&mut self, len: u64) -> Result<(), StorageError> {
        self.inner.truncate_to(len)?;
        self.offset = len;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// The WAL itself: buffered appends, leader-based group sync
// ---------------------------------------------------------------------

/// Flush threshold for [`SyncMode::Cached`]: appends push buffered bytes
/// to the sink (without fsync) once the buffer crosses this.
const CACHED_FLUSH_BYTES: usize = 64 * 1024;

struct WalState {
    /// `None` while a leader holds the sink for a group write.
    sink: Option<Box<dyn WalSink>>,
    /// Framed bytes accepted but not yet confirmed at the sink:
    /// exactly the byte range `[durable, appended)` (minus any batch a
    /// leader currently holds).
    buf: Vec<u8>,
    /// Logical end offset: every byte ever accepted by `append_record`.
    appended: u64,
    /// Offset up to which bytes are confirmed per the sync mode.
    durable: u64,
    /// A failed group: `(covered_end, error)` — every waiter with
    /// `lsn <= covered_end` reports the error; later groups retry the
    /// bytes and clear this once `durable` passes `covered_end`.
    last_fail: Option<(u64, StorageError)>,
    /// The sink may hold a partial write past `durable`; the next leader
    /// truncates back before writing.
    need_repair: bool,
}

/// The group-commit write-ahead log (module docs). Cheap to share:
/// appends are a memcpy under a mutex; syncs elect a leader per group.
pub struct Wal {
    state: Mutex<WalState>,
    cv: Condvar,
    mode: SyncMode,
    group: AtomicBool,
    /// Threads currently inside [`Wal::sync_to`]. The group leader opens
    /// a short batching window only when this shows other committers in
    /// flight — a lone commit never pays the window's latency.
    sync_waiters: AtomicUsize,
}

impl Wal {
    /// Wraps an arbitrary sink (tests: [`MemSink`], [`FailpointSink`]).
    /// The sink is assumed empty; the log starts at offset 0.
    pub fn with_sink(sink: Box<dyn WalSink>, opts: WalOptions) -> Arc<Wal> {
        Wal::with_sink_at(sink, 0, opts)
    }

    pub(crate) fn with_sink_at(sink: Box<dyn WalSink>, offset: u64, opts: WalOptions) -> Arc<Wal> {
        Arc::new(Wal {
            state: Mutex::new(WalState {
                sink: Some(sink),
                buf: Vec::new(),
                appended: offset,
                durable: offset,
                last_fail: None,
                need_repair: false,
            }),
            cv: Condvar::new(),
            mode: opts.sync_mode,
            group: AtomicBool::new(opts.group_commit),
            sync_waiters: AtomicUsize::new(0),
        })
    }

    /// Creates (truncating) a log file.
    pub fn create(path: impl AsRef<Path>, opts: WalOptions) -> Result<Arc<Wal>, StorageError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| StorageError::Io {
                op: "open",
                detail: e.to_string(),
            })?;
        Ok(Wal::with_sink(Box::new(FileSink::new(file)), opts))
    }

    /// Opens (creating if absent) a log file: validates every record,
    /// truncates a torn tail back to the last valid checksum, and returns
    /// the decoded records together with a WAL positioned at the repaired
    /// end. Mid-file corruption is refused with a typed error.
    pub fn open(
        path: impl AsRef<Path>,
        opts: WalOptions,
    ) -> Result<(Arc<Wal>, Vec<WalRecord>, RecoveryInfo), StorageError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| StorageError::Io {
                op: "open",
                detail: e.to_string(),
            })?;
        let mut data = Vec::new();
        file.read_to_end(&mut data).map_err(|e| StorageError::Io {
            op: "read",
            detail: e.to_string(),
        })?;
        let (records, info) = decode_records(&data)?;
        let mut sink = FileSink::new(file);
        if info.truncated_bytes > 0 {
            sink.truncate_to(info.valid_len)?;
        } else {
            sink.truncate_to(info.valid_len)?; // also positions at end
        }
        Ok((
            Wal::with_sink_at(Box::new(sink), info.valid_len, opts),
            records,
            info,
        ))
    }

    /// The configured sync mode.
    pub fn sync_mode(&self) -> SyncMode {
        self.mode
    }

    /// True when group commit is enabled (the default).
    pub fn group_commit(&self) -> bool {
        self.group.load(Ordering::SeqCst)
    }

    /// Toggles group commit; `false` makes the commit protocol sync each
    /// commit inside its publication window (serial-fsync baseline).
    pub fn set_group_commit(&self, on: bool) {
        self.group.store(on, Ordering::SeqCst);
    }

    /// Logical end offset of the log (bytes accepted so far).
    pub fn appended(&self) -> u64 {
        self.state.lock().appended
    }

    /// Offset up to which the log is confirmed per the sync mode.
    pub fn durable(&self) -> u64 {
        self.state.lock().durable
    }

    /// Appends one framed record to the in-process buffer and returns its
    /// end offset (the LSN to pass to [`Wal::sync_to`]). Called inside
    /// the publication window, so buffer order == commit order; the only
    /// IO here is the opportunistic [`SyncMode::Cached`] spill.
    pub fn append_record(&self, record: &WalRecord) -> Result<u64, StorageError> {
        self.append_frame(encode_frame(record))
    }

    /// [`Wal::append_record`] for a committed transaction.
    pub fn append_entry(&self, entry: &CommittedTxn) -> Result<u64, StorageError> {
        // Frame built outside the lock; cloning the entry is avoided by
        // encoding through a borrowed `WalRecord` would require one — so
        // encode the commit payload directly.
        let payload = {
            let mut out = Vec::with_capacity(64);
            out.push(TAG_COMMIT);
            put_u64(&mut out, entry.txn_id);
            put_u64(&mut out, entry.start_ts);
            put_u64(&mut out, entry.commit_ts);
            put_u32(&mut out, entry.changes.len() as u32);
            for change in &entry.changes {
                put_change(&mut out, change);
            }
            out
        };
        let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(&payload));
        let hdr_crc = crc32(&frame[0..8]);
        put_u32(&mut frame, hdr_crc);
        frame.extend_from_slice(&payload);
        self.append_frame(frame)
    }

    fn append_frame(&self, frame: Vec<u8>) -> Result<u64, StorageError> {
        let mut s = self.state.lock();
        s.buf.extend_from_slice(&frame);
        s.appended += frame.len() as u64;
        let lsn = s.appended;
        if matches!(self.mode, SyncMode::Cached) && s.buf.len() >= CACHED_FLUSH_BYTES {
            self.spill_locked(&mut s)?;
        }
        Ok(lsn)
    }

    /// Writes the pending buffer to the sink without fsync, under the
    /// state lock ([`SyncMode::Cached`] only — `sync_to` never takes the
    /// sink in that mode, so nobody else holds it).
    fn spill_locked(&self, s: &mut WalState) -> Result<(), StorageError> {
        let Some(mut sink) = s.sink.take() else {
            return Ok(());
        };
        let batch = std::mem::take(&mut s.buf);
        let batch_end = s.appended;
        let res = (|| {
            if s.need_repair {
                sink.truncate_to(s.durable)?;
            }
            sink.write_all(&batch)
        })();
        s.sink = Some(sink);
        match res {
            Ok(()) => {
                s.need_repair = false;
                s.durable = batch_end;
                Ok(())
            }
            Err(e) => {
                // Keep the bytes queued (retried on the next spill) but
                // surface the failure.
                let mut restored = batch;
                restored.extend_from_slice(&s.buf);
                s.buf = restored;
                s.need_repair = true;
                Err(e)
            }
        }
    }

    /// Blocks until the log is confirmed through `lsn` per the sync mode
    /// — the group-commit point. The first waiter whose LSN is not yet
    /// durable becomes the leader: it takes the sink, writes the *whole*
    /// pending buffer, and (in [`SyncMode::Sync`]) fsyncs once for every
    /// commit in it. A failure fails exactly the commits whose bytes the
    /// attempt covered; their bytes stay queued and later groups retry.
    pub fn sync_to(&self, lsn: u64) -> Result<(), StorageError> {
        if matches!(self.mode, SyncMode::Cached) {
            return Ok(());
        }
        self.sync_waiters.fetch_add(1, Ordering::AcqRel);
        let res = self.sync_to_inner(lsn);
        self.sync_waiters.fetch_sub(1, Ordering::AcqRel);
        res
    }

    fn sync_to_inner(&self, lsn: u64) -> Result<(), StorageError> {
        // Whether this thread already held a batching window open; one
        // per sync_to call, so a slow disk cannot stack windows.
        let mut batched = false;
        loop {
            let mut s = self.state.lock();
            loop {
                if s.durable >= lsn {
                    return Ok(());
                }
                if let Some((end, err)) = &s.last_fail {
                    if *end >= lsn {
                        return Err(err.clone());
                    }
                }
                if s.sink.is_some() {
                    break;
                }
                self.cv.wait(&mut s);
            }
            // Group batching window: commits publish one at a time, so at
            // the instant a leader is elected the buffer often holds only
            // its own record while the rest of the burst is a few
            // microseconds behind. When other committers are visibly in
            // flight, wait briefly (lock released) until arrivals stop,
            // so the whole burst shares this group's one fsync. Skipped
            // with group commit off (the serial-fsync baseline) and for
            // lone commits.
            if self.group.load(Ordering::Relaxed)
                && !batched
                && self.sync_waiters.load(Ordering::Acquire) > 1
            {
                batched = true;
                // Yield (not a timed wait, whose wake-up latency rivals
                // the fsync; not a spin, which starves the very
                // publishers it waits for on small machines): runnable
                // committers get the CPU, publish and append, then block
                // in their own sync_to — at which point the leader runs
                // again and takes the whole burst in one group. Kept open
                // only while records are actually arriving, bounded at a
                // handful of rounds, one window per GROUP.
                let mut rounds = 0;
                loop {
                    let before = s.appended;
                    drop(s);
                    std::thread::yield_now();
                    s = self.state.lock();
                    rounds += 1;
                    if s.appended == before || rounds >= 8 {
                        break;
                    }
                }
                // State moved while we waited (another leader may have
                // synced past our LSN, or failed): re-evaluate from the
                // top before leading.
                drop(s);
                continue;
            }
            // Leader: take the sink and everything pending.
            let mut sink = s.sink.take().expect("leader checked sink presence");
            let mut batch = std::mem::take(&mut s.buf);
            let batch_end = s.appended;
            let repair_to = s.need_repair.then_some(s.durable);
            drop(s);

            let res = (|| {
                if let Some(off) = repair_to {
                    sink.truncate_to(off)?;
                }
                if !batch.is_empty() {
                    sink.write_all(&batch)?;
                }
                if matches!(self.mode, SyncMode::Sync) {
                    sink.sync()?;
                }
                Ok(())
            })();

            let mut s = self.state.lock();
            s.sink = Some(sink);
            match res {
                Ok(()) => {
                    s.need_repair = false;
                    s.durable = batch_end;
                    if s.last_fail
                        .as_ref()
                        .is_some_and(|(end, _)| *end <= batch_end)
                    {
                        s.last_fail = None;
                    }
                }
                Err(e) => {
                    // The log must stay a commit-order prefix: the failed
                    // group's bytes go back to the FRONT of the buffer
                    // (ahead of anything appended during the attempt) and
                    // retry with the next group. Waiters covered by the
                    // attempt observe the error via last_fail.
                    batch.extend_from_slice(&s.buf);
                    s.buf = batch;
                    s.need_repair = true;
                    s.last_fail = Some((batch_end, e));
                }
            }
            drop(s);
            self.cv.notify_all();
            // Loop: re-evaluate our own lsn against the new state.
        }
    }

    /// Pushes any buffered bytes to the sink without fsync. Mostly for
    /// [`SyncMode::Cached`] teardown; a no-op when nothing is buffered.
    pub fn flush(&self) -> Result<(), StorageError> {
        let mut s = self.state.lock();
        if s.buf.is_empty() {
            return Ok(());
        }
        self.spill_locked(&mut s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mvcc::Ts;
    use crate::row;

    fn commit_record(txn_id: u64, commit_ts: Ts) -> WalRecord {
        WalRecord::Commit(CommittedTxn {
            txn_id,
            start_ts: commit_ts - 1,
            commit_ts,
            changes: vec![
                ChangeRecord::insert("t", Key::single(txn_id as i64), row![txn_id as i64, "v"]),
                ChangeRecord::update(
                    "kv:ns",
                    Key::single("k"),
                    Row::from(vec![Value::Text("k".into()), Value::Text("old".into())]),
                    Row::from(vec![Value::Text("k".into()), Value::Text("new".into())]),
                ),
            ],
        })
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::CreateTable {
                name: "t".into(),
                schema: Schema::builder()
                    .column("id", DataType::Int)
                    .nullable("v", DataType::Text)
                    .primary_key(&["id"])
                    .build()
                    .unwrap(),
            },
            WalRecord::CreateIndex {
                table: "t".into(),
                column: "v".into(),
                ranged: true,
            },
            WalRecord::CreateNamespace { name: "ns".into() },
            commit_record(1, 1),
            commit_record(2, 2),
        ]
    }

    fn stream_of(records: &[WalRecord]) -> Vec<u8> {
        records.iter().flat_map(encode_frame).collect()
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_roundtrip_through_the_codec() {
        for record in sample_records() {
            let frame = encode_frame(&record);
            let (decoded, info) = decode_records(&frame).unwrap();
            assert_eq!(decoded, vec![record]);
            assert_eq!(info.valid_len, frame.len() as u64);
            assert_eq!(info.truncated_bytes, 0);
        }
        // All values survive, including floats, bytes and NULL.
        let exotic = WalRecord::Commit(CommittedTxn {
            txn_id: 7,
            start_ts: 9,
            commit_ts: 10,
            changes: vec![ChangeRecord::delete(
                "t",
                Key::from(vec![Value::Int(-1), Value::Text("x".into())]),
                Row::from(vec![
                    Value::Null,
                    Value::Bool(true),
                    Value::Float(-0.5),
                    Value::Bytes(vec![0, 255, 3]),
                    Value::Timestamp(123_456),
                ]),
            )],
        });
        let (decoded, _) = decode_records(&encode_frame(&exotic)).unwrap();
        assert_eq!(decoded, vec![exotic]);
    }

    #[test]
    fn torn_tail_is_truncated_at_every_cut_point() {
        let records = sample_records();
        let stream = stream_of(&records);
        // Record boundaries (cumulative frame ends).
        let mut boundaries = vec![0u64];
        for r in &records {
            boundaries.push(boundaries.last().unwrap() + encode_frame(r).len() as u64);
        }
        for cut in 0..=stream.len() {
            let (decoded, info) = decode_records(&stream[..cut])
                .unwrap_or_else(|e| panic!("cut at {cut} must be a torn tail, got {e}"));
            // Exactly the records whose frames fit entirely below the cut.
            let complete = boundaries.iter().filter(|&&b| b <= cut as u64).count() - 1;
            assert_eq!(decoded.len(), complete, "cut at {cut}");
            assert_eq!(info.valid_len, boundaries[complete], "cut at {cut}");
            assert_eq!(
                info.truncated_bytes,
                cut as u64 - boundaries[complete],
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn midfile_damage_is_a_typed_corruption_error_never_a_panic() {
        let stream = stream_of(&sample_records());
        // Flip every single byte in turn: the result must be either a
        // typed Corrupt error or a clean prefix — never a panic, never a
        // bogus record.
        let originals = sample_records();
        for i in 0..stream.len() {
            let mut damaged = stream.clone();
            damaged[i] ^= 0xFF;
            match decode_records(&damaged) {
                Err(StorageError::Corrupt { .. }) => {}
                Err(e) => panic!("byte {i}: unexpected error kind {e}"),
                Ok((decoded, _)) => {
                    // Tail damage decodes as a prefix of the original.
                    assert!(decoded.len() < originals.len(), "byte {i}");
                    assert_eq!(decoded[..], originals[..decoded.len()], "byte {i}");
                }
            }
        }
        // Damage in the FIRST record with intact records after it is
        // always classified corruption (resync finds the later chain).
        let mut damaged = stream.clone();
        damaged[FRAME_HEADER_LEN] ^= 0xFF; // first payload byte
        assert!(matches!(
            decode_records(&damaged),
            Err(StorageError::Corrupt { offset: 0, .. })
        ));
    }

    #[test]
    fn group_sync_amortizes_and_survives_mode_differences() {
        for mode in [SyncMode::Sync, SyncMode::Flush] {
            let sink = MemSink::new();
            let bytes = sink.contents();
            let wal = Wal::with_sink(Box::new(sink), WalOptions::with_sync_mode(mode));
            let mut last = 0;
            for i in 1..=4u64 {
                last = wal
                    .append_record(&WalRecord::CreateNamespace {
                        name: format!("ns{i}"),
                    })
                    .unwrap();
            }
            wal.sync_to(last).unwrap();
            assert_eq!(wal.durable(), last);
            assert_eq!(bytes.lock().len() as u64, last);
            let (decoded, _) = decode_records(&bytes.lock()).unwrap();
            assert_eq!(decoded.len(), 4);
        }
    }

    #[test]
    fn cached_mode_buffers_until_flush() {
        let sink = MemSink::new();
        let bytes = sink.contents();
        let wal = Wal::with_sink(Box::new(sink), WalOptions::with_sync_mode(SyncMode::Cached));
        let lsn = wal
            .append_record(&WalRecord::CreateNamespace { name: "ns".into() })
            .unwrap();
        wal.sync_to(lsn).unwrap(); // no-op in cached mode
        assert_eq!(bytes.lock().len(), 0, "cached bytes stay in process");
        wal.flush().unwrap();
        assert_eq!(bytes.lock().len() as u64, lsn);
    }

    #[test]
    fn failed_group_is_isolated_and_later_groups_recover() {
        let points = FailpointHandle::new();
        let sink = MemSink::new();
        let bytes = sink.contents();
        let wal = Wal::with_sink(
            Box::new(FailpointSink::new(sink, points.clone())),
            WalOptions::default(),
        );
        let a = wal
            .append_record(&WalRecord::CreateNamespace { name: "a".into() })
            .unwrap();
        points.fail_syncs(1);
        let err = wal.sync_to(a).unwrap_err();
        assert!(matches!(err, StorageError::Io { op: "sync", .. }));
        assert!(err.is_retryable());
        // The same LSN keeps reporting the failure until a later group
        // succeeds...
        assert!(wal.sync_to(a).is_err());
        // ...and once the sink recovers, the next group carries the
        // failed bytes through: nothing is lost, order is preserved.
        points.clear();
        let b = wal
            .append_record(&WalRecord::CreateNamespace { name: "b".into() })
            .unwrap();
        wal.sync_to(b).unwrap();
        assert_eq!(wal.durable(), b);
        let (decoded, _) = decode_records(&bytes.lock()).unwrap();
        assert_eq!(
            decoded,
            vec![
                WalRecord::CreateNamespace { name: "a".into() },
                WalRecord::CreateNamespace { name: "b".into() },
            ]
        );
        // The old failure no longer poisons anything.
        assert!(wal.sync_to(a).is_ok());
    }

    #[test]
    fn short_writes_are_repaired_by_the_next_group() {
        let points = FailpointHandle::new();
        let sink = MemSink::new();
        let bytes = sink.contents();
        let wal = Wal::with_sink(
            Box::new(FailpointSink::new(sink, points.clone())),
            WalOptions::default(),
        );
        let a = wal
            .append_record(&WalRecord::CreateNamespace { name: "a".into() })
            .unwrap();
        // Persist only half the first record, then error.
        points.short_write_at(a / 2);
        assert!(wal.sync_to(a).is_err());
        assert!(bytes.lock().len() as u64 <= a / 2);
        points.clear();
        // The next sync truncates the partial bytes and rewrites cleanly.
        wal.sync_to(a).unwrap_or_else(|_| {
            // First retry may still observe last_fail for this lsn; a new
            // append forms the next group.
            let b = wal
                .append_record(&WalRecord::CreateNamespace { name: "b".into() })
                .unwrap();
            wal.sync_to(b).unwrap();
        });
        let (decoded, info) = decode_records(&bytes.lock()).unwrap();
        assert!(!decoded.is_empty());
        assert_eq!(decoded[0], WalRecord::CreateNamespace { name: "a".into() });
        assert_eq!(info.truncated_bytes, 0);
    }

    #[test]
    fn file_open_truncates_torn_tail_and_resumes_appending() {
        let path =
            std::env::temp_dir().join(format!("trod_wal_unit_{}_{}", std::process::id(), line!()));
        let _ = std::fs::remove_file(&path);
        {
            let wal = Wal::create(&path, WalOptions::default()).unwrap();
            let lsn = wal
                .append_record(&WalRecord::CreateNamespace { name: "a".into() })
                .unwrap();
            wal.sync_to(lsn).unwrap();
        }
        // Simulate a torn write: append garbage that looks like a header
        // start but is incomplete.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[1, 2, 3, 4, 5]).unwrap();
        }
        let (wal, records, info) = Wal::open(&path, WalOptions::default()).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(info.truncated_bytes, 5);
        // Appending after repair yields a clean, longer log.
        let lsn = wal
            .append_record(&WalRecord::CreateNamespace { name: "b".into() })
            .unwrap();
        wal.sync_to(lsn).unwrap();
        let (_, records, info) = Wal::open(&path, WalOptions::default()).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(info.truncated_bytes, 0);
        let _ = std::fs::remove_file(&path);
    }
}
