//! The database façade: catalog, transaction lifecycle, commit protocol,
//! transaction log access, snapshots, time travel and forking.
//!
//! # The sharded commit protocol
//!
//! Commit used to serialize every writing transaction on one global
//! `Mutex<()>`; at ~2 µs of validation + install per commit the lock
//! itself was the throughput ceiling. Commits are now sharded by table
//! while remaining strictly serializable:
//!
//! **Lock order.** A committing transaction acquires the per-table commit
//! locks ([`TableStore::commit_lock`]) of its *footprint* in ascending
//! table-name order. The footprint is every table it wrote, plus — under
//! serializable isolation — every table it point-read or predicate-
//! scanned (their validation results must stay true until the commit
//! publishes). The deterministic global order makes multi-table commits
//! deadlock-free; transactions with disjoint footprints validate and
//! install fully concurrently.
//!
//! **Timestamp allocation.** After validation and all pre-apply checks
//! succeed — i.e. once nothing can fail — the commit claims
//! `commit_ts = ts_alloc.fetch_add(1) + 1` from a global atomic
//! allocator. Because allocation happens while holding the footprint
//! locks, timestamps are monotone *per table*, which keeps every table's
//! [`ChangeLog`](crate::changelog::ChangeLog) ordered by `commit_ts`.
//! Aborting transactions never allocate, so the timestamp sequence has no
//! holes.
//!
//! **Publication rule.** Versions are installed at `commit_ts`, but
//! readers resolve visibility against the separate `clock` (the highest
//! *published* timestamp, [`Database::current_ts`]) — an installed-but-
//! unpublished version with `begin_ts > clock` is invisible to every
//! read. A commit publishes by waiting until `clock == commit_ts - 1`
//! and then storing `commit_ts` (appending its [`TxnLog`] entry inside
//! that ordered window, so the global log stays commit-ordered). The
//! clock therefore only ever exposes a prefix of fully installed
//! commits: readers can never observe a torn (half-installed)
//! multi-table commit. Footprint locks are held until after publication,
//! so the next committer on any overlapping table starts from a fully
//! published state.
//!
//! **Commit participants.** The protocol is not relational-only: a commit
//! may carry [`CommitParticipant`](crate::commit::CommitParticipant)s —
//! other stores (e.g. `trod-kv` namespaces) whose buffered reads and
//! writes join the same commit. Participants contribute *resources*
//! (globally-unique lock names such as `kv:<namespace>`) that are merged
//! with the relational footprint and locked in one sorted order, so a
//! polyglot commit is deadlock-free and commits over disjoint resources —
//! different tables, different namespaces, or any mix — proceed fully
//! concurrently. Participant validation runs under the merged footprint
//! locks before the timestamp is claimed (any store can still veto, and
//! aborts are side-effect-free everywhere); participant installation runs
//! inside the ordered publication window and its change records are
//! appended to the same [`TxnLog`] entry as the relational changes. The
//! transaction log is therefore *aligned by construction*: one commit,
//! one timestamp, one entry spanning every store (paper §5) — there is no
//! separate cross-store commit path, and no cross-store global lock.
//!
//! **Lock-free serializable readers (SSI).** Acquiring commit locks for
//! *read-only* footprint tables makes readers of hot shared tables
//! serialize behind every writer — and behind each other's publication
//! waits. Serializable commits therefore default to **serializable
//! snapshot validation**: only written tables are commit-locked, and the
//! read set (point reads, scan predicates, index probes — scans record
//! their predicate whichever access path served them) is validated in
//! two passes. An *optimistic* pass under the write locks catches
//! rw-antidependencies that have already published (cheap early abort,
//! and on any serial schedule it makes exactly the decisions the locked
//! check would). Then, if any read touched a table the commit did not
//! write, the commit claims its timestamp, waits for its publication
//! turn, and re-validates those reads *inside the window* against the
//! exact span `(start_ts, commit_ts)` — every predecessor is fully
//! published, every successor excluded by timestamp, so the re-check is
//! sound, not racy. A conflict publishes the claimed timestamp as an
//! empty tick (nothing was installed) and aborts with a retryable
//! serialization failure. [`Database::set_read_lock_commit`] restores
//! the 2PL read-locking baseline the `read_scaling` benchmark measures
//! against; [`Database::set_serial_commit`] implies it.
//!
//! **The widened publication pipeline.** The publication rule lets
//! installs move *out* of the ordered window: a version stamped with a
//! claimed `commit_ts` is invisible until the clock reaches it, so
//! relational **and participant** installs run right after the
//! timestamp claim, before waiting for the publication turn (clock-aware
//! versioning — participant stores bind [`Database::publication_clock`]
//! and clamp reads to the published prefix). Log appends leave the
//! window too: the publisher stages its entry in sharded buffers
//! ([`crate::log::LogStaging`]) *before* bumping the clock, and log
//! readers drain published entries into the [`TxnLog`] in commit order
//! on access — the single log mutex is no longer the fan-in point of
//! every commit, while the observable log (and the WAL, whose in-window
//! buffer memcpy keeps byte order == commit order) stays byte-identical.
//! On the fast path the ordered window is now just: WAL buffer append,
//! staging push, clock bump. Only SSI commits with unlocked reads (and
//! replay injection) still validate or install inside their window.
//!
//! **Watermark semantics.** Every transaction registers `(txn_id,
//! start_ts)` in the [`ActiveTxnRegistry`] at `begin` and deregisters at
//! commit/abort/drop. The registry's `min_active_start_ts()` watermark
//! bounds history reclamation: [`Database::gc_before`] clamps its horizon
//! to it, and change-log ring eviction refuses to evict entries above
//! `min(watermark, published clock)` — both read under the registry lock,
//! so an active transaction's snapshot stays readable and its O(Δ)
//! validation window is never truncated out from under it, even by an
//! append racing with `begin`. Ring bloat under a long-lived pinner is
//! bounded by the ring's overshoot cap (see [`crate::changelog`]): a
//! pathological pinner degrades to full-scan validation instead of
//! growing the ring without limit.
//!
//! [`Database::set_serial_commit`] restores the old single-global-lock
//! behaviour (on top of the sharded locks, and covering participants too)
//! as a measurable baseline, the same way
//! [`Database::set_full_scan_validation`] exposes the O(total versions)
//! validation path.
//!
//! # The read path: access-path selection
//!
//! Point reads resolve one version chain directly (O(1) hash lookup plus
//! a chain walk that is O(1) for live reads). Predicate scans go through
//! a small **scan planner** ([`TableStore::plan_scan`] exposes its
//! decision): for each index on the table it derives the candidate set
//! the predicate admits — a *point probe* when
//! [`Predicate::equality_on`](crate::predicate::Predicate::equality_on)
//! pins a hash-indexed column, a *multi-probe* (one hash probe per list
//! element, merged) when `in_list_on` finds an `IN (...)` conjunct, a
//! *range probe* over an ordered [`RangeIndex`](crate::index::RangeIndex)
//! when `bounds_on` extracts a comparison window — estimates each path's
//! candidate count from index entry counts (range estimates stop counting
//! at the best estimate so far), and takes the cheapest path, falling back
//! to the full chain walk when nothing beats it.
//!
//! Two invariants make every path interchangeable:
//!
//! * **Indexes over-approximate, never under-approximate.** Analysis only
//!   extracts constraints that are *conjunctively required* (`Or`/`Not`
//!   subtrees contribute nothing), index entries are MVCC-stamped rather
//!   than removed (eager unlink on update/delete, `purge_dead` on GC), and
//!   every candidate is re-checked for visibility at the read timestamp
//!   and against the full compiled predicate. A stale or widened candidate
//!   costs a wasted check; a missing one would be a wrong result — so the
//!   planner only ever errs wide. `scan_at_full` is the always-correct
//!   oracle, and `tests/scan_path_equivalence.rs` property-tests that
//!   every planner choice returns its exact result set, including at
//!   time-travel timestamps.
//! * **One timestamp discipline everywhere.** Probes filter candidates by
//!   the read timestamp using the same `until > ts` stamp rule for every
//!   index kind, so latest, snapshot and time-travel scans (and therefore
//!   the debugger's as-of views and the declarative query layer, which
//!   lowers WHERE clauses into pushed-down predicates) all ride the same
//!   planner with no separate history path.
//!
//! # Forking, replay injection and aligned-history retention
//!
//! The debugger's "development database" is a **fork**:
//! [`Database::fork_at`] materialises the rows visible at a timestamp into
//! an independent database whose clock starts at that timestamp (schemas
//! and indexes copied; the key-value store mirrors the same semantics with
//! `KvStore::fork_at` in `trod-kv`, so a whole *session environment* —
//! db + kv — forks at one point of the aligned history). Replay then
//! drives the fork with [`Database::apply_changes_with`]: captured change
//! records re-applied as synthetic commits that take the same per-resource
//! locks, claim timestamps from the fork's allocator, and run participant
//! installs (the `kv:<namespace>` half of a polyglot commit) inside the
//! same ordered publication window as live commits — one aligned log
//! entry per injected transaction, exactly like production.
//!
//! Forking is only sound **at or above the GC truncation floor**
//! ([`Database::log_truncated_below`]): [`Database::gc_before`] drops row
//! versions and the matching aligned log entries together, so below the
//! floor the live store can no longer materialise the historical state.
//! A [`RetentionPolicy`] closes that gap: when installed
//! ([`Database::set_retention_policy`]), GC *spills* every log entry it
//! truncates into the policy before dropping it. A debugger that kept the
//! spilled entries (the TROD provenance store does) can rebuild the
//! environment at any spilled timestamp by replaying spilled + live
//! aligned entries into an empty fork — which is how replay keeps working
//! for history older than the GC watermark.
//!
//! # Durability, group commit and recovery
//!
//! Attaching a write-ahead log ([`Database::create_durable`] /
//! [`Database::open_durable`], or [`Database::attach_wal`] for custom
//! sinks) makes the aligned history real: the publication window streams
//! every [`TxnLog`] entry — relational and `kv:<namespace>` change
//! records verbatim — into the active segment of a
//! [`crate::segment::SegmentedWal`] as a length-prefixed, CRC-checksummed
//! record (format in [`crate::wal`]), so the WAL byte order *is* the
//! commit order. DDL (`create_table`, `create_index`,
//! `create_range_index`, and namespace creation at the session layer) is
//! logged the same way, so recovery rebuilds the catalog before the
//! commits that use it.
//!
//! **Segment lifecycle.** The durable log is a directory of segments
//! tracked by a checksummed `MANIFEST` (details in [`crate::segment`]);
//! each segment moves through exactly one path:
//!
//! ```text
//! active ──(size bound reached, rotation outside the
//!           publication window; fully synced at seal)──▶ sealed
//! sealed ──(max commit ts <= GC floor; entries spilled;
//!           copied + verified into an immutable cold file,
//!           published by an atomic manifest swap)───────▶ compacted
//! compacted originals ──(only after the manifest swap
//!           is durable)──────────────────────────────────▶ deleted
//! ```
//!
//! Only the **active** segment may carry a torn tail after a crash;
//! sealed and cold files were complete and durable before the manifest
//! ever referenced them, so any damage there is refused as typed
//! corruption. [`Database::gc_before`] drives the sealed → compacted
//! transition: once the log floor rises past a sealed segment's last
//! commit (its entries now live in the retention spill and the cold copy)
//! the original is deleted — durable retention stops growing without
//! bound.
//!
//! **Group commit.** Appending happens inside the publication window (a
//! memcpy into the WAL's buffer — no IO on the ordered critical path);
//! the durability wait ([`crate::wal::Wal::sync_to`]) runs *after* the
//! committer released its footprint locks. The first waiter becomes the
//! group leader and performs one write + one fsync for every commit
//! buffered meanwhile, so durable throughput scales with batch size
//! instead of being 1/fsync flat. [`crate::wal::SyncMode`] picks the
//! guarantee (`Sync` = fsync, `Flush` = OS buffer, `Cached` = process
//! buffer), and `group_commit: false` restores the serial-fsync baseline
//! (each commit syncs inside its own publication window) that the
//! `wal_commit` benchmark compares against. With a WAL attached the
//! synthetic storage-latency model is bypassed — commits pay the real
//! fsync instead.
//!
//! **Failure semantics.** A failed group write/fsync surfaces as the
//! retryable [`TrodError::Storage`] to exactly the commits whose bytes
//! the failed attempt covered; the commit is *published in memory* but
//! its durability is unconfirmed. The failed bytes stay queued in commit
//! order and the next group's leader repairs the sink and retries them,
//! so one bad group never poisons the commit path.
//!
//! **Recovery.** [`Database::open_durable`] validates every record's
//! checksum, truncates a *torn tail* (damage extending to end-of-file —
//! an unacknowledged commit that died mid-write) back to the last valid
//! record, and refuses mid-file corruption (damage with provably valid
//! records after it) with a typed [`crate::StorageError::Corrupt`] —
//! never a panic, never silently wrong state. Valid entries replay
//! through the same participant path as live injection
//! ([`Database::apply_entry_with`]), preserving each entry's original
//! `txn_id`/`start_ts`/`commit_ts` and its kv records, so the recovered
//! aligned history is byte-for-byte the durable prefix of the original.
//! Crash-point behaviour is property-tested with
//! [`crate::wal::FailpointSink`]: at every record-boundary crash, every
//! random truncation and every byte corruption, reopen recovers exactly
//! the acknowledged-commit prefix.
//!
//! # Environment checkpoints
//!
//! Recovery as described above is O(history): every cold, sealed and
//! active record replays from ts 0. **Checkpoints** bound that cost.
//! A checkpoint ([`crate::checkpoint::Checkpoint`]) is one
//! MVCC-consistent image of the whole environment — every table's
//! schema, index columns and rows visible at the checkpoint timestamp,
//! every key-value namespace (contributed through
//! [`Database::set_checkpoint_source`] by the session layer), the
//! commit clock and the transaction-id high-water mark — written as a
//! single CRC-framed `ckpt-<ts>.ckpt` file through the same
//! [`LogDir`] seam as segments and published by the same atomic
//! MANIFEST swap (so crash sweeps cover every cost unit of the write).
//!
//! **When they are taken.** Never inside the publication window. The
//! capture runs on the *post-ack* path — after a commit has released
//! its footprint locks and confirmed durability
//! ([`Database::maybe_checkpoint`] fires when
//! [`crate::wal::WalOptions::checkpoint_bytes`] of new WAL bytes have
//! accumulated), after [`Database::gc_before`] finishes compaction, or
//! on demand via [`Database::checkpoint`] (the server's
//! `sys_checkpoint`). Capture reads the *published* clock `T` and
//! time-travel snapshots every store at exactly `T`; concurrent commits
//! at higher timestamps are simply not in the image. At most one
//! capture runs at a time (concurrent attempts are counted as skips),
//! and a failed write is counted and swallowed — commits never fail
//! because a checkpoint could not be written.
//!
//! **What boot does with them.** [`Database::open_durable`] restores
//! the newest *valid* checkpoint (decode + CRC verify at boot), then
//! replays only the WAL tail after its timestamp: whole cold/sealed
//! files whose commits all precede the checkpoint (and which carry no
//! DDL) are skipped without even being read, and decoded records are
//! filtered to commits after the cut. DDL records are replayed
//! *leniently* on a checkpoint boot — re-creating a table, index or
//! namespace the checkpoint already restored is a no-op (sound because
//! the WAL vocabulary has no drop records). Recovery then raises the
//! log truncation floor to the checkpoint timestamp, so history below
//! it reads as typed truncation, exactly as if GC had truncated it —
//! never as silently-empty history.
//!
//! **Fallback rules.** A checkpoint that fails validation (bad magic,
//! CRC mismatch, timestamp disagreement with the MANIFEST) is delisted
//! and deleted, the fallback is counted, and boot tries the next older
//! one — or falls back to full replay with no checkpoint at all. Every
//! failure is typed ([`crate::StorageError::Corrupt`]) or recovered;
//! a damaged checkpoint can never produce silently wrong state, because
//! the full WAL history is still there to replay.
//!
//! **Deep forks.** The debugger's below-the-GC-floor environment forks
//! ride the same files: `fork_environment` in `trod-core` loads the
//! nearest checkpoint at or before the fork timestamp
//! ([`crate::segment::SegmentedWal::load_checkpoint_at_or_before`]) and
//! replays only the spilled aligned history after it — nearest-snapshot
//! + delta instead of replay-everything.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::cdc::{ChangeOp, ChangeRecord};
use crate::checkpoint::{Checkpoint, CheckpointContributor, CheckpointTable};
use crate::commit::CommitParticipant;
use crate::error::{DbError, DbResult, StorageError, TrodError, TrodResult};
use crate::latency::{LatencyModel, StorageProfile};
use crate::log::{CommittedTxn, LogStaging, RetentionPolicy, TxnId, TxnLog};
use crate::mvcc::Ts;
use crate::predicate::Predicate;
use crate::registry::ActiveTxnRegistry;
use crate::row::{Key, Row};
use crate::schema::Schema;
use crate::segment::{LogDir, SegmentedRecovery, SegmentedWal};
use crate::table::{BatchOp, ScanRows, TableStore};
use crate::txn::{CommitInfo, IsolationLevel, Transaction, TxnState, WriteOp};
use crate::wal::{RecoveryReport, Wal, WalOptions, WalRecord};

/// Replay callback for `CreateNamespace` records: lets the session layer
/// create kv namespaces mid-stream, preserving DDL-vs-commit order.
pub(crate) type NamespaceHook<'a> = &'a mut dyn FnMut(&str) -> Result<(), StorageError>;

/// Point-in-time statistics about a database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbStats {
    pub tables: usize,
    pub live_rows: usize,
    pub total_versions: usize,
    pub committed_txns: usize,
    pub current_ts: Ts,
}

struct DbInner {
    tables: RwLock<BTreeMap<String, Arc<TableStore>>>,
    /// Publication clock: the highest commit timestamp whose transaction
    /// is fully installed. Readers resolve visibility against this; 0
    /// means "nothing committed yet". Invariant: `clock <= ts_alloc`,
    /// equal whenever no commit is mid-flight. Shared (`Arc`) with every
    /// [`TableStore`] so change-log ring eviction can clamp to it.
    clock: Arc<AtomicU64>,
    /// Commit timestamp allocator: the highest timestamp handed to any
    /// commit. Claimed (under the footprint locks) only after a commit
    /// can no longer fail, so every allocated timestamp is published.
    ts_alloc: AtomicU64,
    next_txn_id: AtomicU64,
    log: Mutex<TxnLog>,
    /// Commit-ordered staging shards between the publication window and
    /// `log`: publishers push here (shard-local lock) instead of taking
    /// the log mutex inside the window; every log reader drains published
    /// entries back into `log` through [`Database::synced_log`].
    log_staging: LogStaging,
    /// Retention hook for aligned-history truncation: when set,
    /// [`Database::gc_before`] hands every log entry it is about to drop
    /// to the policy (spill-before-truncate) instead of discarding it.
    /// The `Ts` records [`TxnLog::truncated_below`] at install time — the
    /// floor below which the policy's spill can never reach, because that
    /// history was already truncated without it.
    retention: RwLock<Option<(Arc<dyn RetentionPolicy>, Ts)>>,
    /// Active transactions (txn id -> start_ts); source of the
    /// min-active-start-ts watermark that bounds GC and ring eviction.
    registry: Arc<ActiveTxnRegistry>,
    snapshots: Mutex<BTreeMap<String, Ts>>,
    latency: LatencyModel,
    /// Diagnostics/benchmark escape hatch: force serializable predicate
    /// validation down the O(total versions) full-scan path instead of the
    /// O(Δ) change-log path. Both paths are decision-equivalent (enforced
    /// by a debug assertion and a property test); this flag exists so the
    /// equivalence is observable and the speedup measurable.
    full_scan_validation: AtomicBool,
    /// Diagnostics/benchmark escape hatch: additionally serialize every
    /// commit on `serial_lock`, restoring the pre-sharding global commit
    /// lock as a baseline. Protocol-equivalent to the sharded path (same
    /// decisions, same states); only concurrency differs.
    serial_commit: AtomicBool,
    serial_lock: Mutex<()>,
    /// SSI escape hatch: when `true`, serializable commits take commit
    /// locks on the tables/namespaces they only *read* (the pre-SSI
    /// 2PL-read-locking behaviour) instead of leaving them unlocked and
    /// re-validating the reads inside the publication window.
    /// Decision-equivalent to the lock-free default under any serial
    /// schedule; only concurrency differs.
    read_lock_commit: AtomicBool,
    /// Publication queue: commits whose predecessor timestamp has not
    /// published yet park here (std condvar — waiters must sleep, not
    /// spin, so a preempted predecessor gets the CPU back immediately).
    publish_waiters: AtomicU64,
    publish_mutex: std::sync::Mutex<()>,
    publish_cv: std::sync::Condvar,
    /// Durable sink for the aligned history: when attached, every commit
    /// appends its log entry (and DDL its record) inside the publication
    /// window and group-syncs after releasing its locks. `None` = pure
    /// in-memory database (forks, tests, the default).
    wal: RwLock<Option<Arc<SegmentedWal>>>,
    /// Extra store captured into environment checkpoints (the session
    /// layer registers its key-value store here). `None` = relational
    /// state only.
    ckpt_source: RwLock<Option<Arc<dyn CheckpointContributor>>>,
    /// At most one checkpoint capture runs at a time; losers of the CAS
    /// are counted as skips, not queued — the next trigger retries.
    checkpoint_in_progress: AtomicBool,
}

/// A handle to an in-memory transactional database.
///
/// `Database` is cheaply cloneable (it is an `Arc` internally); clones
/// share the same underlying state, which is how concurrent request
/// handlers in the runtime share one store.
#[derive(Clone)]
pub struct Database {
    inner: Arc<DbInner>,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("Database")
            .field("tables", &stats.tables)
            .field("live_rows", &stats.live_rows)
            .field("committed_txns", &stats.committed_txns)
            .field("current_ts", &stats.current_ts)
            .finish()
    }
}

impl Default for Database {
    fn default() -> Self {
        Database::new()
    }
}

impl Database {
    /// Creates an empty database with the in-memory storage profile.
    pub fn new() -> Self {
        Database::with_profile(StorageProfile::InMemory)
    }

    /// Creates an empty database with the given storage latency profile.
    pub fn with_profile(profile: StorageProfile) -> Self {
        Database {
            inner: Arc::new(DbInner {
                tables: RwLock::new(BTreeMap::new()),
                clock: Arc::new(AtomicU64::new(0)),
                ts_alloc: AtomicU64::new(0),
                next_txn_id: AtomicU64::new(1),
                log: Mutex::new(TxnLog::new()),
                log_staging: LogStaging::new(),
                retention: RwLock::new(None),
                registry: Arc::new(ActiveTxnRegistry::new()),
                snapshots: Mutex::new(BTreeMap::new()),
                latency: LatencyModel::new(profile),
                full_scan_validation: AtomicBool::new(false),
                serial_commit: AtomicBool::new(false),
                serial_lock: Mutex::new(()),
                read_lock_commit: AtomicBool::new(false),
                publish_waiters: AtomicU64::new(0),
                publish_mutex: std::sync::Mutex::new(()),
                publish_cv: std::sync::Condvar::new(),
                wal: RwLock::new(None),
                ckpt_source: RwLock::new(None),
                checkpoint_in_progress: AtomicBool::new(false),
            }),
        }
    }

    /// Creates an empty database whose commits stream to a fresh
    /// segmented WAL directory at `path` (truncating any existing log —
    /// including a pre-segmentation single-file one). See the module docs
    /// on durability.
    pub fn create_durable(
        path: impl AsRef<std::path::Path>,
        opts: WalOptions,
    ) -> DbResult<Database> {
        let db = Database::new();
        db.attach_segmented_wal(SegmentedWal::create_path(path, opts)?);
        Ok(db)
    }

    /// [`Database::create_durable`] over an arbitrary [`LogDir`]
    /// (fault-injection tests drive a [`crate::segment::FailpointDir`]
    /// through here).
    pub fn create_durable_in(dir: Arc<dyn LogDir>, opts: WalOptions) -> DbResult<Database> {
        let db = Database::new();
        db.attach_segmented_wal(SegmentedWal::create_dir(dir, opts)?);
        Ok(db)
    }

    /// Opens (creating if absent) a durable database: validates the WAL
    /// at `path`, truncates a torn tail at the last valid checksum,
    /// replays every record through the participant path, and attaches
    /// the repaired WAL so subsequent commits append after the recovered
    /// prefix. Mid-file corruption yields a typed error
    /// ([`StorageError::Corrupt`]); replay inconsistencies yield
    /// [`StorageError::Recovery`] — never a panic.
    ///
    /// Entries may carry `kv:<namespace>` change records; this
    /// relational-only replay preserves them verbatim in the aligned
    /// history (use `Session::open_durable` in `trod-kv` to also
    /// re-install them into a key-value store).
    pub fn open_durable(
        path: impl AsRef<std::path::Path>,
        opts: WalOptions,
    ) -> DbResult<(Database, RecoveryReport)> {
        let (wal, records, info) = SegmentedWal::open_path(path, opts)?;
        Self::recover_from(wal, &records, &info)
    }

    /// [`Database::open_durable`] over an arbitrary [`LogDir`].
    pub fn open_durable_in(
        dir: Arc<dyn LogDir>,
        opts: WalOptions,
    ) -> DbResult<(Database, RecoveryReport)> {
        let (wal, records, info) = SegmentedWal::open_dir(dir, opts)?;
        Self::recover_from(wal, &records, &info)
    }

    fn recover_from(
        wal: Arc<SegmentedWal>,
        records: &[WalRecord],
        info: &SegmentedRecovery,
    ) -> DbResult<(Database, RecoveryReport)> {
        let db = Database::new();
        // Checkpoint boot: restore the newest valid snapshot first, then
        // replay only the (already-filtered) WAL tail after it. DDL in
        // the tail replays leniently — the checkpoint already holds the
        // catalog as of its timestamp.
        let checkpoint = wal.take_recovered_checkpoint();
        let lenient_ddl = checkpoint.is_some();
        if let Some(ck) = &checkpoint {
            db.restore_checkpoint(ck)?;
        }
        let mut report = db.replay_wal_records(records, &[], None, lenient_ddl)?;
        report.truncated_bytes = info.truncated_bytes;
        report.segments = info.segments;
        report.cold_files = info.cold_files;
        report.checkpoint_ts = checkpoint.map(|ck| ck.ts);
        report.checkpoint_fallbacks = info.checkpoint_fallbacks;
        report.skipped_files = info.skipped_files;
        // Attach only after replay: a WAL attached earlier would re-append
        // every replayed entry.
        db.attach_segmented_wal(wal);
        Ok((db, report))
    }

    /// Replays decoded WAL records into this (empty) database. DDL
    /// records rebuild the catalog; commit entries re-install through
    /// [`Database::apply_entry_with`] with `participants` (the kv half of
    /// polyglot entries — empty for relational-only recovery). A caller
    /// handling namespaces itself (the session layer) passes `on_namespace`
    /// to create them mid-stream, preserving DDL-vs-commit order.
    ///
    /// `lenient_ddl` is the checkpoint-boot mode: DDL that re-creates an
    /// object the restored checkpoint already holds is skipped instead of
    /// erroring (sound — the WAL vocabulary has no drop records, so
    /// "already exists" can only mean "the checkpoint got there first").
    /// Full replay stays strict, so a genuinely duplicated DDL record
    /// still surfaces as a typed recovery error.
    pub(crate) fn replay_wal_records(
        &self,
        records: &[WalRecord],
        participants: &[&dyn CommitParticipant],
        mut on_namespace: Option<NamespaceHook<'_>>,
        lenient_ddl: bool,
    ) -> DbResult<RecoveryReport> {
        let mut report = RecoveryReport::default();
        let recovery_err = |detail: String| DbError::Storage(StorageError::Recovery { detail });
        for record in records {
            match record {
                WalRecord::CreateTable { name, schema } => {
                    if lenient_ddl && self.has_table(name) {
                        continue;
                    }
                    self.create_table(name.clone(), schema.clone())
                        .map_err(|e| recovery_err(format!("create table `{name}`: {e}")))?;
                    report.tables += 1;
                }
                WalRecord::CreateIndex {
                    table,
                    column,
                    ranged,
                } => {
                    if lenient_ddl {
                        let store = self
                            .table(table)
                            .map_err(|e| recovery_err(format!("index `{table}.{column}`: {e}")))?;
                        let existing = if *ranged {
                            store.range_indexed_columns()
                        } else {
                            store.indexed_columns()
                        };
                        if existing.iter().any(|c| c == column) {
                            continue;
                        }
                    }
                    if *ranged {
                        self.create_range_index(table, column)
                    } else {
                        self.create_index(table, column)
                    }
                    .map_err(|e| recovery_err(format!("create index `{table}.{column}`: {e}")))?;
                    report.indexes += 1;
                }
                WalRecord::CreateNamespace { name } => {
                    if let Some(hook) = on_namespace.as_deref_mut() {
                        hook(name).map_err(DbError::Storage)?;
                    }
                    report.namespaces.push(name.clone());
                }
                WalRecord::Commit(entry) => {
                    self.apply_entry_with(entry, participants).map_err(|e| {
                        recovery_err(format!("replay commit ts {}: {e}", entry.commit_ts))
                    })?;
                    report.commits += 1;
                    report.kv_writes_replayed += entry
                        .changes
                        .iter()
                        .filter(|c| crate::cdc::is_kv_table(&c.table))
                        .count();
                }
            }
        }
        Ok(report)
    }

    /// Attaches a write-ahead log; every subsequent commit appends its
    /// aligned log entry to it (module docs). The log is assumed to
    /// already contain exactly this database's history (empty for a fresh
    /// database). Mostly useful with custom sinks
    /// ([`crate::wal::Wal::with_sink`], fault-injection tests); prefer
    /// [`Database::create_durable`] / [`Database::open_durable`].
    pub fn attach_wal(&self, wal: Arc<Wal>) {
        self.attach_segmented_wal(SegmentedWal::single(wal));
    }

    /// Attaches a segmented WAL directly (what the durable constructors
    /// do); [`Database::attach_wal`] wraps a single-sink [`Wal`] into a
    /// rotation-free [`SegmentedWal`] through here.
    pub fn attach_segmented_wal(&self, wal: Arc<SegmentedWal>) {
        *self.inner.wal.write() = Some(wal);
    }

    /// The attached WAL, if any.
    pub fn wal(&self) -> Option<Arc<SegmentedWal>> {
        self.inner.wal.read().clone()
    }

    /// Appends a DDL record to the WAL (if attached) and makes it durable
    /// immediately — DDL is rare and must precede the commits that use
    /// the object it creates.
    fn log_ddl(&self, record: WalRecord) -> DbResult<()> {
        if let Some(wal) = self.wal() {
            let lsn = wal.append_record(&record)?;
            wal.sync_to(lsn)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Environment checkpoints (lifecycle in the module docs)
    // ------------------------------------------------------------------

    /// Registers the extra store captured into environment checkpoints
    /// (the session layer registers its key-value store so checkpoints
    /// cover the whole polyglot environment). Pass `None` to capture
    /// relational state only.
    pub fn set_checkpoint_source(&self, source: Option<Arc<dyn CheckpointContributor>>) {
        *self.inner.ckpt_source.write() = source;
    }

    /// Captures an MVCC-consistent [`Checkpoint`] of the environment at
    /// the current *published* commit timestamp: every table's schema,
    /// index columns and rows visible at that timestamp, plus whatever
    /// the registered [`CheckpointContributor`] holds. Does not write
    /// anything — [`Database::checkpoint`] does capture + durable write.
    pub fn capture_checkpoint(&self) -> Checkpoint {
        // The published clock: every commit at or below it is fully
        // installed, every one above it invisible to the time-travel
        // reads below — the snapshot is consistent without any lock.
        let ts = self.current_ts();
        let tables = self.inner.tables.read();
        let mut captured = Vec::with_capacity(tables.len());
        for (name, store) in tables.iter() {
            captured.push(CheckpointTable {
                name: name.clone(),
                schema: store.schema().clone(),
                hash_indexes: store.indexed_columns(),
                range_indexes: store.range_indexed_columns(),
                rows: store
                    .materialize_at(ts)
                    .into_iter()
                    .map(|(key, row)| (key, (*row).clone()))
                    .collect(),
            });
        }
        drop(tables);
        let namespaces = match self.inner.ckpt_source.read().as_ref() {
            Some(source) => source.capture_kv(ts),
            None => Vec::new(),
        };
        Checkpoint {
            ts,
            next_txn_id: self.inner.next_txn_id.load(Ordering::SeqCst),
            tables: captured,
            namespaces,
        }
    }

    /// Captures and durably writes an environment checkpoint through the
    /// attached WAL, returning `Some((ts, bytes))` on a successful write
    /// and `None` when the attempt was skipped (no WAL attached, nothing
    /// committed yet, a checkpoint at this timestamp already exists, or
    /// another capture is in flight — all counted in the WAL stats).
    /// Never called inside the publication window; see the module docs.
    pub fn checkpoint(&self) -> DbResult<Option<(Ts, u64)>> {
        let Some(wal) = self.wal() else {
            return Ok(None);
        };
        if self
            .inner
            .checkpoint_in_progress
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            wal.count_checkpoint_skip();
            return Ok(None);
        }
        let result = wal
            .write_checkpoint(&self.capture_checkpoint())
            .map_err(DbError::Storage);
        self.inner
            .checkpoint_in_progress
            .store(false, Ordering::SeqCst);
        result
    }

    /// Post-ack checkpoint trigger: takes a checkpoint when enough new
    /// WAL bytes have accumulated since the last one
    /// ([`crate::wal::WalOptions::checkpoint_bytes`]). Errors are counted
    /// in the WAL stats and swallowed — a commit (or GC) never fails
    /// because a checkpoint could not be written.
    pub fn maybe_checkpoint(&self) {
        if let Some(wal) = self.wal() {
            if wal.wants_checkpoint() {
                let _ = self.checkpoint();
            }
        }
    }

    /// Restores a decoded checkpoint into this **empty, WAL-less**
    /// database: re-creates every table, installs its rows at the
    /// checkpoint timestamp, builds the indexes (after the installs, so
    /// they backfill), advances the clock and transaction-id allocator,
    /// and raises the log truncation floor to the checkpoint timestamp —
    /// history below the checkpoint reads as typed truncation, exactly
    /// as if GC had truncated it. Key-value namespaces in the checkpoint
    /// are ignored here (relational boot); the session layer restores
    /// them into its own store.
    pub fn restore_checkpoint(&self, ck: &Checkpoint) -> DbResult<()> {
        let ts = ck.ts.max(1);
        for table in &ck.tables {
            self.create_table(table.name.clone(), table.schema.clone())?;
            let store = self.table(&table.name)?;
            store.install_snapshot(
                table
                    .rows
                    .iter()
                    .map(|(key, row)| (key.clone(), Arc::new(row.clone()))),
                ts,
            );
            for column in &table.hash_indexes {
                store.create_index(column)?;
            }
            for column in &table.range_indexes {
                store.create_range_index(column)?;
            }
        }
        // Jump the clocks directly (never via `ensure_ts_at_least`, which
        // publishes every intermediate tick — O(ts) work).
        self.inner.clock.store(ck.ts, Ordering::SeqCst);
        self.inner.ts_alloc.store(ck.ts, Ordering::SeqCst);
        self.inner
            .next_txn_id
            .fetch_max(ck.next_txn_id, Ordering::SeqCst);
        self.inner.log.lock().truncate_before(ck.ts);
        Ok(())
    }

    /// Forces every commit to additionally serialize on a single global
    /// lock (`true`), restoring the pre-sharding commit protocol as a
    /// measurable baseline, or restores fully sharded per-table commit
    /// locking (`false`, the default). The two modes accept and reject
    /// exactly the same transactions; only their concurrency differs.
    /// Safe to toggle at any time (serial commits still take the
    /// per-table locks, so modes interoperate).
    pub fn set_serial_commit(&self, force: bool) {
        self.inner.serial_commit.store(force, Ordering::SeqCst);
    }

    /// True when commits are forced onto the single global lock.
    pub fn serial_commit(&self) -> bool {
        self.inner.serial_commit.load(Ordering::SeqCst)
    }

    /// Forces serializable predicate validation onto the full-scan path
    /// (`true`) or restores the default change-log path (`false`). The two
    /// paths accept and reject exactly the same transactions; only their
    /// cost differs. Used by benchmarks and equivalence tests.
    pub fn set_full_scan_validation(&self, force: bool) {
        self.inner
            .full_scan_validation
            .store(force, Ordering::SeqCst);
    }

    /// True when the full-scan validation path is forced.
    pub fn full_scan_validation(&self) -> bool {
        self.inner.full_scan_validation.load(Ordering::SeqCst)
    }

    /// Forces serializable commits back onto 2PL read locking (`true`):
    /// commit locks are acquired for every table/namespace the
    /// transaction read, the pre-SSI baseline the `read_scaling`
    /// benchmark measures against. `false` (the default) keeps readers
    /// lock-free: serializable reads are validated optimistically before
    /// the timestamp is claimed and re-checked inside the publication
    /// window (SSI — see the commit-protocol docs above). Both modes
    /// accept and reject exactly the same transactions under any serial
    /// schedule; under concurrency SSI turns lock waits into retryable
    /// serialization aborts. Safe to toggle at any time (modes
    /// interoperate: the in-window re-check is sound whether or not
    /// concurrent commits held read locks).
    pub fn set_read_lock_commit(&self, force: bool) {
        self.inner.read_lock_commit.store(force, Ordering::SeqCst);
    }

    /// True when serializable commits acquire read locks (SSI disabled).
    pub fn read_lock_commit(&self) -> bool {
        self.inner.read_lock_commit.load(Ordering::SeqCst)
    }

    /// The shared publication clock: the highest *published* commit
    /// timestamp, as an `Arc` so participant stores can bind it.
    /// A store holding this clock can install versions stamped with a
    /// claimed (higher) commit timestamp *before* publication and resolve
    /// every read against the published prefix only — clock-aware
    /// versioning, the contract behind moving participant installs out of
    /// the ordered publication window (see
    /// [`CommitParticipant::install`]).
    pub fn publication_clock(&self) -> Arc<AtomicU64> {
        self.inner.clock.clone()
    }

    /// The storage latency model in effect.
    pub(crate) fn latency(&self) -> &LatencyModel {
        &self.inner.latency
    }

    /// The configured storage profile.
    pub fn profile(&self) -> StorageProfile {
        self.inner.latency.profile()
    }

    // ------------------------------------------------------------------
    // Catalog
    // ------------------------------------------------------------------

    /// Creates a table. Names starting with `kv:` are rejected: that
    /// prefix is reserved for key-value participant resources in the
    /// commit coordinator's lock namespace and the aligned log (a table
    /// with such a name would silently alias a namespace's commit lock).
    pub fn create_table(&self, name: impl Into<String>, schema: Schema) -> DbResult<()> {
        let name = name.into();
        if crate::cdc::is_kv_table(&name) {
            return Err(DbError::Invalid(format!(
                "table name `{name}` uses the reserved `kv:` resource prefix"
            )));
        }
        let mut tables = self.inner.tables.write();
        if tables.contains_key(&name) {
            return Err(DbError::TableExists(name));
        }
        let store = TableStore::with_registry(
            name.clone(),
            schema.clone(),
            self.inner.registry.clone(),
            Some(self.inner.clock.clone()),
        );
        tables.insert(name.clone(), Arc::new(store));
        drop(tables);
        self.log_ddl(WalRecord::CreateTable { name, schema })
    }

    /// Drops a table and its history.
    pub fn drop_table(&self, name: &str) -> DbResult<()> {
        let mut tables = self.inner.tables.write();
        tables
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| DbError::NoSuchTable(name.to_string()))
    }

    /// Creates a secondary hash index on `table.column` (serves equality
    /// and `IN (...)` probes).
    pub fn create_index(&self, table: &str, column: &str) -> DbResult<()> {
        self.table(table)?.create_index(column)?;
        self.log_ddl(WalRecord::CreateIndex {
            table: table.to_string(),
            column: column.to_string(),
            ranged: false,
        })
    }

    /// Creates an ordered range index on `table.column` (serves bounded
    /// range probes — and equality — through the scan planner; see the
    /// read-path docs above).
    pub fn create_range_index(&self, table: &str, column: &str) -> DbResult<()> {
        self.table(table)?.create_range_index(column)?;
        self.log_ddl(WalRecord::CreateIndex {
            table: table.to_string(),
            column: column.to_string(),
            ranged: true,
        })
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.inner.tables.read().keys().cloned().collect()
    }

    /// True if the table exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.inner.tables.read().contains_key(name)
    }

    /// The schema of a table.
    pub fn schema_of(&self, name: &str) -> DbResult<Schema> {
        Ok(self.table(name)?.schema().clone())
    }

    /// Resolves a handle to a table's physical storage. Most callers want
    /// the transactional API instead; the handle is exposed for
    /// diagnostics and tests (e.g. inspecting a table's
    /// [`ChangeLog`](crate::changelog::ChangeLog)).
    pub fn table(&self, name: &str) -> DbResult<Arc<TableStore>> {
        self.inner
            .tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| DbError::NoSuchTable(name.to_string()))
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Begins a strictly serializable transaction (the default level).
    pub fn begin(&self) -> Transaction {
        self.begin_with(IsolationLevel::Serializable)
    }

    /// Begins a transaction at the given isolation level. The transaction
    /// registers in the active-transaction registry (pinning the GC
    /// watermark at its snapshot) until it commits, aborts or is dropped.
    pub fn begin_with(&self, isolation: IsolationLevel) -> Transaction {
        let id = self.inner.next_txn_id.fetch_add(1, Ordering::Relaxed);
        // The snapshot timestamp is read inside the registry lock so a
        // concurrent GC either sees this transaction or finishes before
        // its snapshot exists — it can never truncate under it.
        let start_ts = self
            .inner
            .registry
            .register_with(id, || self.inner.clock.load(Ordering::SeqCst));
        Transaction::new(self.clone(), id, start_ts, isolation)
    }

    /// The current commit timestamp: the latest *published* commit.
    /// Commits mid-install at higher allocated timestamps are invisible
    /// until they publish (see the module docs).
    pub fn current_ts(&self) -> Ts {
        self.inner.clock.load(Ordering::SeqCst)
    }

    /// The active-transaction registry (used by transaction handles to
    /// deregister on drop/abort).
    pub(crate) fn registry(&self) -> &ActiveTxnRegistry {
        &self.inner.registry
    }

    /// The minimum snapshot timestamp over all active transactions, or
    /// `None` when no transaction is active. GC and change-log eviction
    /// never reclaim history at or above this watermark.
    pub fn min_active_start_ts(&self) -> Option<Ts> {
        self.inner.registry.min_active_start_ts()
    }

    /// Number of active (begun, unfinished) transactions.
    pub fn active_txn_count(&self) -> usize {
        self.inner.registry.active_count()
    }

    /// Sharded commit protocol, zero-participant case. Called from
    /// [`Transaction::commit`].
    pub(crate) fn commit_txn(&self, state: TxnState) -> DbResult<CommitInfo> {
        self.commit_coordinated(state, &[]).map_err(|e| match e {
            TrodError::Relational(e) => e,
            TrodError::Storage(e) => DbError::Storage(e),
            // Unreachable without participants; keep the error faithful
            // rather than panicking.
            TrodError::KeyValue(e) => DbError::Invalid(format!("participant error: {e}")),
        })
    }

    /// Sharded, participant-aware commit protocol (see the module docs):
    /// merge the relational footprint with every participant's resources,
    /// lock the union in sorted name order, validate all stores, run
    /// every fallible pre-apply check, then allocate the commit timestamp,
    /// install, and publish in timestamp order — participant installs
    /// happen inside the publication window and land in the same log
    /// entry. Called from [`Transaction::commit_with_participants`].
    pub(crate) fn commit_coordinated(
        &self,
        state: TxnState,
        participants: &[&dyn CommitParticipant],
    ) -> TrodResult<CommitInfo> {
        // The transaction stays registered (pinning GC at its snapshot)
        // through validation and install, whatever the outcome.
        let _active = self.inner.registry.deregister_on_drop(state.id);

        if state.is_read_only() && !participants.iter().any(|p| p.has_writes()) {
            // Read-only on every store: no validation needed under
            // snapshot reads and no log entry; serialize at start_ts.
            return Ok(CommitInfo {
                txn_id: state.id,
                start_ts: state.start_ts,
                commit_ts: state.start_ts,
                changes: Vec::new(),
            });
        }

        // Phase 1 — resolve the relational footprint. Written tables
        // always participate; under serializable isolation the read and
        // scanned tables do too, so their validated state cannot change
        // between validation and publication.
        let mut footprint: BTreeMap<&str, Arc<TableStore>> = BTreeMap::new();
        for name in state.writes.keys() {
            footprint.insert(name.as_str(), self.table(name)?);
        }
        if matches!(state.isolation, IsolationLevel::Serializable) {
            for name in state
                .read_set
                .iter()
                .map(|(t, _)| t)
                .chain(state.scan_set.iter().map(|(t, _)| t))
            {
                if !footprint.contains_key(name.as_str()) {
                    footprint.insert(name.as_str(), self.table(name)?);
                }
            }
        }

        // SSI (the default for serializable commits): read-only footprint
        // resources are *not* commit-locked. Their reads are validated
        // optimistically here (unlocked — a concurrent writer may slip in
        // after the check) and re-validated exactly, inside the ordered
        // publication window, against the bounded span
        // `(start_ts, commit_ts)` — see `revalidate_reads_in_window`.
        // `set_read_lock_commit(true)` restores the 2PL baseline (readers
        // take commit locks, no in-window re-check), and the serial-commit
        // hatch implies it so that escape hatch keeps meaning "the old
        // protocol, exactly".
        let ssi = matches!(state.isolation, IsolationLevel::Serializable)
            && !self.read_lock_commit()
            && !self.serial_commit();
        let locks_reads = !ssi;

        // Merge the participants' resource locks with the tables' commit
        // locks into one deterministic global order (sorted by resource
        // name), making mixed commits deadlock-free; disjoint footprints
        // never contend. Relational-only commits skip the merge entirely
        // and lock straight out of the (already-sorted) footprint map, so
        // the common path allocates no resource names. Under SSI only
        // written tables are locked; read-only footprint entries stay in
        // the map (validation needs their stores) but contribute no lock.
        let resources: Vec<(String, Arc<Mutex<()>>)> = if participants.is_empty() {
            Vec::new()
        } else {
            let mut resources: Vec<(String, Arc<Mutex<()>>)> = footprint
                .iter()
                .filter(|(name, _)| locks_reads || state.writes.contains_key(**name))
                .map(|(name, store)| (name.to_string(), store.commit_lock().clone()))
                .collect();
            for participant in participants {
                for resource in participant.resources() {
                    if !resources.iter().any(|(name, _)| *name == resource) {
                        let lock = participant.resource_lock(&resource);
                        resources.push((resource, lock));
                    }
                }
            }
            resources.sort_by(|a, b| a.0.cmp(&b.0));
            resources
        };
        let _serial = self.serial_commit().then(|| self.inner.serial_lock.lock());
        let _guards: Vec<_> = if participants.is_empty() {
            footprint
                .iter()
                .filter(|(name, _)| locks_reads || state.writes.contains_key(**name))
                .map(|(_, store)| store.commit_lock().lock())
                .collect()
        } else {
            resources.iter().map(|(_, lock)| lock.lock()).collect()
        };

        // Phase 2 — validate every store against its now-stable
        // footprint. Every earlier commit touching these resources
        // published before releasing its locks, so the published clock
        // covers them all. No store has installed anything yet, so a veto
        // from any of them aborts side-effect-free everywhere.
        // Participants also get the lower bound of the timestamp this
        // commit would claim, so stores with per-resource timestamp
        // monotonicity can veto *here* (fallibly) instead of failing in
        // the publication window (see the trait docs).
        self.validate(&state, &footprint, ssi)?;
        let min_commit_ts = self.inner.ts_alloc.load(Ordering::SeqCst) + 1;
        for participant in participants {
            participant.validate(min_commit_ts)?;
        }

        // Phase 3 — remaining fallible pre-apply checks, all BEFORE the
        // first install: re-check insert duplicates against the latest
        // published state (a concurrent committer may have inserted the
        // key under weaker isolation levels). Nothing past this phase can
        // fail, so an abort never leaves partially installed versions —
        // which would also poison the tables' change logs with entries
        // for a transaction that never committed.
        let current_ts = self.inner.clock.load(Ordering::SeqCst);
        for (table_name, writes) in &state.writes {
            let store = &footprint[table_name.as_str()];
            for (key, op) in writes {
                if matches!(op, WriteOp::Insert(_)) && store.exists_at(key, current_ts) {
                    return Err(DbError::DuplicateKey {
                        table: table_name.clone(),
                        key: key.to_string(),
                    }
                    .into());
                }
            }
        }

        // Which path publishes this commit? Under SSI, a commit whose
        // read set touches any table it did not lock (did not write) must
        // re-validate those reads *inside* the publication window, where
        // the span `(start_ts, commit_ts)` is exact: every predecessor is
        // fully published and every successor is excluded by timestamp.
        // Participants flag the same condition themselves (lock-free read
        // namespaces). Commits whose reads were all locked — or all on
        // tables they wrote, whose locks they hold anyway — skip the
        // in-window re-check entirely and keep the narrow window.
        let unlocked_reads = ssi
            && state
                .read_set
                .iter()
                .map(|(t, _)| t)
                .chain(state.scan_set.iter().map(|(t, _)| t))
                .any(|t| !state.writes.contains_key(t));
        let late_validation = unlocked_reads || participants.iter().any(|p| p.needs_revalidation());

        // Phase 4 — claim the commit timestamp (monotone per table
        // because the written tables' locks are held) and install. The
        // new versions are stamped with `commit_ts` and stay invisible
        // until the publication clock reaches it, so installing *before*
        // our publication turn is safe — that is what lets the ordered
        // window shrink to the WAL append + clock bump on the fast path.
        //
        // On the late-validation path the order inverts: wait for the
        // publication turn first, re-validate the unlocked reads exactly,
        // and only then install. A validation failure publishes the
        // claimed timestamp as an empty tick (nothing was installed
        // anywhere) and aborts retryably.
        let commit_ts = self.inner.ts_alloc.fetch_add(1, Ordering::SeqCst) + 1;
        if late_validation {
            self.wait_for_publication_turn(commit_ts);
            let recheck = (|| -> TrodResult<()> {
                self.revalidate_reads_in_window(&state, &footprint, commit_ts)?;
                for participant in participants {
                    if participant.needs_revalidation() {
                        participant.revalidate_reads(commit_ts)?;
                    }
                }
                Ok(())
            })();
            if let Err(e) = recheck {
                self.publish_tick(commit_ts);
                return Err(e);
            }
        }
        let mut changes = Vec::new();
        for (table_name, writes) in &state.writes {
            let store = &footprint[table_name.as_str()];
            let ops: Vec<(Key, Option<Arc<Row>>)> = writes
                .iter()
                .map(|(key, op)| {
                    let after = match op {
                        WriteOp::Insert(after) | WriteOp::Update { after, .. } => {
                            Some(after.clone())
                        }
                        WriteOp::Delete { .. } => None,
                    };
                    (key.clone(), after)
                })
                .collect();
            // One batched pass per table: rows, change log, and every
            // secondary/range index each lock once per commit instead of
            // once per write (see `TableStore::apply_batch`).
            let befores = store.apply_batch(&ops, commit_ts);
            for ((key, op), before) in writes.iter().zip(befores) {
                match op {
                    WriteOp::Insert(after) => {
                        changes.push(ChangeRecord::insert(
                            table_name.clone(),
                            key.clone(),
                            after.clone(),
                        ));
                    }
                    WriteOp::Update { after, .. } => {
                        let rec = match before {
                            Some(before) => ChangeRecord::update(
                                table_name.clone(),
                                key.clone(),
                                before,
                                after.clone(),
                            ),
                            // The row vanished concurrently (only possible
                            // under weak isolation); record as an insert.
                            None => {
                                ChangeRecord::insert(table_name.clone(), key.clone(), after.clone())
                            }
                        };
                        changes.push(rec);
                    }
                    WriteOp::Delete { .. } => {
                        if let Some(before) = before {
                            changes.push(ChangeRecord::delete(
                                table_name.clone(),
                                key.clone(),
                                before,
                            ));
                        }
                    }
                }
            }
        }
        // Participant installs are clock-aware too (see the trait docs):
        // versions stamped `commit_ts` stay invisible until publication,
        // so on the fast path these run *before* the window as well.
        for participant in participants {
            changes.extend(participant.install(commit_ts));
        }

        // Phase 5 — publish in timestamp order; the written-table locks
        // are held until after publication. With installs hoisted above,
        // the ordered window now covers only the WAL buffer append (byte
        // order == commit order) and the clock bump — plus, on the
        // late-validation path, the in-window re-check and installs. The
        // simulated storage latency is charged after publishing (it
        // models the durability write that delays releasing the
        // resources, not visibility), so disjoint commits overlap their
        // storage latency.
        if !late_validation {
            self.wait_for_publication_turn(commit_ts);
        }
        let entry = CommittedTxn {
            txn_id: state.id,
            start_ts: state.start_ts,
            commit_ts,
            changes: changes.clone(),
        };
        // Durability (module docs): append the entry inside the window —
        // a memcpy into the WAL buffer, so WAL byte order == commit
        // order — and defer the (group) fsync until after the footprint
        // locks are released. Even a WAL error publishes the entry
        // (versions are installed; the timestamp sequence must stay
        // dense); the error reports durability as unconfirmed.
        let wal = self.wal();
        let mut wal_err: Option<StorageError> = None;
        let mut group_sync: Option<u64> = None;
        if let Some(w) = &wal {
            match w.append_entry(&entry) {
                Ok(lsn) if w.group_commit() => group_sync = Some(lsn),
                // Serial-fsync baseline: each commit pays its own fsync
                // inside the publication window.
                Ok(lsn) => wal_err = w.sync_to(lsn).err(),
                Err(e) => wal_err = Some(e),
            }
        }
        self.finish_publication(entry);
        if wal.is_none() {
            // The synthetic latency model stands in for the durability
            // write only when there is no real one.
            self.inner.latency.on_commit();
        }
        drop(_guards);
        drop(_serial);
        if let (Some(w), Some(lsn)) = (&wal, group_sync) {
            wal_err = w.sync_to(lsn).err();
        }
        if let Some(e) = wal_err {
            return Err(TrodError::Storage(e));
        }
        // Post-ack, locks released, durability confirmed: the cheapest
        // safe point to take a periodic environment checkpoint.
        self.maybe_checkpoint();

        Ok(CommitInfo {
            txn_id: state.id,
            start_ts: state.start_ts,
            commit_ts,
            changes,
        })
    }

    /// Advances the timestamp allocator (and the publication clock) to at
    /// least `target` by claiming and publishing empty ticks — no log
    /// entries, no installs, just clock movement.
    ///
    /// This exists for deployments that mix coordinated commits with
    /// *standalone* store-level commits (e.g. `trod-kv`'s single-store
    /// transactions), which stamp versions from their own counter: if a
    /// standalone commit pushes a resource's timestamp past this
    /// database's allocator, a coordinated commit on that resource would
    /// be vetoed at validation until the allocator catches up. Calling
    /// this with the foreign timestamp restores liveness; the veto then
    /// only fires on a mid-commit race and is retryable.
    pub fn ensure_ts_at_least(&self, target: Ts) {
        while self.inner.ts_alloc.load(Ordering::SeqCst) < target {
            // Claim the next tick (keeping the sequence dense — ordered
            // publication waits on every predecessor) and publish it
            // empty.
            let tick = self.inner.ts_alloc.fetch_add(1, Ordering::SeqCst) + 1;
            self.wait_for_publication_turn(tick);
            self.publish_tick(tick);
        }
    }

    /// Waits until the publication clock reaches `commit_ts - 1`. The
    /// wait is bounded: predecessors hold all their locks already and
    /// only have install + publish work left, so they never block on this
    /// commit. Exactly one thread — the one whose timestamp succeeds the
    /// clock — can be past the wait at a time, so everything between this
    /// call and [`Self::finish_publication`] runs in an exclusive,
    /// timestamp-ordered window without extra locking.
    fn wait_for_publication_turn(&self, commit_ts: Ts) {
        let clock = &self.inner.clock;
        if clock.load(Ordering::SeqCst) != commit_ts - 1 {
            // Brief spin for the common case (predecessor mid-publish),
            // then a few yields, then park. The yields matter on small
            // machines: with few cores the predecessor often *needs this
            // CPU* to publish, so spinning delays the very store being
            // waited on, and going straight to the condvar makes every
            // cheap commit pay a futex park/wake round-trip — a measured
            // ~25× throughput cliff at two committers on one core.
            // Yielding hands the predecessor the quantum and usually
            // makes the next check succeed without parking; it is
            // bounded, so a genuinely slow predecessor (mid-fsync) still
            // sends this thread to the condvar instead of burning CPU.
            let mut spins = 0u32;
            while clock.load(Ordering::SeqCst) != commit_ts - 1 && spins < 128 {
                spins += 1;
                std::hint::spin_loop();
            }
            let mut yields = 0u32;
            while clock.load(Ordering::SeqCst) != commit_ts - 1 && yields < 8 {
                yields += 1;
                std::thread::yield_now();
            }
            if clock.load(Ordering::SeqCst) != commit_ts - 1 {
                // SeqCst counter + publisher-side check prevents a missed
                // wakeup (see the publisher below).
                self.inner.publish_waiters.fetch_add(1, Ordering::SeqCst);
                let mut guard = self.inner.publish_mutex.lock().expect("publish mutex");
                while clock.load(Ordering::SeqCst) != commit_ts - 1 {
                    guard = self.inner.publish_cv.wait(guard).expect("publish cv");
                }
                drop(guard);
                self.inner.publish_waiters.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }

    /// Stages the log entry and bumps the clock; must only be called by
    /// the thread whose [`Self::wait_for_publication_turn`] has returned
    /// for `entry.commit_ts`. The entry goes into the sharded staging
    /// buffers, *not* the log mutex — pushing before the clock store is
    /// the happens-before edge [`Self::synced_log`] drains against, and
    /// it takes the single log mutex off the per-commit publication path.
    fn finish_publication(&self, entry: CommittedTxn) {
        let commit_ts = entry.commit_ts;
        self.inner.log_staging.push(entry);
        self.publish_tick(commit_ts);
    }

    /// Bumps the publication clock to `commit_ts` and wakes any committer
    /// parked on its publication turn. Publishing a timestamp with no
    /// staged entry is an *empty tick* — used by [`Self::ensure_ts_at_least`]
    /// and by in-window validation failures, where a timestamp was
    /// claimed but nothing was installed or logged; the timestamp
    /// sequence must stay dense for ordered publication to progress.
    fn publish_tick(&self, commit_ts: Ts) {
        self.inner.clock.store(commit_ts, Ordering::SeqCst);
        if self.inner.publish_waiters.load(Ordering::SeqCst) > 0 {
            // Taking the mutex orders this notify after any in-flight
            // waiter's check-then-wait, so the wakeup cannot be missed.
            let _guard = self.inner.publish_mutex.lock().expect("publish mutex");
            self.inner.publish_cv.notify_all();
        }
    }

    /// Locks the transaction log after draining every *published* staged
    /// entry into it, in commit order. All log readers go through here:
    /// snapshotting the publication clock before taking the log mutex is
    /// what makes the drain complete up to the snapshot (a publisher
    /// stages its entry before bumping the clock — see
    /// [`crate::log::LogStaging`]). Entries staged but not yet published
    /// stay behind for a later drain; they are invisible commits and must
    /// not be observable through the log either.
    fn synced_log(&self) -> parking_lot::MutexGuard<'_, TxnLog> {
        let published = self.inner.clock.load(Ordering::SeqCst);
        let mut log = self.inner.log.lock();
        for entry in self.inner.log_staging.drain_up_to(published) {
            log.append(entry);
        }
        log
    }

    /// Validation runs against `footprint` — the already-resolved, locked
    /// stores of every table the commit touches — so it never re-takes
    /// the global catalog lock on the hot path.
    fn validate(
        &self,
        state: &TxnState,
        footprint: &BTreeMap<&str, Arc<TableStore>>,
        ssi: bool,
    ) -> DbResult<()> {
        match state.isolation {
            IsolationLevel::ReadCommitted => Ok(()),
            IsolationLevel::SnapshotIsolation => self.validate_writes(state, footprint),
            IsolationLevel::Serializable => {
                self.validate_writes(state, footprint)?;
                self.validate_reads(state, footprint, ssi)
            }
        }
    }

    /// First-committer-wins: any of our write keys modified since we began
    /// aborts the transaction.
    fn validate_writes(
        &self,
        state: &TxnState,
        footprint: &BTreeMap<&str, Arc<TableStore>>,
    ) -> DbResult<()> {
        for (table_name, writes) in &state.writes {
            let store = &footprint[table_name.as_str()];
            for key in writes.keys() {
                if store.key_modified_after(key, state.start_ts) {
                    return Err(DbError::WriteConflict {
                        table: table_name.clone(),
                        key: key.to_string(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Serializable validation: every point read and every predicate scan
    /// must still return the same rows it returned at `start_ts`.
    ///
    /// Point reads are O(1) per key (only a chain's newest version can
    /// postdate `start_ts`). Predicate scans are validated against the
    /// per-table change log — O(Δ) in the rows committed since the
    /// transaction began, independent of table size — falling back to the
    /// full version scan only when the log was truncated inside the
    /// window (see [`crate::changelog`]).
    ///
    /// Under `ssi`, tables the transaction did not write are *unlocked*
    /// here, so this pass is optimistic: it catches conflicts that have
    /// already landed (cheap early abort, and the single-threaded
    /// decision is identical to the locked check), but a racing writer
    /// can still install after it runs. The in-window re-check
    /// ([`Self::revalidate_reads_in_window`]) is the sound one.
    fn validate_reads(
        &self,
        state: &TxnState,
        footprint: &BTreeMap<&str, Arc<TableStore>>,
        ssi: bool,
    ) -> DbResult<()> {
        for (table_name, key) in &state.read_set {
            let store = &footprint[table_name.as_str()];
            if store.key_modified_after(key, state.start_ts) {
                return Err(DbError::SerializationFailure {
                    table: table_name.clone(),
                    detail: format!("row {key} changed after transaction start"),
                });
            }
        }
        let force_full_scan = self.full_scan_validation();
        for (table_name, pred) in &state.scan_set {
            let store = &footprint[table_name.as_str()];
            let conflict = if ssi && !state.writes.contains_key(table_name) {
                // Unlocked table: the debug full-scan oracle would race
                // with concurrent installers, so run the unbounded check
                // without it (`upto = MAX` disables the oracle).
                store.predicate_conflict_in(pred, state.start_ts, Ts::MAX, force_full_scan)?
            } else {
                store.predicate_conflict_after(pred, state.start_ts, force_full_scan)?
            };
            if let Some(key) = conflict {
                return Err(DbError::SerializationFailure {
                    table: table_name.clone(),
                    detail: format!("predicate [{pred}] affected by concurrent write to {key}"),
                });
            }
        }
        Ok(())
    }

    /// The SSI in-window read re-check: runs at the commit's publication
    /// turn, so every commit with a smaller timestamp is fully published
    /// and every larger one is excluded by the `upto = commit_ts` bound —
    /// the span `(start_ts, commit_ts)` is exact, not racy. Only tables
    /// the transaction did not write are checked (written tables' locks
    /// were held through the optimistic pass, which was therefore already
    /// sound for them). An error here is a retryable serialization
    /// failure; the caller publishes the claimed timestamp as an empty
    /// tick since nothing has been installed.
    fn revalidate_reads_in_window(
        &self,
        state: &TxnState,
        footprint: &BTreeMap<&str, Arc<TableStore>>,
        commit_ts: Ts,
    ) -> DbResult<()> {
        for (table_name, key) in &state.read_set {
            if state.writes.contains_key(table_name) {
                continue;
            }
            let store = &footprint[table_name.as_str()];
            if store.key_modified_in(key, state.start_ts, commit_ts) {
                return Err(DbError::SerializationFailure {
                    table: table_name.clone(),
                    detail: format!("row {key} changed after transaction start"),
                });
            }
        }
        let force_full_scan = self.full_scan_validation();
        for (table_name, pred) in &state.scan_set {
            if state.writes.contains_key(table_name) {
                continue;
            }
            let store = &footprint[table_name.as_str()];
            if let Some(key) =
                store.predicate_conflict_in(pred, state.start_ts, commit_ts, force_full_scan)?
            {
                return Err(DbError::SerializationFailure {
                    table: table_name.clone(),
                    detail: format!("predicate [{pred}] affected by concurrent write to {key}"),
                });
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Non-transactional reads (latest committed / time travel)
    // ------------------------------------------------------------------

    /// Reads the latest committed version of a row (shared, zero-copy).
    pub fn get_latest(&self, table: &str, key: &Key) -> DbResult<Option<Arc<Row>>> {
        Ok(self.table(table)?.get_at(key, self.current_ts()))
    }

    /// Scans the latest committed state of a table (shared, zero-copy).
    pub fn scan_latest(&self, table: &str, pred: &Predicate) -> DbResult<Vec<(Key, Arc<Row>)>> {
        self.table(table)?.scan_at(pred, self.current_ts())
    }

    /// Reads a row as of an earlier commit timestamp (time travel).
    pub fn get_as_of(&self, table: &str, key: &Key, ts: Ts) -> DbResult<Option<Arc<Row>>> {
        Ok(self.table(table)?.get_at(key, ts))
    }

    /// Scans a table as of an earlier commit timestamp (time travel).
    pub fn scan_as_of(
        &self,
        table: &str,
        pred: &Predicate,
        ts: Ts,
    ) -> DbResult<Vec<(Key, Arc<Row>)>> {
        self.table(table)?.scan_at(pred, ts)
    }

    /// Top-k scan through a value-ordered range index: rows matching
    /// `pred` in `order_col` order (ties by primary key), truncated to
    /// `limit` — O(k) in the result size instead of scan + sort.
    /// Returns `Ok(None)` when the table cannot serve the order from an
    /// index (no range index on the column, or the column is nullable
    /// with no predicate bound to exclude NULLs — NULLs are never
    /// indexed); callers then fall back to scan + sort. The result is
    /// exactly what scan + stable sort + truncate would produce.
    pub fn scan_ordered_as_of(
        &self,
        table: &str,
        pred: &Predicate,
        order_col: &str,
        descending: bool,
        limit: usize,
        ts: Ts,
    ) -> DbResult<Option<ScanRows>> {
        self.table(table)?
            .scan_ordered_limit(pred, order_col, descending, limit, ts)
    }

    // ------------------------------------------------------------------
    // Transaction log
    // ------------------------------------------------------------------

    /// All committed transactions, in commit order.
    pub fn log_entries(&self) -> Vec<CommittedTxn> {
        self.synced_log().entries().to_vec()
    }

    /// Committed transactions with commit timestamp greater than `ts`.
    pub fn log_since(&self, ts: Ts) -> Vec<CommittedTxn> {
        self.synced_log().since(ts)
    }

    /// Committed transactions with commit timestamp in `(after, up_to]`.
    pub fn log_between(&self, after: Ts, up_to: Ts) -> Vec<CommittedTxn> {
        self.synced_log().between(after, up_to)
    }

    /// The log entry for a given transaction id.
    pub fn log_entry_for(&self, txn_id: TxnId) -> Option<CommittedTxn> {
        self.synced_log().entry_for(txn_id).cloned()
    }

    /// Number of committed (writing) transactions.
    pub fn log_len(&self) -> usize {
        self.synced_log().len()
    }

    /// The highest horizon [`Database::gc_before`] has truncated at: log
    /// entries *and row versions* at or below this timestamp are gone
    /// (possibly spilled to a [`RetentionPolicy`]), so [`Database::fork_at`]
    /// and time-travel reads below it cannot be answered from live state —
    /// callers must reconstruct from spilled aligned history instead (see
    /// the module docs). 0 if GC never truncated.
    pub fn log_truncated_below(&self) -> Ts {
        self.synced_log().truncated_below()
    }

    /// Installs (or clears) the aligned-history retention policy: every
    /// subsequent [`Database::gc_before`] spills the log entries it
    /// truncates into the policy before dropping them, so the aligned
    /// history stays reachable for debugging beyond the GC horizon. The
    /// truncation floor at install time is recorded as the policy's
    /// coverage floor ([`Database::retention_coverage_floor`]) — install
    /// before the first GC for gap-free (floor 0) coverage.
    pub fn set_retention_policy(&self, policy: Option<Arc<dyn RetentionPolicy>>) {
        // Read the floor under the retention write lock so a concurrent
        // gc_before cannot truncate between the read and the install.
        let mut slot = self.inner.retention.write();
        *slot = policy.map(|p| {
            let floor = match slot.as_ref() {
                // Re-installing the same policy is idempotent: its spill
                // has covered everything since the original install, so
                // the original coverage floor still holds — resetting it
                // to the current (higher) floor would silently disown a
                // complete spill.
                Some((old, old_floor)) if std::ptr::addr_eq(Arc::as_ptr(old), Arc::as_ptr(&p)) => {
                    *old_floor
                }
                _ => self.synced_log().truncated_below(),
            };
            (p, floor)
        });
    }

    /// True if a retention policy is installed.
    pub fn has_retention_policy(&self) -> bool {
        self.inner.retention.read().is_some()
    }

    /// The truncation floor at the moment the current retention policy
    /// was installed, or `None` without a policy. History at or below
    /// this floor was truncated *before* retention existed and is
    /// unrecoverable; the policy's spill is complete from the first
    /// commit exactly when this is 0 — the condition the debugger checks
    /// before reconstructing a fork from spilled history.
    pub fn retention_coverage_floor(&self) -> Option<Ts> {
        self.inner
            .retention
            .read()
            .as_ref()
            .map(|(_, floor)| *floor)
    }

    /// The installed retention policy together with its coverage floor
    /// (one consistent read). The debugger uses the policy handle to
    /// verify *by identity* that the spill it plans to reconstruct a fork
    /// from is the store this database actually spills into — a foreign
    /// policy's coverage proves nothing about the debugger's own spill.
    pub fn retention_policy(&self) -> Option<(Arc<dyn RetentionPolicy>, Ts)> {
        self.inner
            .retention
            .read()
            .as_ref()
            .map(|(p, floor)| (p.clone(), *floor))
    }

    // ------------------------------------------------------------------
    // Snapshots, forking, replay support
    // ------------------------------------------------------------------

    /// Registers a named snapshot at the current commit timestamp and
    /// returns that timestamp.
    pub fn snapshot(&self, name: impl Into<String>) -> DbResult<Ts> {
        let name = name.into();
        let ts = self.current_ts();
        let mut snaps = self.inner.snapshots.lock();
        if snaps.contains_key(&name) {
            return Err(DbError::SnapshotExists(name));
        }
        snaps.insert(name, ts);
        Ok(ts)
    }

    /// Looks up a named snapshot's timestamp.
    pub fn snapshot_ts(&self, name: &str) -> DbResult<Ts> {
        self.inner
            .snapshots
            .lock()
            .get(name)
            .copied()
            .ok_or_else(|| DbError::NoSuchSnapshot(name.to_string()))
    }

    /// Names of registered snapshots.
    pub fn snapshot_names(&self) -> Vec<String> {
        self.inner.snapshots.lock().keys().cloned().collect()
    }

    /// Creates a new, independent database containing the state visible at
    /// `ts` (the "development database" of the paper's Figure 2). The fork
    /// keeps the same schemas and indexes; its clock starts at `ts` so the
    /// relative order of subsequent commits is comparable with the origin.
    pub fn fork_at(&self, ts: Ts) -> DbResult<Database> {
        let fork = Database::with_profile(self.profile());
        let tables = self.inner.tables.read();
        for (name, store) in tables.iter() {
            fork.create_table(name.clone(), store.schema().clone())?;
            let fork_store = fork.table(name)?;
            for (key, row) in store.materialize_at(ts) {
                fork_store.install(&key, row, ts.max(1));
            }
            for column in store.indexed_columns() {
                fork_store.create_index(&column)?;
            }
            for column in store.range_indexed_columns() {
                fork_store.create_range_index(&column)?;
            }
        }
        fork.inner.clock.store(ts.max(1), Ordering::SeqCst);
        fork.inner.ts_alloc.store(ts.max(1), Ordering::SeqCst);
        Ok(fork)
    }

    /// Creates a new, empty database with the same schemas and indexes.
    pub fn fork_empty(&self) -> DbResult<Database> {
        let fork = Database::with_profile(self.profile());
        let tables = self.inner.tables.read();
        for (name, store) in tables.iter() {
            fork.create_table(name.clone(), store.schema().clone())?;
            let fork_store = fork.table(name)?;
            for column in store.indexed_columns() {
                fork_store.create_index(&column)?;
            }
            for column in store.range_indexed_columns() {
                fork_store.create_range_index(&column)?;
            }
        }
        Ok(fork)
    }

    /// Applies externally captured change records as a single synthetic
    /// committed transaction, bypassing validation. This is the primitive
    /// the TROD replay engine uses to inject "the state changes the
    /// upcoming transaction depends on" (paper §3.5) into a development
    /// database. Inserts behave as upserts so injection is idempotent.
    pub fn apply_changes(&self, changes: &[ChangeRecord]) -> DbResult<CommitInfo> {
        self.apply_changes_with(changes, &[]).map_err(|e| match e {
            TrodError::Relational(e) => e,
            TrodError::Storage(e) => DbError::Storage(e),
            // Unreachable without participants; keep the error faithful
            // rather than panicking.
            TrodError::KeyValue(e) => DbError::Invalid(format!("participant error: {e}")),
        })
    }

    /// [`Database::apply_changes`] with commit participants: the synthetic
    /// commit spans other stores exactly like a live coordinated commit —
    /// participant resources merge into the sorted lock order, participant
    /// validation runs before the timestamp is claimed, and participant
    /// installs run inside the ordered publication window, landing in the
    /// same aligned log entry. This is how the replay engine re-applies a
    /// polyglot transaction's `kv:<namespace>` records through the same
    /// commit path the production transaction took.
    pub fn apply_changes_with(
        &self,
        changes: &[ChangeRecord],
        participants: &[&dyn CommitParticipant],
    ) -> TrodResult<CommitInfo> {
        self.apply_changes_inner(changes, participants, None)
    }

    /// Re-applies a recovered aligned-history entry *verbatim* through
    /// the participant path: the entry keeps its original `txn_id`,
    /// `start_ts` and `commit_ts` (the timestamp allocator is advanced to
    /// claim exactly `entry.commit_ts`), and the logged entry preserves
    /// every change record — including `kv:<namespace>` ones — so replayed
    /// history is indistinguishable from the original. Only relational
    /// changes are installed here; `participants` install the kv half
    /// (empty for relational-only recovery, which still preserves kv
    /// records in the log). Recovery replays entries in commit order;
    /// a timestamp the allocator cannot claim (raced by a concurrent
    /// commit) yields [`StorageError::Recovery`].
    pub fn apply_entry_with(
        &self,
        entry: &CommittedTxn,
        participants: &[&dyn CommitParticipant],
    ) -> TrodResult<CommitInfo> {
        let relational: Vec<ChangeRecord> = entry
            .changes
            .iter()
            .filter(|c| !crate::cdc::is_kv_table(&c.table))
            .cloned()
            .collect();
        self.apply_changes_inner(&relational, participants, Some(entry))
    }

    fn apply_changes_inner(
        &self,
        changes: &[ChangeRecord],
        participants: &[&dyn CommitParticipant],
        replay: Option<&CommittedTxn>,
    ) -> TrodResult<CommitInfo> {
        let txn_id = match replay {
            // Keep the recovered id and ensure future transactions never
            // reuse it.
            Some(entry) => {
                self.inner
                    .next_txn_id
                    .fetch_max(entry.txn_id + 1, Ordering::Relaxed);
                entry.txn_id
            }
            None => self.inner.next_txn_id.fetch_add(1, Ordering::Relaxed),
        };
        // Resolve every table and run every fallible check (schema
        // validation) BEFORE locking and allocating a timestamp, so a bad
        // record can never leave a half-applied synthetic commit behind.
        let mut footprint: BTreeMap<&str, Arc<TableStore>> = BTreeMap::new();
        for change in changes {
            if !footprint.contains_key(change.table.as_str()) {
                footprint.insert(change.table.as_str(), self.table(&change.table)?);
            }
            if let ChangeOp::Insert { after } | ChangeOp::Update { after, .. } = &change.op {
                footprint[change.table.as_str()]
                    .schema()
                    .validate_row(&change.table, after)?;
            }
        }

        if let Some(entry) = replay {
            // Position the allocator so the claim below yields exactly the
            // entry's original commit timestamp; empty ticks fill any
            // read-only gaps in the recovered sequence.
            self.ensure_ts_at_least(entry.commit_ts.saturating_sub(1));
        }

        // Same locking discipline as commit_coordinated: the union of the
        // relational footprint and the participants' resources, locked in
        // sorted name order and held through publication.
        let resources: Vec<(String, Arc<Mutex<()>>)> = if participants.is_empty() {
            Vec::new()
        } else {
            let mut resources: Vec<(String, Arc<Mutex<()>>)> = footprint
                .iter()
                .map(|(name, store)| (name.to_string(), store.commit_lock().clone()))
                .collect();
            for participant in participants {
                for resource in participant.resources() {
                    if !resources.iter().any(|(name, _)| *name == resource) {
                        let lock = participant.resource_lock(&resource);
                        resources.push((resource, lock));
                    }
                }
            }
            resources.sort_by(|a, b| a.0.cmp(&b.0));
            resources
        };
        let _serial = self.serial_commit().then(|| self.inner.serial_lock.lock());
        let _guards: Vec<_> = if participants.is_empty() {
            footprint
                .values()
                .map(|store| store.commit_lock().lock())
                .collect()
        } else {
            resources.iter().map(|(_, lock)| lock.lock()).collect()
        };

        // Participants can still veto here (e.g. a store whose timestamp
        // monotonicity a foreign commit outran); nothing is installed yet.
        let min_commit_ts = self.inner.ts_alloc.load(Ordering::SeqCst) + 1;
        for participant in participants {
            participant.validate(min_commit_ts)?;
        }

        let commit_ts = self.inner.ts_alloc.fetch_add(1, Ordering::SeqCst) + 1;
        if let Some(entry) = replay {
            if commit_ts != entry.commit_ts {
                // A concurrent commit raced the replay. Nothing is
                // installed yet, but the claimed tick must still publish
                // (the timestamp sequence is dense) — publish it empty,
                // exactly like ensure_ts_at_least.
                self.wait_for_publication_turn(commit_ts);
                self.publish_tick(commit_ts);
                return Err(TrodError::Storage(StorageError::Recovery {
                    detail: format!(
                        "cannot replay commit ts {} verbatim: allocator already claimed {}",
                        entry.commit_ts, commit_ts
                    ),
                }));
            }
        }
        // Batch the installs per table (in encounter-run order, preserving
        // the record sequence within and across tables) so each table's
        // rows, change log and indexes lock once per run instead of once
        // per record — the same batched maintenance the live commit path
        // uses.
        let mut applied = Vec::with_capacity(changes.len());
        let mut by_table: Vec<(&str, Vec<BatchOp>)> = Vec::new();
        for change in changes {
            let op = match &change.op {
                ChangeOp::Insert { after } | ChangeOp::Update { after, .. } => Some(after.clone()),
                ChangeOp::Delete { .. } => None,
            };
            match by_table.last_mut() {
                Some((t, ops)) if *t == change.table.as_str() => {
                    ops.push((change.key.clone(), op));
                }
                _ => by_table.push((change.table.as_str(), vec![(change.key.clone(), op)])),
            }
            applied.push(change.clone());
        }
        for (table, ops) in &by_table {
            footprint[table].apply_batch(ops, commit_ts);
        }
        // Participant installs run inside the ordered publication window,
        // and their change records join the same aligned log entry. (The
        // replay path keeps them in-window: recovery installs bypass
        // participant validation, so publishing only after they land
        // keeps recovered state invisible until it is complete.)
        self.wait_for_publication_turn(commit_ts);
        for participant in participants {
            applied.extend(participant.install(commit_ts));
        }
        let (start_ts, logged_changes) = match replay {
            // Verbatim: the recovered entry keeps its original snapshot
            // timestamp and every change record, kv ones included.
            Some(entry) => (entry.start_ts, entry.changes.clone()),
            None => (commit_ts - 1, applied.clone()),
        };
        let entry = CommittedTxn {
            txn_id,
            start_ts,
            commit_ts,
            changes: logged_changes,
        };
        // Live synthetic commits on a durable database are logged like
        // any other commit. Never during replay: recovery runs before the
        // WAL is attached, and re-appending recovered entries would
        // duplicate them.
        let wal = if replay.is_none() { self.wal() } else { None };
        let mut wal_err: Option<StorageError> = None;
        let mut group_sync: Option<u64> = None;
        if let Some(w) = &wal {
            match w.append_entry(&entry) {
                Ok(lsn) if w.group_commit() => group_sync = Some(lsn),
                Ok(lsn) => wal_err = w.sync_to(lsn).err(),
                Err(e) => wal_err = Some(e),
            }
        }
        self.finish_publication(entry);
        drop(_guards);
        drop(_serial);
        if let (Some(w), Some(lsn)) = (&wal, group_sync) {
            wal_err = w.sync_to(lsn).err();
        }
        if let Some(e) = wal_err {
            return Err(TrodError::Storage(e));
        }
        Ok(CommitInfo {
            txn_id,
            start_ts,
            commit_ts,
            changes: applied,
        })
    }

    /// Garbage collects row versions not visible at or after `ts` and
    /// truncates the transaction log below `ts`. Returns (versions
    /// dropped, log entries dropped).
    ///
    /// The horizon is clamped to the active-transaction watermark
    /// ([`Database::min_active_start_ts`]): GC never drops a version an
    /// active transaction can still read, and never truncates a change
    /// log inside an active transaction's validation window — so
    /// truncation can be requested aggressively (e.g. at `current_ts()`)
    /// without ever forcing serializable validation onto the full-scan
    /// fallback.
    pub fn gc_before(&self, ts: Ts) -> (usize, usize) {
        let horizon = ts.min(self.inner.registry.watermark());
        // Truncate the log (raising the truncation floor) BEFORE dropping
        // row versions: a concurrent fork that reads the floor after this
        // point takes the spilled-reconstruction path, and one that read
        // the old floor forks at a timestamp whose versions this GC never
        // drops (GC keeps the newest version at or below `horizon`, so
        // state at any ts >= horizon stays materialisable mid-flight).
        // The reverse order would let a fork pass the floor check while
        // its versions were already gone — a silently wrong fork.
        // The retention read guard is held across the truncation (lock
        // order retention → log, matching `set_retention_policy`): a
        // policy installed concurrently either sees the log before this
        // truncation (and records the pre-GC floor as its coverage) or
        // after it (recording the raised floor) — never a floor that
        // promises coverage this GC silently dropped.
        let retention = self.inner.retention.read();
        let logs = {
            let mut log = self.synced_log();
            match retention.as_ref().map(|(p, _)| p) {
                Some(policy) => {
                    // Spill-before-truncate, under the log lock: the
                    // aligned entries move atomically from the log to the
                    // retention store — concurrent GCs cannot interleave
                    // spills out of commit order, and no reader can
                    // observe the entries in neither place.
                    let drained = log.truncate_before_drain(horizon);
                    let n = drained.len();
                    if n > 0 {
                        policy.spill(drained);
                    }
                    n
                }
                None => log.truncate_before(horizon),
            }
        };
        drop(retention);
        let mut versions = 0;
        for store in self.inner.tables.read().values() {
            versions += store.gc_before(horizon);
        }
        // Compact sealed WAL segments wholly below the raised floor into
        // immutable cold files — best-effort: an error leaves the sealed
        // originals in place (counted in the WAL stats) and a later GC
        // retries. A compaction boundary is also a natural checkpoint
        // boundary (module docs), so take one if enough bytes accrued.
        if let Some(wal) = self.wal() {
            let _ = wal.compact_below(self.log_truncated_below());
            self.maybe_checkpoint();
        }
        (versions, logs)
    }

    /// Current statistics.
    pub fn stats(&self) -> DbStats {
        let tables = self.inner.tables.read();
        let ts = self.current_ts();
        DbStats {
            tables: tables.len(),
            live_rows: tables.values().map(|t| t.count_at(ts)).sum(),
            total_versions: tables.values().map(|t| t.version_count()).sum(),
            committed_txns: self.synced_log().len(),
            current_ts: ts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::builder()
            .column("id", DataType::Int)
            .column("v", DataType::Text)
            .primary_key(&["id"])
            .build()
            .unwrap()
    }

    fn populated_db() -> Database {
        let db = Database::new();
        db.create_table("t", schema()).unwrap();
        let mut txn = db.begin();
        txn.insert("t", row![1i64, "one"]).unwrap();
        txn.insert("t", row![2i64, "two"]).unwrap();
        txn.commit().unwrap();
        db
    }

    #[test]
    fn catalog_operations() {
        let db = Database::new();
        db.create_table("a", schema()).unwrap();
        assert!(db.has_table("a"));
        assert!(matches!(
            db.create_table("a", schema()),
            Err(DbError::TableExists(_))
        ));
        assert_eq!(db.table_names(), vec!["a".to_string()]);
        assert_eq!(db.schema_of("a").unwrap().arity(), 2);
        db.drop_table("a").unwrap();
        assert!(!db.has_table("a"));
        assert!(db.drop_table("a").is_err());
    }

    #[test]
    fn serializable_write_skew_is_prevented() {
        // Classic write skew: two transactions each read both rows and
        // update the other one. Under serializability one must abort.
        let db = populated_db();
        let mut t1 = db.begin();
        let mut t2 = db.begin();
        let _ = t1.scan("t", &Predicate::True).unwrap();
        let _ = t2.scan("t", &Predicate::True).unwrap();
        t1.update("t", &Key::single(1i64), row![1i64, "t1"])
            .unwrap();
        t2.update("t", &Key::single(2i64), row![2i64, "t2"])
            .unwrap();
        assert!(t1.commit().is_ok());
        let err = t2.commit().unwrap_err();
        assert!(matches!(err, DbError::SerializationFailure { .. }));
    }

    #[test]
    fn snapshot_isolation_allows_write_skew_but_not_lost_updates() {
        let db = populated_db();
        // Write skew is admitted under SI.
        let mut t1 = db.begin_with(IsolationLevel::SnapshotIsolation);
        let mut t2 = db.begin_with(IsolationLevel::SnapshotIsolation);
        let _ = t1.scan("t", &Predicate::True).unwrap();
        let _ = t2.scan("t", &Predicate::True).unwrap();
        t1.update("t", &Key::single(1i64), row![1i64, "t1"])
            .unwrap();
        t2.update("t", &Key::single(2i64), row![2i64, "t2"])
            .unwrap();
        assert!(t1.commit().is_ok());
        assert!(t2.commit().is_ok());

        // Lost update (same key) is rejected: first committer wins.
        let mut t3 = db.begin_with(IsolationLevel::SnapshotIsolation);
        let mut t4 = db.begin_with(IsolationLevel::SnapshotIsolation);
        t3.update("t", &Key::single(1i64), row![1i64, "t3"])
            .unwrap();
        t4.update("t", &Key::single(1i64), row![1i64, "t4"])
            .unwrap();
        assert!(t3.commit().is_ok());
        assert!(matches!(
            t4.commit().unwrap_err(),
            DbError::WriteConflict { .. }
        ));
    }

    #[test]
    fn read_committed_admits_the_toctou_anomaly() {
        // This is the MDL-59854 shape: both transactions check that a row
        // does not exist, then both insert... except inserts of the same
        // key are still caught by the primary-key constraint. The anomaly
        // the paper's bug needs is *two distinct rows* representing the
        // same logical subscription, which read committed admits.
        let db = Database::new();
        let s = Schema::builder()
            .column("id", DataType::Int)
            .column("user_id", DataType::Text)
            .column("forum", DataType::Text)
            .primary_key(&["id"])
            .build()
            .unwrap();
        db.create_table("forum_sub", s).unwrap();

        let check = |txn: &mut Transaction| {
            txn.exists(
                "forum_sub",
                &Predicate::eq("user_id", "U1").and(Predicate::eq("forum", "F2")),
            )
            .unwrap()
        };

        let mut t1 = db.begin_with(IsolationLevel::ReadCommitted);
        let mut t2 = db.begin_with(IsolationLevel::ReadCommitted);
        assert!(!check(&mut t1));
        assert!(!check(&mut t2));
        t1.insert("forum_sub", row![1i64, "U1", "F2"]).unwrap();
        t2.insert("forum_sub", row![2i64, "U1", "F2"]).unwrap();
        t1.commit().unwrap();
        t2.commit().unwrap();

        let dups = db
            .scan_latest(
                "forum_sub",
                &Predicate::eq("user_id", "U1").and(Predicate::eq("forum", "F2")),
            )
            .unwrap();
        assert_eq!(dups.len(), 2, "duplicate subscription rows exist");
    }

    #[test]
    fn serializable_prevents_the_toctou_anomaly_in_one_txn() {
        // When the check and the insert share one serializable transaction
        // (the paper's suggested fix), the second committer aborts.
        let db = Database::new();
        let s = Schema::builder()
            .column("id", DataType::Int)
            .column("user_id", DataType::Text)
            .column("forum", DataType::Text)
            .primary_key(&["id"])
            .build()
            .unwrap();
        db.create_table("forum_sub", s).unwrap();

        let pred = Predicate::eq("user_id", "U1").and(Predicate::eq("forum", "F2"));
        let mut t1 = db.begin();
        let mut t2 = db.begin();
        assert!(!t1.exists("forum_sub", &pred).unwrap());
        assert!(!t2.exists("forum_sub", &pred).unwrap());
        t1.insert("forum_sub", row![1i64, "U1", "F2"]).unwrap();
        t2.insert("forum_sub", row![2i64, "U1", "F2"]).unwrap();
        assert!(t1.commit().is_ok());
        let err = t2.commit().unwrap_err();
        assert!(matches!(err, DbError::SerializationFailure { .. }));
    }

    #[test]
    fn aborted_commit_installs_nothing() {
        // Two read-committed transactions both insert an overlapping key
        // plus a private one. The second commit must abort on the
        // duplicate WITHOUT installing its private row, advancing the
        // clock, or appending anything to the table's change log —
        // a partial install would expose uncommitted data and poison
        // serializable validation with phantom change-log entries.
        let db = Database::new();
        db.create_table("t", schema()).unwrap();

        let mut t1 = db.begin_with(IsolationLevel::ReadCommitted);
        let mut t2 = db.begin_with(IsolationLevel::ReadCommitted);
        t1.insert("t", row![1i64, "t1-private"]).unwrap();
        t1.insert("t", row![5i64, "shared"]).unwrap();
        t2.insert("t", row![2i64, "t2-private"]).unwrap();
        t2.insert("t", row![5i64, "shared"]).unwrap();
        t1.commit().unwrap();
        let ts_after_t1 = db.current_ts();
        let log_len_after_t1 = db.table("t").unwrap().changelog().len();

        let err = t2.commit().unwrap_err();
        assert!(matches!(err, DbError::DuplicateKey { .. }));
        // Nothing from t2 leaked: no row, no clock advance, no log entry.
        assert_eq!(db.get_latest("t", &Key::single(2i64)).unwrap(), None);
        assert_eq!(db.current_ts(), ts_after_t1);
        assert_eq!(db.table("t").unwrap().changelog().len(), log_len_after_t1);

        // A serializable transaction scanning the whole table commits
        // cleanly — no phantom conflict from the aborted commit.
        let mut t3 = db.begin();
        let rows = t3.scan("t", &Predicate::True).unwrap();
        assert_eq!(rows.len(), 2);
        t3.insert("t", row![9i64, "after"]).unwrap();
        assert!(t3.commit().is_ok());
    }

    #[test]
    fn time_travel_reads_past_states() {
        let db = populated_db();
        let ts_before = db.current_ts();
        let mut txn = db.begin();
        txn.update("t", &Key::single(1i64), row![1i64, "updated"])
            .unwrap();
        txn.commit().unwrap();

        assert_eq!(
            db.get_as_of("t", &Key::single(1i64), ts_before).unwrap(),
            Some(std::sync::Arc::new(row![1i64, "one"]))
        );
        assert_eq!(
            db.get_latest("t", &Key::single(1i64)).unwrap(),
            Some(std::sync::Arc::new(row![1i64, "updated"]))
        );
        assert_eq!(
            db.scan_as_of("t", &Predicate::True, ts_before)
                .unwrap()
                .len(),
            2
        );
    }

    #[test]
    fn log_records_commits_in_order() {
        let db = populated_db();
        let mut txn = db.begin();
        txn.update("t", &Key::single(2i64), row![2i64, "two2"])
            .unwrap();
        txn.commit().unwrap();
        let log = db.log_entries();
        assert_eq!(log.len(), 2);
        assert!(log[0].commit_ts < log[1].commit_ts);
        assert_eq!(db.log_since(log[0].commit_ts).len(), 1);
        assert_eq!(db.log_len(), 2);
        assert!(db.log_entry_for(log[1].txn_id).is_some());
    }

    #[test]
    fn snapshots_and_fork_at() {
        let db = populated_db();
        let snap_ts = db.snapshot("before-bug").unwrap();
        assert_eq!(db.snapshot_ts("before-bug").unwrap(), snap_ts);
        assert!(db.snapshot("before-bug").is_err());
        assert!(db.snapshot_ts("missing").is_err());
        assert_eq!(db.snapshot_names(), vec!["before-bug".to_string()]);

        let mut txn = db.begin();
        txn.insert("t", row![3i64, "three"]).unwrap();
        txn.commit().unwrap();

        let fork = db.fork_at(snap_ts).unwrap();
        assert_eq!(fork.scan_latest("t", &Predicate::True).unwrap().len(), 2);
        // The fork is independent.
        let mut ftxn = fork.begin();
        ftxn.insert("t", row![10i64, "fork-only"]).unwrap();
        ftxn.commit().unwrap();
        assert_eq!(db.scan_latest("t", &Predicate::True).unwrap().len(), 3);
        assert_eq!(fork.scan_latest("t", &Predicate::True).unwrap().len(), 3);
    }

    #[test]
    fn fork_empty_copies_schemas_only() {
        let db = populated_db();
        db.create_index("t", "v").unwrap();
        let fork = db.fork_empty().unwrap();
        assert!(fork.has_table("t"));
        assert_eq!(fork.scan_latest("t", &Predicate::True).unwrap().len(), 0);
        assert_eq!(
            fork.table("t").unwrap().indexed_columns(),
            vec!["v".to_string()]
        );
    }

    #[test]
    fn apply_changes_injects_state() {
        let db = populated_db();
        let changes = vec![
            ChangeRecord::insert("t", Key::single(9i64), row![9i64, "injected"]),
            ChangeRecord::update(
                "t",
                Key::single(1i64),
                row![1i64, "one"],
                row![1i64, "patched"],
            ),
            ChangeRecord::delete("t", Key::single(2i64), row![2i64, "two"]),
        ];
        let info = db.apply_changes(&changes).unwrap();
        assert_eq!(info.changes.len(), 3);
        assert_eq!(
            db.get_latest("t", &Key::single(9i64)).unwrap(),
            Some(std::sync::Arc::new(row![9i64, "injected"]))
        );
        assert_eq!(
            db.get_latest("t", &Key::single(1i64)).unwrap(),
            Some(std::sync::Arc::new(row![1i64, "patched"]))
        );
        assert_eq!(db.get_latest("t", &Key::single(2i64)).unwrap(), None);
    }

    #[test]
    fn gc_reclaims_history() {
        let db = populated_db();
        for i in 0..5 {
            let mut txn = db.begin();
            txn.update("t", &Key::single(1i64), row![1i64, format!("v{i}")])
                .unwrap();
            txn.commit().unwrap();
        }
        let before = db.stats();
        assert!(before.total_versions > before.live_rows);
        let (versions, logs) = db.gc_before(db.current_ts());
        assert!(versions > 0);
        assert!(logs > 0);
        let after = db.stats();
        assert_eq!(after.total_versions, after.live_rows);
    }

    #[test]
    fn gc_spills_truncated_log_entries_to_the_retention_policy() {
        #[derive(Default)]
        struct Collecting(Mutex<Vec<CommittedTxn>>);
        impl RetentionPolicy for Collecting {
            fn spill(&self, entries: Vec<CommittedTxn>) {
                self.0.lock().extend(entries);
            }
        }

        let db = populated_db();
        for i in 0..3 {
            let mut txn = db.begin();
            txn.update("t", &Key::single(1i64), row![1i64, format!("v{i}")])
                .unwrap();
            txn.commit().unwrap();
        }
        let policy = Arc::new(Collecting::default());
        db.set_retention_policy(Some(policy.clone()));
        assert!(db.has_retention_policy());

        let live_before = db.log_entries();
        let (_, logs) = db.gc_before(db.current_ts());
        assert_eq!(logs, live_before.len());
        assert_eq!(db.log_len(), 0);
        assert_eq!(db.log_truncated_below(), db.current_ts());
        // Every truncated entry survived in the policy, in commit order.
        let spilled = policy.0.lock().clone();
        assert_eq!(spilled, live_before);

        // Later GCs spill only the new tail.
        let mut txn = db.begin();
        txn.update("t", &Key::single(2i64), row![2i64, "tail"])
            .unwrap();
        txn.commit().unwrap();
        db.gc_before(db.current_ts());
        assert_eq!(policy.0.lock().len(), live_before.len() + 1);
    }

    #[test]
    fn stats_reflect_contents() {
        let db = populated_db();
        let stats = db.stats();
        assert_eq!(stats.tables, 1);
        assert_eq!(stats.live_rows, 2);
        assert_eq!(stats.committed_txns, 1);
        assert!(stats.current_ts > 0);
    }

    #[test]
    fn concurrent_inserts_from_many_threads_all_commit() {
        let db = Database::new();
        db.create_table("t", schema()).unwrap();
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let db = db.clone();
                std::thread::spawn(move || {
                    for i in 0..25i64 {
                        let id = t * 1000 + i;
                        loop {
                            let mut txn = db.begin();
                            txn.insert("t", row![id, format!("w{t}")]).unwrap();
                            match txn.commit() {
                                Ok(_) => break,
                                Err(e) if e.is_retryable() => continue,
                                Err(e) => panic!("unexpected error: {e}"),
                            }
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(db.scan_latest("t", &Predicate::True).unwrap().len(), 200);
        assert_eq!(db.log_len(), 200);
        // Commit timestamps are strictly increasing.
        let log = db.log_entries();
        for pair in log.windows(2) {
            assert!(pair[0].commit_ts < pair[1].commit_ts);
        }
    }
}
