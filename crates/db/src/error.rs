//! Error types for the storage engine.

use std::fmt;

use crate::value::DataType;

/// Errors returned by the storage engine.
///
/// The variants distinguish programming errors (schema misuse, type
/// mismatches) from runtime outcomes the caller is expected to handle
/// (write conflicts, serialization failures, duplicate keys).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// A table with this name already exists.
    TableExists(String),
    /// No table with this name exists.
    NoSuchTable(String),
    /// No column with this name exists in the referenced table.
    NoSuchColumn { table: String, column: String },
    /// A row value did not match the column's declared type.
    TypeMismatch {
        table: String,
        column: String,
        expected: DataType,
        actual: String,
    },
    /// A non-nullable column received a NULL value.
    NullViolation { table: String, column: String },
    /// The row has the wrong number of columns for the table schema.
    ArityMismatch {
        table: String,
        expected: usize,
        actual: usize,
    },
    /// An insert would create a second row with the same primary key.
    DuplicateKey { table: String, key: String },
    /// The referenced primary key does not exist.
    NoSuchKey { table: String, key: String },
    /// Two transactions wrote the same row; the later committer loses.
    WriteConflict { table: String, key: String },
    /// Serializable validation failed: a row or predicate read by this
    /// transaction was modified by a concurrently committed transaction.
    SerializationFailure { table: String, detail: String },
    /// The transaction has already committed or aborted.
    TransactionClosed,
    /// A snapshot with this name already exists.
    SnapshotExists(String),
    /// No snapshot with this name exists.
    NoSuchSnapshot(String),
    /// An invalid operation for the current configuration.
    Invalid(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::TableExists(t) => write!(f, "table `{t}` already exists"),
            DbError::NoSuchTable(t) => write!(f, "no such table `{t}`"),
            DbError::NoSuchColumn { table, column } => {
                write!(f, "no column `{column}` in table `{table}`")
            }
            DbError::TypeMismatch {
                table,
                column,
                expected,
                actual,
            } => write!(
                f,
                "type mismatch in `{table}.{column}`: expected {expected}, got {actual}"
            ),
            DbError::NullViolation { table, column } => {
                write!(f, "column `{table}.{column}` is not nullable")
            }
            DbError::ArityMismatch {
                table,
                expected,
                actual,
            } => write!(
                f,
                "row for table `{table}` has {actual} values, schema has {expected} columns"
            ),
            DbError::DuplicateKey { table, key } => {
                write!(f, "duplicate primary key {key} in table `{table}`")
            }
            DbError::NoSuchKey { table, key } => {
                write!(f, "no row with primary key {key} in table `{table}`")
            }
            DbError::WriteConflict { table, key } => {
                write!(f, "write-write conflict on `{table}` key {key}")
            }
            DbError::SerializationFailure { table, detail } => {
                write!(f, "serialization failure on `{table}`: {detail}")
            }
            DbError::TransactionClosed => write!(f, "transaction is no longer active"),
            DbError::SnapshotExists(s) => write!(f, "snapshot `{s}` already exists"),
            DbError::NoSuchSnapshot(s) => write!(f, "no such snapshot `{s}`"),
            DbError::Invalid(msg) => write!(f, "invalid operation: {msg}"),
        }
    }
}

impl std::error::Error for DbError {}

/// Convenience result alias used across the engine.
pub type DbResult<T> = Result<T, DbError>;

impl DbError {
    /// Returns true if the error is a transient concurrency failure the
    /// caller may retry (write conflicts and serialization failures).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            DbError::WriteConflict { .. } | DbError::SerializationFailure { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DbError::NoSuchTable("users".into());
        assert!(e.to_string().contains("users"));
        let e = DbError::DuplicateKey {
            table: "t".into(),
            key: "[Int(1)]".into(),
        };
        assert!(e.to_string().contains("duplicate"));
    }

    #[test]
    fn retryable_classification() {
        assert!(DbError::WriteConflict {
            table: "t".into(),
            key: "k".into()
        }
        .is_retryable());
        assert!(DbError::SerializationFailure {
            table: "t".into(),
            detail: "d".into()
        }
        .is_retryable());
        assert!(!DbError::NoSuchTable("t".into()).is_retryable());
        assert!(!DbError::TransactionClosed.is_retryable());
    }
}
