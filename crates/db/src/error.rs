//! Error types for the storage engine — and the unified [`TrodError`]
//! spanning every store a transaction can touch.
//!
//! [`KvError`] lives here (rather than in `trod-kv`) so that the commit
//! coordinator ([`crate::commit`]) can report key-value participant
//! failures without a crate cycle: `trod-kv` depends on `trod-db`, never
//! the other way around. `trod-kv` re-exports it, so existing imports
//! keep working.

use std::fmt;

use crate::mvcc::Ts;
use crate::value::DataType;

/// Errors raised by the durability layer (the write-ahead log and its
/// sinks; see [`crate::wal`]).
///
/// The variants classify *how to react*, not just what broke:
///
/// * [`StorageError::Io`] — an append/fsync/open on the log sink failed.
///   Transient by assumption (disk full, injected fault): the commits in
///   the failed sync group observe it and abort durability-wise, but the
///   WAL keeps their bytes queued and the next group retries, so the
///   commit path is never poisoned. Retryable.
/// * [`StorageError::Corrupt`] — the log contains a damaged record that
///   is provably *not* a torn tail (valid records follow it). Truncating
///   would silently drop acknowledged commits, so recovery refuses with
///   this typed error instead. Not retryable.
/// * [`StorageError::Recovery`] — the log decoded cleanly but cannot be
///   replayed (out-of-order commit timestamps, a record referencing
///   missing DDL). Not retryable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// An IO operation on the log sink failed. `op` names the operation
    /// ("append", "sync", "open", ...).
    Io { op: &'static str, detail: String },
    /// A log record at `offset` is damaged and valid records follow it —
    /// mid-file corruption, not a torn tail.
    Corrupt { offset: u64, detail: String },
    /// The log decoded but could not be replayed into a database.
    Recovery { detail: String },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io { op, detail } => write!(f, "log {op} failed: {detail}"),
            StorageError::Corrupt { offset, detail } => {
                write!(f, "log corrupt at byte {offset}: {detail}")
            }
            StorageError::Recovery { detail } => write!(f, "log replay failed: {detail}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl StorageError {
    /// True for transient sink failures (IO errors on append/sync): the
    /// failed group aborted, but the sink may recover and subsequent
    /// groups — or a retried transaction — can proceed. Corruption and
    /// replay failures are permanent.
    pub fn is_retryable(&self) -> bool {
        matches!(self, StorageError::Io { .. })
    }
}

/// Errors returned by the storage engine.
///
/// The variants distinguish programming errors (schema misuse, type
/// mismatches) from runtime outcomes the caller is expected to handle
/// (write conflicts, serialization failures, duplicate keys).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// A table with this name already exists.
    TableExists(String),
    /// No table with this name exists.
    NoSuchTable(String),
    /// No column with this name exists in the referenced table.
    NoSuchColumn { table: String, column: String },
    /// A row value did not match the column's declared type.
    TypeMismatch {
        table: String,
        column: String,
        expected: DataType,
        actual: String,
    },
    /// A non-nullable column received a NULL value.
    NullViolation { table: String, column: String },
    /// The row has the wrong number of columns for the table schema.
    ArityMismatch {
        table: String,
        expected: usize,
        actual: usize,
    },
    /// An insert would create a second row with the same primary key.
    DuplicateKey { table: String, key: String },
    /// The referenced primary key does not exist.
    NoSuchKey { table: String, key: String },
    /// Two transactions wrote the same row; the later committer loses.
    WriteConflict { table: String, key: String },
    /// Serializable validation failed: a row or predicate read by this
    /// transaction was modified by a concurrently committed transaction.
    SerializationFailure { table: String, detail: String },
    /// The transaction has already committed or aborted.
    TransactionClosed,
    /// A snapshot with this name already exists.
    SnapshotExists(String),
    /// No snapshot with this name exists.
    NoSuchSnapshot(String),
    /// An invalid operation for the current configuration.
    Invalid(String),
    /// The durability layer failed (WAL append/fsync, recovery).
    Storage(StorageError),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::TableExists(t) => write!(f, "table `{t}` already exists"),
            DbError::NoSuchTable(t) => write!(f, "no such table `{t}`"),
            DbError::NoSuchColumn { table, column } => {
                write!(f, "no column `{column}` in table `{table}`")
            }
            DbError::TypeMismatch {
                table,
                column,
                expected,
                actual,
            } => write!(
                f,
                "type mismatch in `{table}.{column}`: expected {expected}, got {actual}"
            ),
            DbError::NullViolation { table, column } => {
                write!(f, "column `{table}.{column}` is not nullable")
            }
            DbError::ArityMismatch {
                table,
                expected,
                actual,
            } => write!(
                f,
                "row for table `{table}` has {actual} values, schema has {expected} columns"
            ),
            DbError::DuplicateKey { table, key } => {
                write!(f, "duplicate primary key {key} in table `{table}`")
            }
            DbError::NoSuchKey { table, key } => {
                write!(f, "no row with primary key {key} in table `{table}`")
            }
            DbError::WriteConflict { table, key } => {
                write!(f, "write-write conflict on `{table}` key {key}")
            }
            DbError::SerializationFailure { table, detail } => {
                write!(f, "serialization failure on `{table}`: {detail}")
            }
            DbError::TransactionClosed => write!(f, "transaction is no longer active"),
            DbError::SnapshotExists(s) => write!(f, "snapshot `{s}` already exists"),
            DbError::NoSuchSnapshot(s) => write!(f, "no such snapshot `{s}`"),
            DbError::Invalid(msg) => write!(f, "invalid operation: {msg}"),
            DbError::Storage(e) => write!(f, "storage: {e}"),
        }
    }
}

impl From<StorageError> for DbError {
    fn from(e: StorageError) -> Self {
        DbError::Storage(e)
    }
}

impl std::error::Error for DbError {}

/// Convenience result alias used across the engine.
pub type DbResult<T> = Result<T, DbError>;

impl DbError {
    /// Returns true if the error is a transient concurrency failure the
    /// caller may retry (write conflicts and serialization failures).
    pub fn is_retryable(&self) -> bool {
        match self {
            DbError::WriteConflict { .. } | DbError::SerializationFailure { .. } => true,
            DbError::Storage(e) => e.is_retryable(),
            _ => false,
        }
    }
}

/// Errors raised by the key-value store side of a transaction.
///
/// Defined in `trod-db` (and re-exported by `trod-kv`) so the unified
/// [`TrodError`] can embed it; see the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvError {
    /// The namespace does not exist.
    UnknownNamespace(String),
    /// The namespace already exists.
    NamespaceExists(String),
    /// Optimistic validation failed: a key read or written by the
    /// transaction changed after its snapshot.
    Conflict { namespace: String, key: String },
    /// A commit timestamp not newer than the namespace's latest applied
    /// version was used.
    StaleCommitTimestamp { given: Ts, latest: Ts },
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::UnknownNamespace(ns) => write!(f, "unknown namespace `{ns}`"),
            KvError::NamespaceExists(ns) => write!(f, "namespace `{ns}` already exists"),
            KvError::Conflict { namespace, key } => {
                write!(
                    f,
                    "conflict on `{namespace}/{key}`: key changed since snapshot"
                )
            }
            KvError::StaleCommitTimestamp { given, latest } => write!(
                f,
                "commit timestamp {given} is not newer than the latest applied version {latest}"
            ),
        }
    }
}

impl std::error::Error for KvError {}

impl KvError {
    /// True if the error is a transient concurrency failure the caller may
    /// retry: optimistic validation conflicts, and the coordinated-commit
    /// freshness veto raised when a standalone store-level commit races a
    /// coordinated one on the same namespace (the coordinator's allocator
    /// catches up between attempts, so a retry makes progress).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            KvError::Conflict { .. } | KvError::StaleCommitTimestamp { .. }
        )
    }
}

/// Result alias for key-value operations.
pub type KvResult<T> = Result<T, KvError>;

/// The unified transaction error: everything a commit spanning the
/// relational database and key-value stores can fail with.
///
/// This is the one error type of the unified [`Txn`](crate) surface;
/// `From` impls exist for both per-store errors so call sites can `?`
/// freely instead of juggling per-store error enums.
#[derive(Debug, Clone, PartialEq)]
pub enum TrodError {
    /// The relational store failed (validation conflict, unknown table, …).
    Relational(DbError),
    /// The key-value store failed (conflict, unknown namespace, …).
    KeyValue(KvError),
    /// The shared durability layer failed (WAL append/fsync): the commit
    /// is published in memory but its durability is unconfirmed — only
    /// the commits in the failed sync group observe this, and the commit
    /// path stays usable (see [`StorageError`]). IO failures are
    /// retryable.
    Storage(StorageError),
}

impl fmt::Display for TrodError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrodError::Relational(e) => write!(f, "relational store: {e}"),
            TrodError::KeyValue(e) => write!(f, "key-value store: {e}"),
            TrodError::Storage(e) => write!(f, "durability: {e}"),
        }
    }
}

impl std::error::Error for TrodError {}

impl From<DbError> for TrodError {
    fn from(e: DbError) -> Self {
        match e {
            // Keep storage failures a first-class unified variant instead
            // of burying them inside the relational wrapper: callers
            // branch on durability errors (retry the group) differently
            // from validation conflicts (retry the transaction).
            DbError::Storage(e) => TrodError::Storage(e),
            e => TrodError::Relational(e),
        }
    }
}

impl From<KvError> for TrodError {
    fn from(e: KvError) -> Self {
        TrodError::KeyValue(e)
    }
}

impl From<StorageError> for TrodError {
    fn from(e: StorageError) -> Self {
        TrodError::Storage(e)
    }
}

impl TrodError {
    /// True if the error is a transient concurrency failure the caller may
    /// retry, on either store.
    pub fn is_retryable(&self) -> bool {
        match self {
            TrodError::Relational(e) => e.is_retryable(),
            TrodError::KeyValue(e) => e.is_retryable(),
            TrodError::Storage(e) => e.is_retryable(),
        }
    }
}

/// Result alias for operations spanning both stores.
pub type TrodResult<T> = Result<T, TrodError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DbError::NoSuchTable("users".into());
        assert!(e.to_string().contains("users"));
        let e = DbError::DuplicateKey {
            table: "t".into(),
            key: "[Int(1)]".into(),
        };
        assert!(e.to_string().contains("duplicate"));
    }

    #[test]
    fn retryable_classification() {
        assert!(DbError::WriteConflict {
            table: "t".into(),
            key: "k".into()
        }
        .is_retryable());
        assert!(DbError::SerializationFailure {
            table: "t".into(),
            detail: "d".into()
        }
        .is_retryable());
        assert!(!DbError::NoSuchTable("t".into()).is_retryable());
        assert!(!DbError::TransactionClosed.is_retryable());
    }

    #[test]
    fn unified_error_converts_and_classifies() {
        let e: TrodError = DbError::WriteConflict {
            table: "t".into(),
            key: "k".into(),
        }
        .into();
        assert!(matches!(e, TrodError::Relational(_)));
        assert!(e.is_retryable());

        let e: TrodError = KvError::Conflict {
            namespace: "s".into(),
            key: "k".into(),
        }
        .into();
        assert!(matches!(e, TrodError::KeyValue(_)));
        assert!(e.is_retryable());
        assert!(e.to_string().contains("s/k"));

        let e: TrodError = KvError::UnknownNamespace("x".into()).into();
        assert!(!e.is_retryable());
        let e: TrodError = DbError::TransactionClosed.into();
        assert!(!e.is_retryable());
    }

    #[test]
    fn storage_errors_classify_and_convert() {
        let io = StorageError::Io {
            op: "sync",
            detail: "injected".into(),
        };
        assert!(io.is_retryable());
        let corrupt = StorageError::Corrupt {
            offset: 42,
            detail: "payload checksum mismatch".into(),
        };
        assert!(!corrupt.is_retryable());
        assert!(corrupt.to_string().contains("byte 42"));

        // DbError::Storage keeps the classification...
        let db_err: DbError = io.clone().into();
        assert!(db_err.is_retryable());
        let db_err: DbError = corrupt.clone().into();
        assert!(!db_err.is_retryable());

        // ...and converting to the unified error surfaces the dedicated
        // variant (not a buried Relational wrapper), from either source.
        let e: TrodError = DbError::Storage(io.clone()).into();
        assert!(matches!(e, TrodError::Storage(_)));
        assert!(e.is_retryable());
        let e: TrodError = corrupt.into();
        assert!(matches!(e, TrodError::Storage(_)));
        assert!(!e.is_retryable());
        assert!(e.to_string().contains("durability"));
    }
}
