//! Per-table commit change log: the index behind O(Δ) serializable
//! validation.
//!
//! Serializable (phantom) validation must answer: *did any row of this
//! table change, in a way a given predicate can see, after timestamp
//! `start_ts`?* The naive answer — re-scan every version of every row —
//! costs O(total versions) per commit and defeats the paper's "<15 %
//! overhead" budget as tables grow. The change log answers the same
//! question in O(Δ), where Δ is the number of row changes committed in
//! `(start_ts, now]`.
//!
//! Every [`install`](crate::table::TableStore::install) /
//! [`remove`](crate::table::TableStore::remove) — which only ever run
//! under the database commit lock — appends one [`ChangeEntry`] carrying
//! the before and after images as [`Arc<Row>`] (shared with the version
//! chain, so the log adds no row copies). Entries are strictly ordered by
//! commit timestamp, so a validator binary-searches the tail it needs.
//!
//! The log is a bounded ring with **watermark-driven eviction**: every
//! append passes the active-transaction watermark
//! ([`ActiveTxnRegistry::watermark`](crate::registry::ActiveTxnRegistry)),
//! and an append that finds the ring at capacity only evicts entries at
//! or below that watermark — entries inside some active transaction's
//! validation window are pinned, and the ring temporarily overshoots its
//! capacity instead of cutting the window (the overshoot is bounded by
//! the write volume during the oldest active transaction's lifetime, the
//! same bloat any MVCC store accrues under a long-running transaction).
//! Garbage collection truncates the log alongside version history;
//! [`Database::gc_before`](crate::Database::gc_before) clamps the horizon
//! to the same watermark. Both eviction and truncation record a
//! *low-water mark*; a transaction that began before the mark cannot be
//! validated from the log and falls back to the full version scan (see
//! `TableStore::predicate_conflict_after`), so truncation can never cause
//! a missed conflict. With the watermark in place the fallback is
//! practically confined to the raw table-level
//! [`ChangeLog::truncate_before`] (which tests use to exercise it): ring
//! eviction reads the watermark without synchronizing with `begin`, so a
//! transaction that registers concurrently with an at-capacity append can
//! still — rarely, and harmlessly — find its window evicted and take the
//! fallback.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::mvcc::Ts;
use crate::row::{Key, Row};

/// Default per-table ring capacity. 64k entries comfortably covers the
/// write delta of any realistically-sized validation window. The capacity
/// is a soft bound: entries pinned by the active-transaction watermark are
/// not normally evicted (see the module docs), and if eviction must skip
/// pinned entries the ring overshoots — up to [`DEFAULT_MAX_OVERSHOOT`] —
/// until they unpin. Should the log ever be truncated inside a validation
/// window (via the overshoot cap or the raw
/// [`ChangeLog::truncate_before`]), validation degrades to the (correct,
/// slower) full-scan path rather than failing.
pub const DEFAULT_CAPACITY: usize = 64 * 1024;

/// Default bound on how far the ring may overshoot its capacity while
/// entries are pinned by a long-lived transaction. Once the overshoot is
/// exhausted, pinned entries are evicted anyway: the pathological pinner
/// (and only transactions at least as old) flips to the full-scan
/// validation fallback instead of growing the ring without limit —
/// Postgres-style bloat, but bounded. Equal to the capacity, so a ring
/// holds at most 2× its configured entries.
pub const DEFAULT_MAX_OVERSHOOT: usize = DEFAULT_CAPACITY;

/// Error returned when a validation window reaches below the log's
/// low-water mark; the caller must use the full version scan instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogTruncated;

/// One committed row change: the before/after images installed at
/// `commit_ts`. `before == None` is an insert, `after == None` a delete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChangeEntry {
    pub commit_ts: Ts,
    pub key: Key,
    pub before: Option<Arc<Row>>,
    pub after: Option<Arc<Row>>,
}

#[derive(Debug)]
struct ChangeLogInner {
    entries: VecDeque<ChangeEntry>,
    /// Highest commit timestamp that may have been evicted or truncated;
    /// the log can only answer queries for windows starting at or above
    /// this mark.
    low_water: Ts,
}

/// Bounded, commit-ordered ring of row changes for one table.
#[derive(Debug)]
pub struct ChangeLog {
    inner: RwLock<ChangeLogInner>,
    capacity: usize,
    max_overshoot: usize,
}

impl Default for ChangeLog {
    fn default() -> Self {
        ChangeLog::with_capacity(DEFAULT_CAPACITY)
    }
}

impl ChangeLog {
    pub fn with_capacity(capacity: usize) -> Self {
        ChangeLog::with_capacity_and_overshoot(capacity, capacity)
    }

    /// A ring of `capacity` entries that may hold up to
    /// `capacity + max_overshoot` entries while a long-lived transaction
    /// pins its tail (see [`DEFAULT_MAX_OVERSHOOT`]).
    pub fn with_capacity_and_overshoot(capacity: usize, max_overshoot: usize) -> Self {
        ChangeLog {
            inner: RwLock::new(ChangeLogInner {
                entries: VecDeque::new(),
                low_water: 0,
            }),
            capacity: capacity.max(1),
            max_overshoot,
        }
    }

    /// Appends one committed change. Entries must arrive in non-decreasing
    /// `commit_ts` order — guaranteed because all mutation of a table
    /// happens under that table's commit lock, and commit timestamps are
    /// allocated while the lock is held.
    ///
    /// `horizon` yields the eviction horizon
    /// ([`crate::registry::ActiveTxnRegistry::eviction_horizon`]: the
    /// active-transaction watermark clamped to the published clock, both
    /// read under the registry lock so a concurrent `begin` cannot slip
    /// underneath). It is only invoked when the ring is at capacity.
    /// Entries above the horizon sit inside some active (or
    /// about-to-begin) transaction's validation window and are pinned —
    /// the ring overshoots its capacity rather than raising the low-water
    /// mark past them. The overshoot itself is bounded: past
    /// `capacity + max_overshoot` entries, pinned entries are evicted
    /// anyway and the pathological pinner degrades to full-scan
    /// validation. Pass `|| Ts::MAX` when nothing can be pinned.
    pub fn append(&self, entry: ChangeEntry, horizon: impl FnOnce() -> Ts) {
        let mut inner = self.inner.write();
        debug_assert!(
            inner
                .entries
                .back()
                .is_none_or(|e| e.commit_ts <= entry.commit_ts),
            "change log must be appended in commit order"
        );
        if inner.entries.len() >= self.capacity {
            let keep_after = horizon();
            // Evict in a batch, down to `capacity - batch` entries:
            // computing the horizon takes the (database-global) registry
            // lock, so at steady state one computation covers the next
            // `batch` appends instead of locking on every install.
            let batch = (self.capacity / 16).max(1);
            let floor = self.capacity - batch;
            while inner.entries.len() > floor {
                let front_ts = inner.entries.front().expect("non-empty").commit_ts;
                let pinned = front_ts > keep_after;
                if pinned && inner.entries.len() < self.capacity + self.max_overshoot {
                    // Pinned by an active transaction and within the
                    // overshoot budget: keep everything.
                    break;
                }
                // Evictable — or pinned but past the overshoot cap, in
                // which case the pinner flips to the full-scan fallback
                // (low_water rises past its window) instead of the ring
                // growing without bound.
                inner.entries.pop_front();
                inner.low_water = inner.low_water.max(front_ts);
            }
        }
        inner.entries.push_back(entry);
    }

    /// Runs `visit` over every entry with `commit_ts > ts`, stopping early
    /// if `visit` returns `Some`. Returns [`LogTruncated`] when the log has
    /// been truncated above `ts` and therefore cannot see the whole window
    /// — the caller must fall back to a full version scan.
    pub fn scan_after<T>(
        &self,
        ts: Ts,
        mut visit: impl FnMut(&ChangeEntry) -> Option<T>,
    ) -> Result<Option<T>, LogTruncated> {
        let inner = self.inner.read();
        if ts < inner.low_water {
            return Err(LogTruncated);
        }
        // Entries are commit-ordered: binary search for the first entry
        // strictly after `ts`. VecDeque::partition_point works on the
        // logical (wrapped) sequence.
        let start = inner.entries.partition_point(|e| e.commit_ts <= ts);
        for entry in inner.entries.iter().skip(start) {
            if let Some(found) = visit(entry) {
                return Ok(Some(found));
            }
        }
        Ok(None)
    }

    /// Drops entries with `commit_ts <= ts` (called by GC together with
    /// version-chain truncation) and raises the low-water mark to `ts`.
    pub fn truncate_before(&self, ts: Ts) -> usize {
        let mut inner = self.inner.write();
        let cut = inner.entries.partition_point(|e| e.commit_ts <= ts);
        inner.entries.drain(..cut);
        inner.low_water = inner.low_water.max(ts);
        cut
    }

    /// Number of buffered entries.
    pub fn len(&self) -> usize {
        self.inner.read().entries.len()
    }

    /// True if no entries are buffered.
    pub fn is_empty(&self) -> bool {
        self.inner.read().entries.is_empty()
    }

    /// The current low-water mark (0 = the log covers all history).
    pub fn low_water(&self) -> Ts {
        self.inner.read().low_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::NO_ACTIVE_TXN;
    use crate::row;

    fn entry(commit_ts: Ts, key: i64) -> ChangeEntry {
        ChangeEntry {
            commit_ts,
            key: Key::single(key),
            before: None,
            after: Some(Arc::new(row![key, commit_ts as i64])),
        }
    }

    /// Append with nothing pinned (the pre-watermark behaviour).
    fn append_unpinned(log: &ChangeLog, e: ChangeEntry) {
        log.append(e, || NO_ACTIVE_TXN);
    }

    fn collect_after(log: &ChangeLog, ts: Ts) -> Result<Vec<Ts>, LogTruncated> {
        let mut seen = Vec::new();
        log.scan_after(ts, |e| {
            seen.push(e.commit_ts);
            None::<()>
        })
        .map(|_| seen)
    }

    #[test]
    fn scan_returns_only_the_window_after_ts() {
        let log = ChangeLog::default();
        for ts in 1..=10 {
            append_unpinned(&log, entry(ts, ts as i64));
        }
        assert_eq!(
            collect_after(&log, 0).unwrap(),
            (1..=10).collect::<Vec<_>>()
        );
        assert_eq!(collect_after(&log, 7).unwrap(), vec![8, 9, 10]);
        assert_eq!(collect_after(&log, 10).unwrap(), Vec::<Ts>::new());
    }

    #[test]
    fn early_exit_stops_iteration() {
        let log = ChangeLog::default();
        for ts in 1..=10 {
            append_unpinned(&log, entry(ts, ts as i64));
        }
        let mut visited = 0;
        let hit = log
            .scan_after(0, |e| {
                visited += 1;
                (e.commit_ts == 3).then_some(e.commit_ts)
            })
            .unwrap();
        assert_eq!(hit, Some(3));
        assert_eq!(visited, 3);
    }

    #[test]
    fn multiple_entries_per_commit_are_kept() {
        let log = ChangeLog::default();
        append_unpinned(&log, entry(5, 1));
        append_unpinned(&log, entry(5, 2));
        append_unpinned(&log, entry(6, 3));
        assert_eq!(collect_after(&log, 4).unwrap(), vec![5, 5, 6]);
        assert_eq!(collect_after(&log, 5).unwrap(), vec![6]);
    }

    #[test]
    fn truncation_raises_low_water_and_rejects_older_windows() {
        let log = ChangeLog::default();
        for ts in 1..=10 {
            append_unpinned(&log, entry(ts, ts as i64));
        }
        let dropped = log.truncate_before(6);
        assert_eq!(dropped, 6);
        assert_eq!(log.low_water(), 6);
        // Window starting at or after the mark: answerable.
        assert_eq!(collect_after(&log, 6).unwrap(), vec![7, 8, 9, 10]);
        // Window starting before the mark: must report "can't see it all".
        assert!(collect_after(&log, 5).is_err());
    }

    #[test]
    fn ring_overflow_evicts_oldest_and_degrades_safely() {
        let log = ChangeLog::with_capacity(4);
        for ts in 1..=10 {
            append_unpinned(&log, entry(ts, ts as i64));
        }
        assert_eq!(log.len(), 4);
        assert_eq!(log.low_water(), 6);
        assert_eq!(collect_after(&log, 6).unwrap(), vec![7, 8, 9, 10]);
        assert!(collect_after(&log, 3).is_err());
    }

    #[test]
    fn eviction_never_raises_low_water_past_the_watermark() {
        let log = ChangeLog::with_capacity(4);
        for ts in 1..=4 {
            append_unpinned(&log, entry(ts, ts as i64));
        }
        // An active transaction began at ts 2: entries in (2, now] are
        // pinned. Appends evict only the prefix at or below the watermark,
        // then overshoot the capacity.
        for ts in 5..=8 {
            log.append(entry(ts, ts as i64), || 2);
        }
        assert_eq!(log.low_water(), 2, "low water must not pass the watermark");
        assert_eq!(log.len(), 6, "pinned entries overshoot the capacity");
        // The active transaction's window is still fully answerable.
        assert_eq!(collect_after(&log, 2).unwrap(), vec![3, 4, 5, 6, 7, 8]);

        // Watermark released: the next append drains the overshoot back
        // under the capacity bound.
        append_unpinned(&log, entry(9, 9));
        assert_eq!(log.len(), 4);
        assert_eq!(log.low_water(), 5);
        assert!(collect_after(&log, 2).is_err(), "window now truncated");
    }

    #[test]
    fn overshoot_is_bounded_and_flips_the_pinner_to_the_fallback() {
        // Capacity 4, overshoot budget 4: a transaction pinned at ts 0
        // (its window is all of (0, now]) can bloat the ring to at most
        // 8 entries.
        let log = ChangeLog::with_capacity_and_overshoot(4, 4);
        for ts in 1..=8 {
            log.append(entry(ts, ts as i64), || 0);
        }
        assert_eq!(log.len(), 8, "within the overshoot budget nothing evicts");
        assert_eq!(log.low_water(), 0);
        assert_eq!(collect_after(&log, 0).unwrap(), (1..=8).collect::<Vec<_>>());

        // Past the budget, pinned entries are evicted anyway; the ring
        // saturates at capacity + overshoot and the pinner's window is no
        // longer answerable (it falls back to the full scan).
        for ts in 9..=12 {
            log.append(entry(ts, ts as i64), || 0);
        }
        assert_eq!(log.len(), 8, "ring saturates at capacity + overshoot");
        assert!(log.low_water() >= 1, "the pathological pinner was cut");
        assert!(collect_after(&log, 0).is_err(), "pinner uses the fallback");
        // A transaction that began after the cut is still served by the log.
        let lw = log.low_water();
        assert!(collect_after(&log, lw).is_ok());
    }

    #[test]
    fn horizon_is_not_computed_when_under_capacity() {
        let log = ChangeLog::with_capacity(8);
        for ts in 1..=4 {
            log.append(entry(ts, ts as i64), || panic!("horizon must be lazy"));
        }
        assert_eq!(log.len(), 4);
    }

    #[test]
    fn empty_log_answers_everything() {
        let log = ChangeLog::default();
        assert!(log.is_empty());
        assert_eq!(collect_after(&log, 0).unwrap(), Vec::<Ts>::new());
    }
}
