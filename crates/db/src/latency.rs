//! Synthetic storage latency model.
//!
//! The TROD paper (§3.7) reports tracing overhead relative to two backing
//! stores: an in-memory database (VoltDB), where per-transaction costs are
//! tiny so a fixed tracing cost is visible (<15 %), and an on-disk
//! database (Postgres), where commit latency dominates and tracing
//! overhead is "negligible". Real VoltDB/Postgres are not available in
//! this environment, so the engine models the distinction with a
//! configurable per-operation latency: `InMemory` adds nothing, `OnDisk`
//! waits for a configurable number of microseconds on reads and commits
//! (modelling buffer-pool and fsync costs). Benchmark E1 sweeps both
//! profiles.
//!
//! With a real WAL attached ([`crate::wal`]) the model's simulated
//! commit fsync is skipped: the commit path pays the *actual* group
//! fsync instead, so the two costs are never charged together.

use std::time::{Duration, Instant};

/// The storage profile of a [`crate::Database`].
#[derive(Default, Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageProfile {
    /// No added latency: models an in-memory store such as VoltDB.
    #[default]
    InMemory,
    /// Adds `read_micros` to every transactional read/scan and
    /// `commit_micros` to every commit: models an on-disk store such as
    /// Postgres (default 50 µs reads, 500 µs commit/fsync).
    OnDisk {
        read_micros: u64,
        commit_micros: u64,
    },
}

impl StorageProfile {
    /// The default on-disk profile used by the benchmarks.
    pub fn on_disk_default() -> Self {
        StorageProfile::OnDisk {
            read_micros: 20,
            commit_micros: 500,
        }
    }
}

/// Applies the latency model. Short waits (reads, sub-scheduler-granule
/// commits) spin; longer waits sleep, yielding the CPU the way a real
/// fsync blocked in the kernel would — which is what lets commits on
/// disjoint tables overlap their commit latency under the sharded commit
/// protocol even on a single core.
#[derive(Debug, Clone, Copy)]
pub struct LatencyModel {
    profile: StorageProfile,
}

/// Waits at or above this duration sleep instead of spinning; below it,
/// OS scheduler granularity would make sleeps wildly inaccurate.
const SLEEP_THRESHOLD: Duration = Duration::from_micros(200);

impl LatencyModel {
    pub fn new(profile: StorageProfile) -> Self {
        LatencyModel { profile }
    }

    pub fn profile(&self) -> StorageProfile {
        self.profile
    }

    /// Charged on every transactional read or scan.
    pub fn on_read(&self) {
        if let StorageProfile::OnDisk { read_micros, .. } = self.profile {
            wait_for(Duration::from_micros(read_micros));
        }
    }

    /// Charged on every commit.
    pub fn on_commit(&self) {
        if let StorageProfile::OnDisk { commit_micros, .. } = self.profile {
            wait_for(Duration::from_micros(commit_micros));
        }
    }
}

fn wait_for(d: Duration) {
    if d.is_zero() {
        return;
    }
    if d >= SLEEP_THRESHOLD {
        // Model an I/O wait: block without burning the CPU, so other
        // threads' commits (and their latency waits) overlap with this one.
        std::thread::sleep(d);
        return;
    }
    let start = Instant::now();
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_memory_adds_no_measurable_latency() {
        let m = LatencyModel::new(StorageProfile::InMemory);
        let start = Instant::now();
        for _ in 0..1000 {
            m.on_read();
            m.on_commit();
        }
        // 2000 no-op calls should complete essentially instantly.
        assert!(start.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn on_disk_commit_spins_for_roughly_the_configured_time() {
        let m = LatencyModel::new(StorageProfile::OnDisk {
            read_micros: 0,
            commit_micros: 300,
        });
        let start = Instant::now();
        for _ in 0..10 {
            m.on_commit();
        }
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_micros(10 * 300),
            "expected at least 3ms, got {elapsed:?}"
        );
    }

    #[test]
    fn default_profile_is_in_memory() {
        assert_eq!(StorageProfile::default(), StorageProfile::InMemory);
    }
}
