//! Change data capture (CDC) records.
//!
//! Every committed transaction produces one [`ChangeRecord`] per modified
//! row, containing before/after images. The TROD interposition layer
//! copies these records into the provenance database (paper §3.4, "for
//! data writes, TROD leverages the change data capture feature provided by
//! most databases"), and the replay engine re-applies them to reconstruct
//! past states (paper §3.5).

use std::fmt;
use std::sync::Arc;

use crate::row::{Key, Row};

/// Prefix of the virtual table names under which key-value participant
/// records travel — in change records, commit resource names and the
/// aligned transaction log (e.g. `kv:sessions`). This is the aligned
/// log's wire format for "which store does this record belong to"; every
/// layer that classifies records must use this one definition.
pub const KV_TABLE_PREFIX: &str = "kv:";

/// True for records/resources on the virtual `kv:<namespace>` tables of
/// the unified transaction surface (the key-value half of the aligned
/// history).
pub fn is_kv_table(table: &str) -> bool {
    table.starts_with(KV_TABLE_PREFIX)
}

/// The kind of change applied to a single row.
///
/// Before/after images are `Arc`-shared with the storage engine's version
/// chains: capturing CDC for a commit, copying records into the
/// provenance store, and replaying them all reuse the writer's single
/// allocation instead of deep-cloning rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChangeOp {
    /// A new row was inserted.
    Insert { after: Arc<Row> },
    /// An existing row was overwritten.
    Update { before: Arc<Row>, after: Arc<Row> },
    /// An existing row was removed.
    Delete { before: Arc<Row> },
}

impl ChangeOp {
    /// The row image after the change, if the row still exists.
    pub fn after(&self) -> Option<&Row> {
        match self {
            ChangeOp::Insert { after } | ChangeOp::Update { after, .. } => Some(&**after),
            ChangeOp::Delete { .. } => None,
        }
    }

    /// The shared after image, if the row still exists (no copy).
    pub fn after_shared(&self) -> Option<Arc<Row>> {
        match self {
            ChangeOp::Insert { after } | ChangeOp::Update { after, .. } => Some(after.clone()),
            ChangeOp::Delete { .. } => None,
        }
    }

    /// The row image before the change, if the row existed.
    pub fn before(&self) -> Option<&Row> {
        match self {
            ChangeOp::Insert { .. } => None,
            ChangeOp::Update { before, .. } | ChangeOp::Delete { before } => Some(&**before),
        }
    }

    /// The shared before image, if the row existed (no copy).
    pub fn before_shared(&self) -> Option<Arc<Row>> {
        match self {
            ChangeOp::Insert { .. } => None,
            ChangeOp::Update { before, .. } | ChangeOp::Delete { before } => Some(before.clone()),
        }
    }

    /// Short label used in provenance tables ("Insert", "Update", "Delete").
    pub fn kind(&self) -> &'static str {
        match self {
            ChangeOp::Insert { .. } => "Insert",
            ChangeOp::Update { .. } => "Update",
            ChangeOp::Delete { .. } => "Delete",
        }
    }
}

/// One row-level change made by a committed transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChangeRecord {
    /// Table the change applies to.
    pub table: String,
    /// Primary key of the changed row.
    pub key: Key,
    /// The change itself, with before/after images.
    pub op: ChangeOp,
}

impl ChangeRecord {
    /// Builds an insert record. Accepts `Row` or `Arc<Row>`.
    pub fn insert(table: impl Into<String>, key: Key, after: impl Into<Arc<Row>>) -> Self {
        ChangeRecord {
            table: table.into(),
            key,
            op: ChangeOp::Insert {
                after: after.into(),
            },
        }
    }

    /// Builds an update record. Accepts `Row` or `Arc<Row>` images.
    pub fn update(
        table: impl Into<String>,
        key: Key,
        before: impl Into<Arc<Row>>,
        after: impl Into<Arc<Row>>,
    ) -> Self {
        ChangeRecord {
            table: table.into(),
            key,
            op: ChangeOp::Update {
                before: before.into(),
                after: after.into(),
            },
        }
    }

    /// Builds a delete record. Accepts `Row` or `Arc<Row>`.
    pub fn delete(table: impl Into<String>, key: Key, before: impl Into<Arc<Row>>) -> Self {
        ChangeRecord {
            table: table.into(),
            key,
            op: ChangeOp::Delete {
                before: before.into(),
            },
        }
    }
}

impl fmt::Display for ChangeRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.op {
            ChangeOp::Insert { after } => {
                write!(f, "INSERT {}{} -> {}", self.table, self.key, after)
            }
            ChangeOp::Update { before, after } => {
                write!(
                    f,
                    "UPDATE {}{} {} -> {}",
                    self.table, self.key, before, after
                )
            }
            ChangeOp::Delete { before } => {
                write!(f, "DELETE {}{} (was {})", self.table, self.key, before)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    #[test]
    fn before_after_images() {
        let ins = ChangeRecord::insert("t", Key::single(1i64), row![1i64, "a"]);
        assert_eq!(ins.op.before(), None);
        assert_eq!(ins.op.after(), Some(&row![1i64, "a"]));
        assert_eq!(ins.op.kind(), "Insert");

        let upd = ChangeRecord::update("t", Key::single(1i64), row![1i64, "a"], row![1i64, "b"]);
        assert_eq!(upd.op.before(), Some(&row![1i64, "a"]));
        assert_eq!(upd.op.after(), Some(&row![1i64, "b"]));
        assert_eq!(upd.op.kind(), "Update");

        let del = ChangeRecord::delete("t", Key::single(1i64), row![1i64, "b"]);
        assert_eq!(del.op.before(), Some(&row![1i64, "b"]));
        assert_eq!(del.op.after(), None);
        assert_eq!(del.op.kind(), "Delete");
    }

    #[test]
    fn display_mentions_table_and_key() {
        let rec = ChangeRecord::insert("forum_sub", Key::single("U1"), row!["U1", "F2"]);
        let s = rec.to_string();
        assert!(s.contains("forum_sub"));
        assert!(s.contains("U1"));
    }
}
