//! Segmented, manifest-driven WAL: crash-safe rotation and compaction.
//!
//! [`crate::wal::Wal`] is a single append-only byte stream. This module
//! bounds it: a [`SegmentedWal`] is a *directory* of segment files plus a
//! small checksummed `MANIFEST` that names them. The active segment
//! receives appends exactly like the single-file WAL (byte order ==
//! commit order, group-commit fsync); once it crosses
//! [`crate::wal::WalOptions::segment_bytes`] it is **sealed** — fully
//! synced, then swapped for a fresh successor outside the publication
//! window — and sealed segments wholly below the GC floor are
//! **compacted** into immutable cold files so durable retention stops
//! growing without bound.
//!
//! # Segment lifecycle
//!
//! ```text
//!            append ≥ segment_bytes          max_ts <= gc floor
//!  [active] ───────────────────────▶ [sealed] ─────────────────▶ [compacted]
//!     │  rotation: pre-sync, create          compaction: copy+verify │
//!     │  successor, final micro-sync         into cold-<lo>-<hi>.seg │
//!     │  under the append lock, swap,        tmp→rename, manifest    │
//!     │  then manifest swap                  swap, THEN delete       ▼
//!     │                                      originals           [deleted]
//!     ▼
//!  torn tail allowed here ONLY — sealed and cold files must decode
//!  perfectly clean end-to-end or recovery refuses with Corrupt{offset}.
//! ```
//!
//! # The MANIFEST
//!
//! One CRC-framed record (magic `TRODMF01` + the standard WAL frame
//! header) listing cold files, sealed segments and the active segment,
//! plus the next segment sequence number. It is **never edited in
//! place**: every change writes `MANIFEST.tmp`, fsyncs it, renames it
//! over `MANIFEST` and fsyncs the directory. A crash between any two of
//! those steps leaves either the old or the new manifest intact.
//!
//! # Crash windows and how recovery heals them
//!
//! * **Mid-rotation, before the swap** — at worst an empty successor
//!   segment exists. Recovery deletes trailing empty orphans.
//! * **Mid-rotation, after the swap, before the manifest write** — the
//!   successor holds real commits but the manifest still names its
//!   predecessor as active. A non-empty successor proves the swap
//!   happened, which proves the predecessor was fully synced at seal
//!   time: recovery *adopts* the contiguous run of non-empty orphan
//!   successors, validating each predecessor strictly.
//! * **Mid-compaction, before the manifest swap** — a `cold-*.tmp` (or a
//!   renamed but unlisted `cold-*.seg`) exists while the originals are
//!   still manifest-listed. Recovery deletes the unpublished cold file
//!   and proceeds from the originals.
//! * **Mid-compaction, after the manifest swap, before the deletes** —
//!   the manifest lists the cold file; the leftover originals are now
//!   unlisted and deleted at recovery.
//!
//! In every window the durable commit prefix is exactly preserved: cold
//! and sealed bytes are immutable and fully durable, and only the newest
//! (active) segment may carry a torn tail. [`FailpointDir`] injects a
//! crash after an exact number of cost units (bytes written + metadata
//! operations) so the test suite proves this at *every* cut point of
//! rotation, manifest swap, compaction copy and delete.
//!
//! # Pre-segmentation layouts
//!
//! `open_path` on a PR 6-era single *file* transparently migrates it:
//! the file is renamed into a new directory as segment 0 (byte-identical
//! — a rename, not a copy) and a manifest is synthesized. A manifest-less
//! directory of `wal-*.seg` files is adopted the same way.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

use parking_lot::Mutex;

use crate::checkpoint::{
    checkpoint_name, decode_checkpoint, encode_checkpoint, parse_checkpoint_name, Checkpoint,
};
use crate::error::StorageError;
use crate::log::CommittedTxn;
use crate::mvcc::Ts;
use crate::wal::{
    crc32, decode_records, put_str, put_u32, put_u64, Cursor, FileSink, SyncMode, Wal, WalOptions,
    WalRecord, WalSink,
};

/// The manifest file name inside a log directory.
pub const MANIFEST_NAME: &str = "MANIFEST";
const MANIFEST_TMP: &str = "MANIFEST.tmp";
const MANIFEST_MAGIC: &[u8; 8] = b"TRODMF01";
/// Version 2 adds per-file `has_ddl` flags and the checkpoint list.
/// Version 1 manifests are still decoded (with `has_ddl` conservatively
/// `true` — every file replays — and no checkpoints); writes always emit
/// version 2.
const MANIFEST_VERSION: u32 = 2;
/// Newest checkpoints kept in the manifest; older ones are deleted after
/// each successful checkpoint write.
const CHECKPOINTS_KEPT: usize = 2;
/// Cold-file count above which compaction merges contiguous cold runs.
const COLD_MERGE_BOUND: usize = 8;

fn io_err(op: &'static str, e: std::io::Error) -> StorageError {
    StorageError::Io {
        op,
        detail: e.to_string(),
    }
}

fn segment_name(seq: u64) -> String {
    format!("wal-{seq:06}.seg")
}

fn cold_name(seq_lo: u64, seq_hi: u64) -> String {
    format!("cold-{seq_lo:06}-{seq_hi:06}.seg")
}

fn parse_segment_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("wal-")?.strip_suffix(".seg")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

fn parse_cold_name(name: &str) -> Option<(u64, u64)> {
    let body = name.strip_prefix("cold-")?.strip_suffix(".seg")?;
    let (lo, hi) = body.split_once('-')?;
    if lo.is_empty() || hi.is_empty() {
        return None;
    }
    if !lo.bytes().all(|b| b.is_ascii_digit()) || !hi.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    Some((lo.parse().ok()?, hi.parse().ok()?))
}

fn max_commit_ts(records: &[WalRecord]) -> Ts {
    records
        .iter()
        .filter_map(|r| match r {
            WalRecord::Commit(e) => Some(e.commit_ts),
            _ => None,
        })
        .max()
        .unwrap_or(0)
}

fn has_ddl(records: &[WalRecord]) -> bool {
    records.iter().any(|r| !matches!(r, WalRecord::Commit(_)))
}

fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

// ---------------------------------------------------------------------
// The directory abstraction
// ---------------------------------------------------------------------

/// A flat directory of log files — the only filesystem surface the
/// segmented WAL uses, so fault injection ([`FailpointDir`]) and property
/// tests ([`MemDir`]) can stand in for a real directory byte-for-byte.
///
/// Contract: `rename` atomically replaces an existing destination;
/// `delete` of a missing file is a no-op; `sync_dir` makes preceding
/// creates/renames/deletes durable.
pub trait LogDir: Send + Sync {
    /// File names currently present (no ordering guarantee).
    fn list(&self) -> Result<Vec<String>, StorageError>;
    /// Reads a whole file.
    fn read(&self, name: &str) -> Result<Vec<u8>, StorageError>;
    /// Creates (truncating) a file and returns an append sink for it.
    fn create(&self, name: &str) -> Result<Box<dyn WalSink>, StorageError>;
    /// Opens an existing file for appending. The sink's position is
    /// unspecified until the caller issues `truncate_to` (which both
    /// trims and positions — recovery always does).
    fn open_append(&self, name: &str) -> Result<Box<dyn WalSink>, StorageError>;
    /// Atomically renames `from` to `to`, replacing any existing `to`.
    fn rename(&self, from: &str, to: &str) -> Result<(), StorageError>;
    /// Deletes a file; missing files are not an error.
    fn delete(&self, name: &str) -> Result<(), StorageError>;
    /// Makes preceding directory mutations durable (fsync the dir).
    fn sync_dir(&self) -> Result<(), StorageError>;
}

/// A real filesystem directory.
pub struct FsDir {
    root: PathBuf,
}

impl FsDir {
    /// Opens (creating if absent) a directory.
    pub fn open(root: impl AsRef<Path>) -> Result<FsDir, StorageError> {
        std::fs::create_dir_all(root.as_ref()).map_err(|e| io_err("mkdir", e))?;
        Ok(FsDir {
            root: root.as_ref().to_path_buf(),
        })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }
}

impl LogDir for FsDir {
    fn list(&self) -> Result<Vec<String>, StorageError> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.root).map_err(|e| io_err("list", e))? {
            let entry = entry.map_err(|e| io_err("list", e))?;
            if entry.file_type().map_err(|e| io_err("list", e))?.is_file() {
                if let Ok(name) = entry.file_name().into_string() {
                    out.push(name);
                }
            }
        }
        Ok(out)
    }

    fn read(&self, name: &str) -> Result<Vec<u8>, StorageError> {
        let mut file = File::open(self.path(name)).map_err(|e| io_err("read", e))?;
        let mut data = Vec::new();
        file.read_to_end(&mut data).map_err(|e| io_err("read", e))?;
        Ok(data)
    }

    fn create(&self, name: &str) -> Result<Box<dyn WalSink>, StorageError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(self.path(name))
            .map_err(|e| io_err("create", e))?;
        Ok(Box::new(FileSink::new(file)))
    }

    fn open_append(&self, name: &str) -> Result<Box<dyn WalSink>, StorageError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(self.path(name))
            .map_err(|e| io_err("open", e))?;
        file.seek(SeekFrom::End(0)).map_err(|e| io_err("open", e))?;
        Ok(Box::new(FileSink::new(file)))
    }

    fn rename(&self, from: &str, to: &str) -> Result<(), StorageError> {
        std::fs::rename(self.path(from), self.path(to)).map_err(|e| io_err("rename", e))
    }

    fn delete(&self, name: &str) -> Result<(), StorageError> {
        match std::fs::remove_file(self.path(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err("delete", e)),
        }
    }

    fn sync_dir(&self) -> Result<(), StorageError> {
        #[cfg(unix)]
        {
            File::open(&self.root)
                .and_then(|d| d.sync_all())
                .map_err(|e| io_err("sync_dir", e))
        }
        #[cfg(not(unix))]
        {
            Ok(())
        }
    }
}

/// An in-memory directory: files are byte vectors behind one shared map.
/// Cloning shares the map (it is "the same disk"); [`MemDir::snapshot`]
/// deep-copies it, so a fault-injection run can freeze the disk state at
/// the crash point and recover from the frozen copy.
#[derive(Clone, Default)]
pub struct MemDir {
    files: Arc<Mutex<BTreeMap<String, Vec<u8>>>>,
}

impl MemDir {
    pub fn new() -> MemDir {
        MemDir::default()
    }

    /// Deep copy of the current file set (an independent "disk image").
    pub fn snapshot(&self) -> MemDir {
        MemDir {
            files: Arc::new(Mutex::new(self.files.lock().clone())),
        }
    }

    /// The bytes of one file, if present.
    pub fn file(&self, name: &str) -> Option<Vec<u8>> {
        self.files.lock().get(name).cloned()
    }

    /// Overwrites (or creates) a file — tests use this to inject
    /// corruption into sealed segments.
    pub fn put_file(&self, name: &str, bytes: Vec<u8>) {
        self.files.lock().insert(name.to_string(), bytes);
    }

    /// Every file name currently present.
    pub fn names(&self) -> Vec<String> {
        self.files.lock().keys().cloned().collect()
    }
}

struct MemDirSink {
    files: Arc<Mutex<BTreeMap<String, Vec<u8>>>>,
    name: String,
}

impl WalSink for MemDirSink {
    fn write_all(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        self.files
            .lock()
            .entry(self.name.clone())
            .or_default()
            .extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        Ok(())
    }

    fn truncate_to(&mut self, len: u64) -> Result<(), StorageError> {
        if let Some(data) = self.files.lock().get_mut(&self.name) {
            data.truncate(len as usize);
        }
        Ok(())
    }
}

impl LogDir for MemDir {
    fn list(&self) -> Result<Vec<String>, StorageError> {
        Ok(self.names())
    }

    fn read(&self, name: &str) -> Result<Vec<u8>, StorageError> {
        self.file(name).ok_or_else(|| StorageError::Io {
            op: "read",
            detail: format!("no such file `{name}`"),
        })
    }

    fn create(&self, name: &str) -> Result<Box<dyn WalSink>, StorageError> {
        self.files.lock().insert(name.to_string(), Vec::new());
        Ok(Box::new(MemDirSink {
            files: self.files.clone(),
            name: name.to_string(),
        }))
    }

    fn open_append(&self, name: &str) -> Result<Box<dyn WalSink>, StorageError> {
        if !self.files.lock().contains_key(name) {
            return Err(StorageError::Io {
                op: "open",
                detail: format!("no such file `{name}`"),
            });
        }
        Ok(Box::new(MemDirSink {
            files: self.files.clone(),
            name: name.to_string(),
        }))
    }

    fn rename(&self, from: &str, to: &str) -> Result<(), StorageError> {
        let mut files = self.files.lock();
        let data = files.remove(from).ok_or_else(|| StorageError::Io {
            op: "rename",
            detail: format!("no such file `{from}`"),
        })?;
        files.insert(to.to_string(), data);
        Ok(())
    }

    fn delete(&self, name: &str) -> Result<(), StorageError> {
        self.files.lock().remove(name);
        Ok(())
    }

    fn sync_dir(&self) -> Result<(), StorageError> {
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Directory-level fault injection
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct DirFailState {
    /// Remaining cost units before the injected crash; `None` = counting
    /// mode (never crashes, just accumulates `cost`).
    budget: Option<u64>,
    /// Total cost units charged so far (bytes written + metadata ops).
    cost: u64,
    crashed: bool,
}

/// Control handle for a [`FailpointDir`].
///
/// Every mutation is metered in **cost units**: each byte written through
/// a sink costs 1, and each metadata operation — create, rename, delete,
/// directory fsync, sink fsync, sink truncate — costs 1. Run a workload
/// once in counting mode to learn its total cost `C`, then replay it with
/// [`DirFailpointHandle::crash_after`]`(k)` for every `k < C`: the
/// mutation that exhausts the budget persists only its affordable prefix
/// and errors, and **every** later mutation errors — the directory is
/// frozen exactly as a crash at that point would leave it. Reads are free
/// and keep working (the harness recovers from a snapshot anyway).
#[derive(Clone, Default)]
pub struct DirFailpointHandle {
    inner: Arc<Mutex<DirFailState>>,
}

impl DirFailpointHandle {
    pub fn new() -> Self {
        DirFailpointHandle::default()
    }

    /// Crash after `units` further cost units take effect.
    pub fn crash_after(&self, units: u64) {
        let mut s = self.inner.lock();
        s.budget = Some(units);
        s.crashed = units == 0;
    }

    /// Counting mode: never crash, keep accumulating [`Self::cost`].
    pub fn clear(&self) {
        let mut s = self.inner.lock();
        s.budget = None;
        s.crashed = false;
    }

    /// Total cost units charged so far.
    pub fn cost(&self) -> u64 {
        self.inner.lock().cost
    }

    /// True once the injected crash has fired.
    pub fn crashed(&self) -> bool {
        self.inner.lock().crashed
    }

    /// Charges `n` units; returns how many of them may take effect. The
    /// second field is `Some(err)` when the crash fired at or before this
    /// charge (the caller persists the affordable prefix, then errors).
    fn charge(&self, n: u64) -> (u64, Option<StorageError>) {
        let mut s = self.inner.lock();
        s.cost += n;
        let err = || StorageError::Io {
            op: "failpoint",
            detail: "injected crash: directory is frozen".to_string(),
        };
        if s.budget.is_none() {
            return (n, None);
        }
        if s.crashed {
            return (0, Some(err()));
        }
        let b = s.budget.as_mut().unwrap();
        if *b >= n {
            *b -= n;
            (n, None)
        } else {
            let allowed = *b;
            *b = 0;
            s.crashed = true;
            (allowed, Some(err()))
        }
    }
}

/// A [`LogDir`] wrapper that injects a crash after an exact cost budget —
/// the directory-level counterpart of [`crate::wal::FailpointSink`],
/// covering rotation, manifest swap, compaction copy and delete.
pub struct FailpointDir {
    inner: Arc<dyn LogDir>,
    points: DirFailpointHandle,
}

impl FailpointDir {
    pub fn new(inner: Arc<dyn LogDir>, points: DirFailpointHandle) -> Self {
        FailpointDir { inner, points }
    }
}

struct FailpointDirSink {
    inner: Box<dyn WalSink>,
    points: DirFailpointHandle,
}

impl WalSink for FailpointDirSink {
    fn write_all(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        let (allowed, err) = self.points.charge(bytes.len() as u64);
        if allowed > 0 {
            self.inner.write_all(&bytes[..allowed as usize])?;
        }
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        let (allowed, err) = self.points.charge(1);
        if let Some(e) = err {
            return Err(e);
        }
        debug_assert_eq!(allowed, 1);
        self.inner.sync()
    }

    fn truncate_to(&mut self, len: u64) -> Result<(), StorageError> {
        let (_, err) = self.points.charge(1);
        if let Some(e) = err {
            return Err(e);
        }
        self.inner.truncate_to(len)
    }
}

impl FailpointDir {
    fn charge_op(&self) -> Result<(), StorageError> {
        let (_, err) = self.points.charge(1);
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl LogDir for FailpointDir {
    fn list(&self) -> Result<Vec<String>, StorageError> {
        self.inner.list()
    }

    fn read(&self, name: &str) -> Result<Vec<u8>, StorageError> {
        self.inner.read(name)
    }

    fn create(&self, name: &str) -> Result<Box<dyn WalSink>, StorageError> {
        self.charge_op()?;
        Ok(Box::new(FailpointDirSink {
            inner: self.inner.create(name)?,
            points: self.points.clone(),
        }))
    }

    fn open_append(&self, name: &str) -> Result<Box<dyn WalSink>, StorageError> {
        Ok(Box::new(FailpointDirSink {
            inner: self.inner.open_append(name)?,
            points: self.points.clone(),
        }))
    }

    fn rename(&self, from: &str, to: &str) -> Result<(), StorageError> {
        self.charge_op()?;
        self.inner.rename(from, to)
    }

    fn delete(&self, name: &str) -> Result<(), StorageError> {
        self.charge_op()?;
        self.inner.delete(name)
    }

    fn sync_dir(&self) -> Result<(), StorageError> {
        self.charge_op()?;
        self.inner.sync_dir()
    }
}

// ---------------------------------------------------------------------
// The manifest
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
struct SealedSeg {
    seq: u64,
    name: String,
    len: u64,
    max_ts: Ts,
    /// True when the segment holds any non-commit (DDL) record. A
    /// checkpoint boot may only skip a file when `max_ts <= checkpoint
    /// ts` **and** it carries no DDL — DDL records are untimestamped, so
    /// a DDL-only segment has `max_ts == 0` and would otherwise be
    /// skipped wrongly.
    has_ddl: bool,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct ColdFile {
    name: String,
    seq_lo: u64,
    seq_hi: u64,
    len: u64,
    max_ts: Ts,
    /// OR of the compacted segments' `has_ddl` flags (see [`SealedSeg`]).
    has_ddl: bool,
}

/// One checkpoint file tracked by the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CheckpointFile {
    name: String,
    ts: Ts,
    len: u64,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Manifest {
    next_seq: u64,
    cold: Vec<ColdFile>,
    sealed: Vec<SealedSeg>,
    active_seq: u64,
    active_name: String,
    /// Checkpoints, oldest first.
    checkpoints: Vec<CheckpointFile>,
    /// Highest GC floor compaction has seen. Checkpoints at or below it
    /// are retained as the deep time-travel ladder (see
    /// [`SegmentedWal::write_checkpoint`]); persisting it keeps the
    /// ladder safe across reboots.
    gc_floor: Ts,
}

fn encode_manifest(m: &Manifest) -> Vec<u8> {
    let mut payload = Vec::with_capacity(64);
    put_u32(&mut payload, MANIFEST_VERSION);
    put_u64(&mut payload, m.next_seq);
    put_u32(&mut payload, m.cold.len() as u32);
    for c in &m.cold {
        put_str(&mut payload, &c.name);
        put_u64(&mut payload, c.seq_lo);
        put_u64(&mut payload, c.seq_hi);
        put_u64(&mut payload, c.len);
        put_u64(&mut payload, c.max_ts);
        payload.push(c.has_ddl as u8);
    }
    put_u32(&mut payload, m.sealed.len() as u32);
    for s in &m.sealed {
        put_str(&mut payload, &s.name);
        put_u64(&mut payload, s.seq);
        put_u64(&mut payload, s.len);
        put_u64(&mut payload, s.max_ts);
        payload.push(s.has_ddl as u8);
    }
    put_str(&mut payload, &m.active_name);
    put_u64(&mut payload, m.active_seq);
    put_u32(&mut payload, m.checkpoints.len() as u32);
    for ck in &m.checkpoints {
        put_str(&mut payload, &ck.name);
        put_u64(&mut payload, ck.ts);
        put_u64(&mut payload, ck.len);
    }
    put_u64(&mut payload, m.gc_floor);

    let mut out = Vec::with_capacity(8 + 12 + payload.len());
    out.extend_from_slice(MANIFEST_MAGIC);
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(&payload));
    let hdr_crc = crc32(&out[8..16]);
    put_u32(&mut out, hdr_crc);
    out.extend_from_slice(&payload);
    out
}

fn manifest_corrupt(offset: u64, detail: impl Into<String>) -> StorageError {
    StorageError::Corrupt {
        offset,
        detail: format!("{MANIFEST_NAME}: {}", detail.into()),
    }
}

fn decode_manifest(bytes: &[u8]) -> Result<Manifest, StorageError> {
    if bytes.len() < 8 + 12 {
        return Err(manifest_corrupt(0, "truncated manifest"));
    }
    if &bytes[..8] != MANIFEST_MAGIC {
        return Err(manifest_corrupt(0, "bad magic"));
    }
    let hdr = &bytes[8..20];
    let stored_hdr_crc = u32::from_le_bytes(hdr[8..12].try_into().unwrap());
    if crc32(&hdr[0..8]) != stored_hdr_crc {
        return Err(manifest_corrupt(8, "header checksum mismatch"));
    }
    let len = u32::from_le_bytes(hdr[0..4].try_into().unwrap()) as usize;
    if bytes.len() != 20 + len {
        return Err(manifest_corrupt(
            20,
            format!(
                "payload length mismatch: header says {len}, have {}",
                bytes.len() - 20
            ),
        ));
    }
    let payload = &bytes[20..];
    let stored_crc = u32::from_le_bytes(hdr[4..8].try_into().unwrap());
    if crc32(payload) != stored_crc {
        return Err(manifest_corrupt(20, "payload checksum mismatch"));
    }
    (|| -> Result<Manifest, String> {
        let mut c = Cursor::new(payload);
        let version = c.u32()?;
        if version != 1 && version != MANIFEST_VERSION {
            return Err(format!("unsupported manifest version {version}"));
        }
        // Version 1 has no per-file DDL flags: default `has_ddl` to true
        // so every v1 file replays in full (conservative, never wrong).
        let v1 = version == 1;
        let next_seq = c.u64()?;
        let n_cold = c.u32()? as usize;
        if n_cold > payload.len() {
            return Err(format!("cold count {n_cold} exceeds payload"));
        }
        let mut cold = Vec::with_capacity(n_cold);
        for _ in 0..n_cold {
            cold.push(ColdFile {
                name: c.str()?,
                seq_lo: c.u64()?,
                seq_hi: c.u64()?,
                len: c.u64()?,
                max_ts: c.u64()?,
                has_ddl: if v1 { true } else { c.u8()? != 0 },
            });
        }
        let n_sealed = c.u32()? as usize;
        if n_sealed > payload.len() {
            return Err(format!("sealed count {n_sealed} exceeds payload"));
        }
        let mut sealed = Vec::with_capacity(n_sealed);
        for _ in 0..n_sealed {
            sealed.push(SealedSeg {
                name: c.str()?,
                seq: c.u64()?,
                len: c.u64()?,
                max_ts: c.u64()?,
                has_ddl: if v1 { true } else { c.u8()? != 0 },
            });
        }
        let active_name = c.str()?;
        let active_seq = c.u64()?;
        let mut checkpoints = Vec::new();
        let mut gc_floor = 0;
        if !v1 {
            let n_ckpt = c.u32()? as usize;
            if n_ckpt > payload.len() {
                return Err(format!("checkpoint count {n_ckpt} exceeds payload"));
            }
            for _ in 0..n_ckpt {
                checkpoints.push(CheckpointFile {
                    name: c.str()?,
                    ts: c.u64()?,
                    len: c.u64()?,
                });
            }
            gc_floor = c.u64()?;
        }
        if c.remaining() != 0 {
            return Err(format!("{} trailing bytes", c.remaining()));
        }
        Ok(Manifest {
            next_seq,
            cold,
            sealed,
            active_seq,
            active_name,
            checkpoints,
            gc_floor,
        })
    })()
    .map_err(|detail| manifest_corrupt(20, detail))
}

/// Writes the manifest atomically: temp file, fsync, rename over
/// `MANIFEST`, fsync the directory. Never edits the manifest in place.
fn write_manifest(dir: &dyn LogDir, m: &Manifest) -> Result<(), StorageError> {
    let mut sink = dir.create(MANIFEST_TMP)?;
    sink.write_all(&encode_manifest(m))?;
    sink.sync()?;
    drop(sink);
    dir.rename(MANIFEST_TMP, MANIFEST_NAME)?;
    dir.sync_dir()
}

// ---------------------------------------------------------------------
// The segmented WAL
// ---------------------------------------------------------------------

/// Point-in-time statistics, exposed over the wire as `sys_health`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Live segment files: sealed + the active one.
    pub segments: usize,
    /// Immutable cold files produced by compaction.
    pub cold_files: usize,
    /// Bytes in the active segment (the only file still growing).
    pub active_bytes: u64,
    /// Global logical end offset (every byte ever accepted).
    pub appended: u64,
    /// Global durable LSN watermark.
    pub durable: u64,
    /// Configured rotation bound (0 = rotation disabled).
    pub segment_bytes: u64,
    /// Completed rotations since open.
    pub rotations: u64,
    /// Completed compactions since open.
    pub compactions: u64,
    /// Rotation attempts that errored (recovery reconciles any debris).
    pub rotation_errors: u64,
    /// Compaction attempts that errored.
    pub compaction_errors: u64,
    /// Unix ms of the last completed compaction (0 = never).
    pub last_compaction_unix_ms: u64,
    /// Checkpoint files currently tracked by the manifest.
    pub checkpoints: usize,
    /// Timestamp of the newest tracked checkpoint (0 = none).
    pub checkpoint_newest_ts: Ts,
    /// Total bytes of the tracked checkpoint files.
    pub checkpoint_bytes: u64,
    /// Checkpoints successfully written since open.
    pub checkpoint_writes: u64,
    /// Checkpoint attempts skipped (no new commits, duplicate timestamp,
    /// another checkpoint in flight, or checkpoints unsupported here).
    pub checkpoint_skips: u64,
    /// Checkpoint attempts that errored (recovery reconciles any debris).
    pub checkpoint_errors: u64,
    /// Checkpoints that failed validation and were skipped in favour of
    /// an older one (or full replay) — at boot or on a deep fork.
    pub checkpoint_fallbacks: u64,
}

/// What multi-segment recovery found and repaired.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SegmentedRecovery {
    /// Bytes discarded as a torn tail of the *newest* segment.
    pub truncated_bytes: u64,
    /// Segment files walked (sealed + active).
    pub segments: usize,
    /// Cold files replayed.
    pub cold_files: usize,
    /// Orphan successor segments adopted (crash mid-rotation).
    pub adopted_orphans: usize,
    /// Stale temp/segment/cold files reconciled away.
    pub removed_files: usize,
    /// True when a pre-segmentation single-file log was migrated into
    /// the directory layout.
    pub migrated_legacy: bool,
    /// Timestamp of the checkpoint recovery booted from (`None` = full
    /// replay from ts 0).
    pub checkpoint_ts: Option<Ts>,
    /// Checkpoints that failed validation before a usable one was found.
    pub checkpoint_fallbacks: usize,
    /// Cold/sealed files whose replay the checkpoint made unnecessary.
    pub skipped_files: usize,
}

struct ActiveSeg {
    seq: u64,
    name: String,
    wal: Arc<Wal>,
    /// Global offset of this segment's byte 0: the summed lengths of
    /// every cold and sealed file before it.
    base: u64,
    max_ts: Ts,
    /// Whether any non-commit (DDL) record was appended (see
    /// [`SealedSeg::has_ddl`]).
    has_ddl: bool,
}

struct SegState {
    active: ActiveSeg,
    sealed: Vec<SealedSeg>,
    cold: Vec<ColdFile>,
    next_seq: u64,
    /// Checkpoints tracked by the manifest, oldest first.
    checkpoints: Vec<CheckpointFile>,
    /// Highest GC floor compaction has seen (manifest-persisted).
    gc_floor: Ts,
}

/// The segmented, manifest-driven WAL (module docs). Exposes the same
/// append/sync surface as [`Wal`] but over a directory of segments, with
/// **global** LSNs spanning all of them. Constructed directly over a
/// single in-memory [`Wal`] ([`SegmentedWal::single`]) it degrades to the
/// pre-segmentation behaviour: no directory, no rotation.
pub struct SegmentedWal {
    dir: Option<Arc<dyn LogDir>>,
    opts: WalOptions,
    group: AtomicBool,
    state: Mutex<SegState>,
    /// Serializes rotation and compaction against each other. Lock order:
    /// `rotate_lock` → `state` → the active `Wal`'s internal state.
    rotate_lock: Mutex<()>,
    rotations: AtomicU64,
    compactions: AtomicU64,
    rotation_errors: AtomicU64,
    compaction_errors: AtomicU64,
    last_compaction_ms: AtomicU64,
    checkpoint_writes: AtomicU64,
    checkpoint_skips: AtomicU64,
    checkpoint_errors: AtomicU64,
    checkpoint_fallbacks: AtomicU64,
    /// Global appended offset at the last successful checkpoint — the
    /// reference point for [`SegmentedWal::wants_checkpoint`].
    last_ckpt_lsn: AtomicU64,
    /// The checkpoint recovery booted from, parked here so
    /// `Database::recover_from` / `Session::recover_session` can consume
    /// it without changing `open_dir`'s return type.
    recovered_checkpoint: Mutex<Option<Checkpoint>>,
}

impl SegmentedWal {
    /// Wraps one existing [`Wal`] with no backing directory: appends and
    /// syncs delegate verbatim and rotation/compaction are no-ops. This
    /// is how test sinks ([`crate::wal::MemSink`],
    /// [`crate::wal::FailpointSink`]) attach.
    pub fn single(wal: Arc<Wal>) -> Arc<SegmentedWal> {
        let opts = WalOptions {
            sync_mode: wal.sync_mode(),
            group_commit: wal.group_commit(),
            segment_bytes: 0,
            checkpoint_bytes: 0,
        };
        let group = wal.group_commit();
        Arc::new(SegmentedWal {
            dir: None,
            opts,
            group: AtomicBool::new(group),
            state: Mutex::new(SegState {
                active: ActiveSeg {
                    seq: 0,
                    name: segment_name(0),
                    wal,
                    base: 0,
                    max_ts: 0,
                    has_ddl: false,
                },
                sealed: Vec::new(),
                cold: Vec::new(),
                next_seq: 1,
                checkpoints: Vec::new(),
                gc_floor: 0,
            }),
            rotate_lock: Mutex::new(()),
            rotations: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            rotation_errors: AtomicU64::new(0),
            compaction_errors: AtomicU64::new(0),
            last_compaction_ms: AtomicU64::new(0),
            checkpoint_writes: AtomicU64::new(0),
            checkpoint_skips: AtomicU64::new(0),
            checkpoint_errors: AtomicU64::new(0),
            checkpoint_fallbacks: AtomicU64::new(0),
            last_ckpt_lsn: AtomicU64::new(0),
            recovered_checkpoint: Mutex::new(None),
        })
    }

    /// Creates a fresh segmented log in `dir` (segment 0 + manifest).
    pub fn create_dir(
        dir: Arc<dyn LogDir>,
        opts: WalOptions,
    ) -> Result<Arc<SegmentedWal>, StorageError> {
        // Wipe any previous log layout — create semantics truncate.
        for name in dir.list()? {
            if name == MANIFEST_NAME
                || name.ends_with(".tmp")
                || parse_segment_name(&name).is_some()
                || parse_cold_name(&name).is_some()
                || parse_checkpoint_name(&name).is_some()
            {
                dir.delete(&name)?;
            }
        }
        let name = segment_name(0);
        let sink = dir.create(&name)?;
        dir.sync_dir()?;
        let manifest = Manifest {
            next_seq: 1,
            cold: Vec::new(),
            sealed: Vec::new(),
            active_seq: 0,
            active_name: name.clone(),
            checkpoints: Vec::new(),
            gc_floor: 0,
        };
        write_manifest(dir.as_ref(), &manifest)?;
        let wal = Wal::with_sink(sink, opts);
        Ok(Self::assemble(Some(dir), opts, wal, name, manifest))
    }

    /// Creates (truncating) a segmented log at a filesystem path. A
    /// pre-segmentation single *file* at `path` is removed first.
    pub fn create_path(
        path: impl AsRef<Path>,
        opts: WalOptions,
    ) -> Result<Arc<SegmentedWal>, StorageError> {
        let path = path.as_ref();
        if path.is_file() {
            std::fs::remove_file(path).map_err(|e| io_err("create", e))?;
        }
        let dir: Arc<dyn LogDir> = Arc::new(FsDir::open(path)?);
        Self::create_dir(dir, opts)
    }

    /// Opens (creating if absent) a segmented log at a filesystem path,
    /// transparently migrating a pre-segmentation single-file log into
    /// the directory layout (the old file becomes segment 0, byte for
    /// byte — it is renamed, not copied).
    pub fn open_path(
        path: impl AsRef<Path>,
        opts: WalOptions,
    ) -> Result<(Arc<SegmentedWal>, Vec<WalRecord>, SegmentedRecovery), StorageError> {
        let migrated = migrate_legacy_file(path.as_ref())?;
        let dir: Arc<dyn LogDir> = Arc::new(FsDir::open(path.as_ref())?);
        let (wal, records, mut rec) = Self::open_dir(dir, opts)?;
        rec.migrated_legacy = migrated;
        Ok((wal, records, rec))
    }

    /// Opens a segmented log over any [`LogDir`]: validates the manifest,
    /// reconciles crash debris (temp files, orphan successors, unlisted
    /// leftovers), strictly validates every cold and sealed file, applies
    /// the torn-tail rule to the active segment only, and returns the
    /// concatenated records in global commit order.
    pub fn open_dir(
        dir: Arc<dyn LogDir>,
        opts: WalOptions,
    ) -> Result<(Arc<SegmentedWal>, Vec<WalRecord>, SegmentedRecovery), StorageError> {
        let mut rec = SegmentedRecovery::default();
        let mut names = dir.list()?;
        names.sort();

        // Temp files never survive a crash: both the manifest swap and
        // the compaction copy go through `.tmp` names that are renamed
        // away before they are ever referenced.
        let mut dirty = false;
        for name in names.iter().filter(|n| n.ends_with(".tmp")) {
            dir.delete(name)?;
            rec.removed_files += 1;
            dirty = true;
        }
        names.retain(|n| !n.ends_with(".tmp"));

        let had_manifest = names.iter().any(|n| n == MANIFEST_NAME);
        let mut manifest = if had_manifest {
            decode_manifest(&dir.read(MANIFEST_NAME)?)?
        } else {
            // Manifest-less: a pre-segmentation layout (adopted wal-*.seg
            // files) or a crash before the very first manifest write.
            // Unpublished cold files are deleted — without a manifest
            // their originals are still present and replaying both would
            // duplicate history. Unpublished checkpoints are deleted for
            // the same reason: nothing vouches for them.
            for name in &names {
                if parse_cold_name(name).is_some() || parse_checkpoint_name(name).is_some() {
                    dir.delete(name)?;
                    rec.removed_files += 1;
                }
            }
            let mut segs: Vec<(u64, String)> = names
                .iter()
                .filter_map(|n| parse_segment_name(n).map(|seq| (seq, n.clone())))
                .collect();
            segs.sort();
            let (first_seq, first_name) = match segs.first() {
                Some(first) => first.clone(),
                None => {
                    let name = segment_name(0);
                    drop(dir.create(&name)?);
                    dir.sync_dir()?;
                    names.push(name.clone());
                    (0, name)
                }
            };
            dirty = true;
            // Start from the lowest segment as active; the orphan
            // adoption walk below seals it and adopts the rest, sharing
            // one code path with crash-mid-rotation recovery.
            Manifest {
                next_seq: first_seq + 1,
                cold: Vec::new(),
                sealed: Vec::new(),
                active_seq: first_seq,
                active_name: first_name,
                checkpoints: Vec::new(),
                gc_floor: 0,
            }
        };

        // Adopt orphan successors: a crash after rotation's swap but
        // before its manifest write leaves `wal-<active_seq+1>.seg` (and,
        // under repeated manifest-write failures, a contiguous run of
        // them) outside the manifest. A non-empty successor proves the
        // swap completed, which proves its predecessor was fully synced
        // at seal time — so the predecessor must decode perfectly clean.
        let mut decoded: BTreeMap<String, Vec<WalRecord>> = BTreeMap::new();
        loop {
            let succ_name = segment_name(manifest.active_seq + 1);
            if !names.contains(&succ_name) {
                break;
            }
            let succ_bytes = dir.read(&succ_name)?;
            if succ_bytes.is_empty() {
                // The swap may or may not have happened; either way an
                // empty successor carries nothing. Drop it and let the
                // next rotation recreate it.
                dir.delete(&succ_name)?;
                names.retain(|n| *n != succ_name);
                rec.removed_files += 1;
                dirty = true;
                break;
            }
            let prev_name = manifest.active_name.clone();
            let prev_bytes = dir.read(&prev_name)?;
            let (records, info) =
                decode_records(&prev_bytes).map_err(|e| prefix_file(e, &prev_name))?;
            if info.truncated_bytes != 0 {
                return Err(StorageError::Corrupt {
                    offset: info.valid_len,
                    detail: format!(
                        "{prev_name}: sealed segment has a torn tail ({} bytes) but its successor {succ_name} holds data",
                        info.truncated_bytes
                    ),
                });
            }
            manifest.sealed.push(SealedSeg {
                seq: manifest.active_seq,
                name: prev_name.clone(),
                len: prev_bytes.len() as u64,
                max_ts: max_commit_ts(&records),
                has_ddl: has_ddl(&records),
            });
            decoded.insert(prev_name, records);
            manifest.active_seq += 1;
            manifest.active_name = succ_name;
            manifest.next_seq = manifest.active_seq + 1;
            rec.adopted_orphans += 1;
            dirty = true;
        }

        // Delete unlisted leftovers: segments already compacted away
        // (crash between the compaction manifest swap and its deletes),
        // cold files never published, checkpoints renamed into place but
        // never manifest-listed (crash mid-checkpoint), or empty
        // creations beyond the adopted run.
        let listed: Vec<&str> = manifest
            .sealed
            .iter()
            .map(|s| s.name.as_str())
            .chain(manifest.cold.iter().map(|c| c.name.as_str()))
            .chain(manifest.checkpoints.iter().map(|c| c.name.as_str()))
            .chain(std::iter::once(manifest.active_name.as_str()))
            .collect();
        for name in &names {
            let is_log_file = parse_segment_name(name).is_some()
                || parse_cold_name(name).is_some()
                || parse_checkpoint_name(name).is_some();
            if is_log_file && !listed.contains(&name.as_str()) {
                dir.delete(name)?;
                rec.removed_files += 1;
                dirty = true;
            }
        }

        // Select the newest checkpoint that validates end-to-end. A
        // missing or corrupt checkpoint is *expected* debris (crash
        // mid-write, bit rot): fall back to the next older one, counting
        // each fallback, and delist the bad file — never guess.
        let mut boot_ckpt: Option<Checkpoint> = None;
        let mut by_ts = manifest.checkpoints.clone();
        by_ts.sort_by_key(|c| c.ts);
        for ck in by_ts.iter().rev() {
            match dir.read(&ck.name).and_then(|b| decode_checkpoint(&b)) {
                Ok(decoded) if decoded.ts == ck.ts => {
                    boot_ckpt = Some(decoded);
                    break;
                }
                Ok(_) | Err(_) => {
                    rec.checkpoint_fallbacks += 1;
                    manifest.checkpoints.retain(|c| c.name != ck.name);
                    dir.delete(&ck.name)?;
                    rec.removed_files += 1;
                    dirty = true;
                }
            }
        }
        let ckpt_ts = boot_ckpt.as_ref().map(|c| c.ts).unwrap_or(0);
        rec.checkpoint_ts = boot_ckpt.as_ref().map(|c| c.ts);

        // Validate and decode immutable files in global (sequence) order.
        // Cold and sealed files are interleaved by their sequence ranges
        // — compaction may cold a run *behind* a still-hot sealed segment
        // — so the walk merges both lists sorted by low sequence. Cold
        // and sealed files were fully durable before they stopped being
        // active: any damage in them is corruption, never a torn tail.
        //
        // A checkpoint boot skips every immutable file whose commits the
        // snapshot already covers (`max_ts <= checkpoint ts`) and that
        // carries no DDL. Skipped files are not read or validated — that
        // *is* the O(delta) win — their manifest lengths still advance
        // the global LSN base.
        enum Imm<'a> {
            Cold(&'a ColdFile),
            Sealed(&'a SealedSeg),
        }
        let mut files: Vec<(u64, Imm)> = manifest
            .cold
            .iter()
            .map(|c| (c.seq_lo, Imm::Cold(c)))
            .chain(manifest.sealed.iter().map(|s| (s.seq, Imm::Sealed(s))))
            .collect();
        files.sort_by_key(|(seq, _)| *seq);
        let mut all_records = Vec::new();
        let mut base = 0u64;
        for (_, file) in files {
            let (name, len, max_ts, file_has_ddl) = match &file {
                Imm::Cold(c) => (c.name.as_str(), c.len, c.max_ts, c.has_ddl),
                Imm::Sealed(s) => (s.name.as_str(), s.len, s.max_ts, s.has_ddl),
            };
            let kind = match &file {
                Imm::Cold(_) => "cold file",
                Imm::Sealed(_) => "segment",
            };
            if ckpt_ts > 0 && max_ts <= ckpt_ts && !file_has_ddl {
                decoded.remove(name);
                base += len;
                rec.skipped_files += 1;
                match file {
                    Imm::Cold(_) => rec.cold_files += 1,
                    Imm::Sealed(_) => rec.segments += 1,
                }
                continue;
            }
            if let Imm::Sealed(s) = &file {
                if let Some(records) = decoded.remove(&s.name) {
                    base += s.len;
                    all_records.extend(records);
                    rec.segments += 1;
                    continue;
                }
            }
            let bytes = match dir.read(name) {
                Ok(b) => b,
                Err(_) => {
                    return Err(StorageError::Recovery {
                        detail: format!("manifest references missing {kind} `{name}`"),
                    })
                }
            };
            let (records, info) = decode_strict(&bytes, name, len)?;
            base += info.valid_len;
            all_records.extend(records);
            match file {
                Imm::Cold(_) => rec.cold_files += 1,
                Imm::Sealed(_) => rec.segments += 1,
            }
        }

        let active_name = manifest.active_name.clone();
        let active_bytes = match dir.read(&active_name) {
            Ok(b) => b,
            Err(_) => {
                return Err(StorageError::Recovery {
                    detail: format!("manifest references missing active segment `{active_name}`"),
                })
            }
        };
        let (active_records, info) =
            decode_records(&active_bytes).map_err(|e| prefix_file(e, &active_name))?;
        rec.truncated_bytes = info.truncated_bytes;
        rec.segments += 1;
        let active_max_ts = max_commit_ts(&active_records);
        let active_has_ddl = has_ddl(&active_records);
        all_records.extend(active_records);

        // On a checkpoint boot, commits the snapshot covers are dropped
        // from the replay stream (the snapshot *is* their state); DDL
        // records are kept — the caller replays them idempotently, since
        // the checkpoint already restored the catalog objects they made.
        if ckpt_ts > 0 {
            all_records.retain(|r| match r {
                WalRecord::Commit(e) => e.commit_ts > ckpt_ts,
                _ => true,
            });
        }

        if dirty {
            write_manifest(dir.as_ref(), &manifest)?;
        }

        // Repair the torn tail (also positions the sink at the end).
        let mut sink = dir.open_append(&active_name)?;
        sink.truncate_to(info.valid_len)?;
        let wal = Wal::with_sink_at(sink, info.valid_len, opts);

        let wal = Self::assemble_at(
            Some(dir),
            opts,
            wal,
            base,
            active_max_ts,
            active_has_ddl,
            manifest,
        );
        if let Some(ckpt) = boot_ckpt {
            // Cadence restarts from the recovered end of the log.
            wal.last_ckpt_lsn.store(wal.appended(), Ordering::Relaxed);
            *wal.recovered_checkpoint.lock() = Some(ckpt);
        }
        wal.checkpoint_fallbacks
            .store(rec.checkpoint_fallbacks as u64, Ordering::Relaxed);
        Ok((wal, all_records, rec))
    }

    fn assemble(
        dir: Option<Arc<dyn LogDir>>,
        opts: WalOptions,
        wal: Arc<Wal>,
        active_name: String,
        manifest: Manifest,
    ) -> Arc<SegmentedWal> {
        debug_assert_eq!(active_name, manifest.active_name);
        Self::assemble_at(dir, opts, wal, 0, 0, false, manifest)
    }

    fn assemble_at(
        dir: Option<Arc<dyn LogDir>>,
        opts: WalOptions,
        wal: Arc<Wal>,
        base: u64,
        active_max_ts: Ts,
        active_has_ddl: bool,
        manifest: Manifest,
    ) -> Arc<SegmentedWal> {
        Arc::new(SegmentedWal {
            dir,
            opts,
            group: AtomicBool::new(opts.group_commit),
            state: Mutex::new(SegState {
                active: ActiveSeg {
                    seq: manifest.active_seq,
                    name: manifest.active_name,
                    wal,
                    base,
                    max_ts: active_max_ts,
                    has_ddl: active_has_ddl,
                },
                sealed: manifest.sealed,
                cold: manifest.cold,
                next_seq: manifest.next_seq,
                checkpoints: manifest.checkpoints,
                gc_floor: manifest.gc_floor,
            }),
            rotate_lock: Mutex::new(()),
            rotations: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            rotation_errors: AtomicU64::new(0),
            compaction_errors: AtomicU64::new(0),
            last_compaction_ms: AtomicU64::new(0),
            checkpoint_writes: AtomicU64::new(0),
            checkpoint_skips: AtomicU64::new(0),
            checkpoint_errors: AtomicU64::new(0),
            checkpoint_fallbacks: AtomicU64::new(0),
            last_ckpt_lsn: AtomicU64::new(0),
            recovered_checkpoint: Mutex::new(None),
        })
    }

    /// True when this log is backed by a directory of segments (rotation
    /// and compaction active) rather than wrapping a single sink.
    pub fn is_segmented(&self) -> bool {
        self.dir.is_some()
    }

    /// The configured sync mode.
    pub fn sync_mode(&self) -> SyncMode {
        self.opts.sync_mode
    }

    /// True when group commit is enabled (the default).
    pub fn group_commit(&self) -> bool {
        self.group.load(Ordering::SeqCst)
    }

    /// Toggles group commit; applies to the active segment and every
    /// segment created after it.
    pub fn set_group_commit(&self, on: bool) {
        self.group.store(on, Ordering::SeqCst);
        self.state.lock().active.wal.set_group_commit(on);
    }

    /// Global logical end offset (bytes accepted across all segments).
    pub fn appended(&self) -> u64 {
        let s = self.state.lock();
        s.active.base + s.active.wal.appended()
    }

    /// Global durable LSN watermark. Every cold/sealed byte is durable by
    /// construction, so only the active segment contributes uncertainty.
    pub fn durable(&self) -> u64 {
        let s = self.state.lock();
        s.active.base + s.active.wal.durable()
    }

    /// Appends one framed record; returns its **global** end offset (the
    /// LSN to pass to [`SegmentedWal::sync_to`]). Called inside the
    /// publication window, exactly like [`Wal::append_record`].
    pub fn append_record(&self, record: &WalRecord) -> Result<u64, StorageError> {
        let mut s = self.state.lock();
        let lsn = s.active.wal.append_record(record)?;
        if let WalRecord::Commit(e) = record {
            s.active.max_ts = s.active.max_ts.max(e.commit_ts);
        } else {
            s.active.has_ddl = true;
        }
        Ok(s.active.base + lsn)
    }

    /// [`SegmentedWal::append_record`] for a committed transaction.
    pub fn append_entry(&self, entry: &CommittedTxn) -> Result<u64, StorageError> {
        let mut s = self.state.lock();
        let lsn = s.active.wal.append_entry(entry)?;
        s.active.max_ts = s.active.max_ts.max(entry.commit_ts);
        Ok(s.active.base + lsn)
    }

    /// Blocks until the log is confirmed through global `lsn` per the
    /// sync mode, then (outside the publication window — the caller has
    /// dropped its footprint locks) rolls the active segment if it
    /// crossed the size bound. LSNs at or below the active segment's base
    /// are durable by construction.
    pub fn sync_to(&self, lsn: u64) -> Result<(), StorageError> {
        let (wal, base) = {
            let s = self.state.lock();
            (s.active.wal.clone(), s.active.base)
        };
        let res = if lsn <= base {
            Ok(())
        } else {
            // `wal` may already be sealed by a concurrent rotation; its
            // bytes were fully synced at seal time, so this returns
            // immediately in that case.
            wal.sync_to(lsn - base)
        };
        if res.is_ok() {
            self.maybe_rotate();
        }
        res
    }

    /// Pushes buffered bytes of the active segment to its sink without
    /// fsync ([`SyncMode::Cached`] teardown), then checks rotation.
    pub fn flush(&self) -> Result<(), StorageError> {
        let wal = self.state.lock().active.wal.clone();
        wal.flush()?;
        self.maybe_rotate();
        Ok(())
    }

    /// Current statistics (the `sys_health` payload).
    pub fn stats(&self) -> WalStats {
        let (segments, cold_files, active_bytes, appended, durable, ckpts, ckpt_ts, ckpt_bytes) = {
            let s = self.state.lock();
            (
                s.sealed.len() + 1,
                s.cold.len(),
                s.active.wal.appended(),
                s.active.base + s.active.wal.appended(),
                s.active.base + s.active.wal.durable(),
                s.checkpoints.len(),
                s.checkpoints.iter().map(|c| c.ts).max().unwrap_or(0),
                s.checkpoints.iter().map(|c| c.len).sum::<u64>(),
            )
        };
        WalStats {
            segments,
            cold_files,
            active_bytes,
            appended,
            durable,
            segment_bytes: if self.dir.is_some() {
                self.opts.segment_bytes
            } else {
                0
            },
            rotations: self.rotations.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            rotation_errors: self.rotation_errors.load(Ordering::Relaxed),
            compaction_errors: self.compaction_errors.load(Ordering::Relaxed),
            last_compaction_unix_ms: self.last_compaction_ms.load(Ordering::Relaxed),
            checkpoints: ckpts,
            checkpoint_newest_ts: ckpt_ts,
            checkpoint_bytes: ckpt_bytes,
            checkpoint_writes: self.checkpoint_writes.load(Ordering::Relaxed),
            checkpoint_skips: self.checkpoint_skips.load(Ordering::Relaxed),
            checkpoint_errors: self.checkpoint_errors.load(Ordering::Relaxed),
            checkpoint_fallbacks: self.checkpoint_fallbacks.load(Ordering::Relaxed),
        }
    }

    // -- rotation ------------------------------------------------------

    fn maybe_rotate(&self) {
        let Some(dir) = self.dir.clone() else { return };
        if self.opts.segment_bytes == 0 {
            return;
        }
        {
            let s = self.state.lock();
            if s.active.wal.appended() < self.opts.segment_bytes {
                return;
            }
        }
        if let Err(_e) = self.rotate(&dir) {
            self.rotation_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Seals the active segment and installs a fresh successor. The old
    /// segment is pre-synced outside any lock, then micro-synced again
    /// under the state lock (appends blocked) during the swap — so a
    /// segment is always complete *and durable* the moment it stops being
    /// active, and a torn tail can only ever exist in the newest segment.
    fn rotate(&self, dir: &Arc<dyn LogDir>) -> Result<(), StorageError> {
        let _g = self.rotate_lock.lock();
        let (old_wal, new_seq) = {
            let s = self.state.lock();
            if s.active.wal.appended() < self.opts.segment_bytes {
                return Ok(()); // another thread rotated first
            }
            (s.active.wal.clone(), s.next_seq)
        };
        // 1. Pre-sync: bulk of the segment goes durable without blocking
        //    appenders.
        seal_sync(&old_wal, self.opts.sync_mode)?;
        // 2. Create the successor before the swap; a crash here leaves at
        //    worst an empty orphan that recovery deletes.
        let new_name = segment_name(new_seq);
        let sink = dir.create(&new_name)?;
        dir.sync_dir()?;
        let new_wal = Wal::with_sink(
            sink,
            WalOptions {
                group_commit: self.group.load(Ordering::SeqCst),
                ..self.opts
            },
        );
        // 3. Swap under the state lock with a final straggler micro-sync.
        let manifest = {
            let mut s = self.state.lock();
            seal_sync(&s.active.wal, self.opts.sync_mode)?;
            let len = s.active.wal.appended();
            let sealed = SealedSeg {
                seq: s.active.seq,
                name: s.active.name.clone(),
                len,
                max_ts: s.active.max_ts,
                has_ddl: s.active.has_ddl,
            };
            let base = s.active.base + len;
            s.sealed.push(sealed);
            s.active = ActiveSeg {
                seq: new_seq,
                name: new_name,
                wal: new_wal,
                base,
                max_ts: 0,
                has_ddl: false,
            };
            s.next_seq = new_seq + 1;
            manifest_of(&s)
        };
        self.rotations.fetch_add(1, Ordering::Relaxed);
        // 4. Publish the new layout. A crash (or error) before this is
        //    healed by orphan adoption at recovery — the swap already
        //    happened, so the error is counted but the log stays correct.
        write_manifest(dir.as_ref(), &manifest)
    }

    // -- compaction ----------------------------------------------------

    /// Compacts every **contiguous run** of sealed segments wholly at or
    /// below the GC `floor` (`max_ts <= floor`, matching the ≤-inclusive
    /// log truncation) into immutable cold files — not just the longest
    /// prefix, so a hot segment pinning the floor no longer blocks
    /// eligible segments behind it. Each copy is verified
    /// record-by-record, published via temp-rename + manifest swap, and
    /// the originals are deleted only after the manifest swap is durable.
    /// When the cold-file count exceeds a bound, contiguous cold runs are
    /// merged into larger files under the same protocol. Returns how many
    /// segments were compacted.
    pub fn compact_below(&self, floor: Ts) -> Result<usize, StorageError> {
        let Some(dir) = self.dir.clone() else {
            return Ok(0);
        };
        if floor == 0 {
            return Ok(0);
        }
        let res = self.compact_below_inner(&dir, floor);
        if res.is_err() {
            self.compaction_errors.fetch_add(1, Ordering::Relaxed);
        }
        res
    }

    fn compact_below_inner(&self, dir: &Arc<dyn LogDir>, floor: Ts) -> Result<usize, StorageError> {
        let _g = self.rotate_lock.lock();
        // Maximal runs of eligible sealed segments, contiguous in
        // *sequence* (not just list position): a seq gap means a cold
        // file covers the missing range, and a run spanning the gap
        // would mint a cold name overlapping it. Commit order is segment
        // order, so a non-prefix run can only arise behind segments with
        // `max_ts` above the floor — e.g. DDL-only segments
        // (`max_ts == 0`) trailing a hot one.
        let runs: Vec<Vec<SealedSeg>> = {
            let mut s = self.state.lock();
            // Remember the floor: checkpoints at or below it are the deep
            // time-travel ladder and survive checkpoint pruning. The next
            // manifest swap persists it.
            s.gc_floor = s.gc_floor.max(floor);
            let mut runs = Vec::new();
            let mut cur: Vec<SealedSeg> = Vec::new();
            for seg in &s.sealed {
                let eligible = seg.max_ts <= floor;
                let contiguous = cur.last().is_some_and(|p| p.seq + 1 == seg.seq);
                if !(eligible && (cur.is_empty() || contiguous)) && !cur.is_empty() {
                    runs.push(std::mem::take(&mut cur));
                }
                if eligible {
                    cur.push(seg.clone());
                }
            }
            if !cur.is_empty() {
                runs.push(cur);
            }
            runs
        };
        let mut compacted = 0usize;
        for run in &runs {
            let seq_lo = run.first().unwrap().seq;
            let seq_hi = run.last().unwrap().seq;
            let cold = ColdFile {
                name: cold_name(seq_lo, seq_hi),
                seq_lo,
                seq_hi,
                len: 0, // filled by publish_cold
                max_ts: run.iter().map(|s| s.max_ts).max().unwrap_or(0),
                has_ddl: run.iter().any(|s| s.has_ddl),
            };
            let sources: Vec<(String, u64)> = run.iter().map(|s| (s.name.clone(), s.len)).collect();
            self.publish_cold(dir, &sources, cold)?;
            compacted += run.len();
        }
        if compacted > 0 {
            self.compactions.fetch_add(1, Ordering::Relaxed);
            self.last_compaction_ms.store(unix_ms(), Ordering::Relaxed);
        }
        self.merge_cold_files(dir)?;
        Ok(compacted)
    }

    /// Copies + strictly verifies `sources` into `cold.name` (temp file,
    /// fsync, rename, dir fsync), publishes it in the manifest — removing
    /// every source from the sealed and cold lists — and only then
    /// deletes the originals (best-effort; recovery reconciles leftovers).
    fn publish_cold(
        &self,
        dir: &Arc<dyn LogDir>,
        sources: &[(String, u64)],
        mut cold: ColdFile,
    ) -> Result<(), StorageError> {
        let tmp_name = format!("{}.tmp", cold.name);
        let mut sink = dir.create(&tmp_name)?;
        let mut total = 0u64;
        for (name, len) in sources {
            let bytes = dir.read(name)?;
            let (_, info) = decode_strict(&bytes, name, *len)?;
            debug_assert_eq!(info.truncated_bytes, 0);
            sink.write_all(&bytes)?;
            total += bytes.len() as u64;
        }
        sink.sync()?;
        drop(sink);
        dir.rename(&tmp_name, &cold.name)?;
        dir.sync_dir()?;
        cold.len = total;

        // Manifest swap FIRST (the cold file becomes authoritative), then
        // the in-memory state, then — and only then — the deletes.
        let source_names: Vec<&str> = sources.iter().map(|(n, _)| n.as_str()).collect();
        let manifest = {
            let s = self.state.lock();
            let mut m = manifest_of(&s);
            replace_with_cold(&mut m, &source_names, cold.clone());
            m
        };
        write_manifest(dir.as_ref(), &manifest)?;
        {
            let mut s = self.state.lock();
            let mut m = Manifest {
                next_seq: s.next_seq,
                cold: std::mem::take(&mut s.cold),
                sealed: std::mem::take(&mut s.sealed),
                active_seq: s.active.seq,
                active_name: s.active.name.clone(),
                checkpoints: std::mem::take(&mut s.checkpoints),
                gc_floor: s.gc_floor,
            };
            replace_with_cold(&mut m, &source_names, cold);
            s.cold = m.cold;
            s.sealed = m.sealed;
            s.checkpoints = m.checkpoints;
        }
        // Best-effort: leftover originals are unlisted now and recovery
        // deletes them if we crash (or error) here.
        for (name, _) in sources {
            let _ = dir.delete(name);
        }
        let _ = dir.sync_dir();
        Ok(())
    }

    /// Merges contiguous cold-file chains while the cold count exceeds
    /// [`COLD_MERGE_BOUND`], longest chain first. Chains are contiguous
    /// by sequence range (`a.seq_hi + 1 == b.seq_lo`); files separated by
    /// a still-sealed gap are left alone.
    fn merge_cold_files(&self, dir: &Arc<dyn LogDir>) -> Result<(), StorageError> {
        loop {
            let chain: Vec<ColdFile> = {
                let s = self.state.lock();
                if s.cold.len() <= COLD_MERGE_BOUND {
                    return Ok(());
                }
                let mut best: Vec<ColdFile> = Vec::new();
                let mut cur: Vec<ColdFile> = Vec::new();
                for c in &s.cold {
                    let contiguous = cur.last().is_some_and(|p| p.seq_hi + 1 == c.seq_lo);
                    if !cur.is_empty() && !contiguous {
                        if cur.len() > best.len() {
                            best = std::mem::take(&mut cur);
                        } else {
                            cur.clear();
                        }
                    }
                    cur.push(c.clone());
                }
                if cur.len() > best.len() {
                    best = cur;
                }
                if best.len() < 2 {
                    return Ok(());
                }
                best
            };
            let merged = ColdFile {
                name: cold_name(chain.first().unwrap().seq_lo, chain.last().unwrap().seq_hi),
                seq_lo: chain.first().unwrap().seq_lo,
                seq_hi: chain.last().unwrap().seq_hi,
                len: 0, // filled by publish_cold
                max_ts: chain.iter().map(|c| c.max_ts).max().unwrap_or(0),
                has_ddl: chain.iter().any(|c| c.has_ddl),
            };
            let sources: Vec<(String, u64)> =
                chain.iter().map(|c| (c.name.clone(), c.len)).collect();
            self.publish_cold(dir, &sources, merged)?;
        }
    }

    // -- checkpoints ---------------------------------------------------

    /// True when enough WAL bytes accumulated since the last checkpoint
    /// that the cadence policy ([`WalOptions::checkpoint_bytes`]) wants a
    /// new one.
    pub fn wants_checkpoint(&self) -> bool {
        self.dir.is_some()
            && self.opts.checkpoint_bytes > 0
            && self
                .appended()
                .saturating_sub(self.last_ckpt_lsn.load(Ordering::Relaxed))
                >= self.opts.checkpoint_bytes
    }

    /// Consumes the checkpoint this log's recovery booted from, if any.
    /// `Database::recover_from` / `Session::recover_session` call this
    /// exactly once, restore the snapshot, then replay the (already
    /// filtered) record tail `open_dir` returned.
    pub fn take_recovered_checkpoint(&self) -> Option<Checkpoint> {
        self.recovered_checkpoint.lock().take()
    }

    /// Counts a checkpoint attempt skipped before reaching the log (e.g.
    /// another checkpoint already in flight).
    pub fn count_checkpoint_skip(&self) {
        self.checkpoint_skips.fetch_add(1, Ordering::Relaxed);
    }

    /// Writes `ck` durably and publishes it in the manifest: encode, temp
    /// file, fsync, rename to `ckpt-<ts>.ckpt`, dir fsync, manifest swap
    /// listing it; then checkpoints *above the GC floor* beyond the last
    /// [`CHECKPOINTS_KEPT`] are delisted and deleted (best-effort — a
    /// crash leaves unlisted files recovery reconciles). Checkpoints at
    /// or below the floor are retained: they are the ladder deep
    /// time-travel forks restore from. Every byte and
    /// metadata op goes through the [`LogDir`] seam, so fault-injection
    /// sweeps cover the whole path. Returns `(ts, file bytes)`, or `None`
    /// when the attempt was skipped (no directory, ts 0, or a checkpoint
    /// at this ts already exists).
    pub fn write_checkpoint(&self, ck: &Checkpoint) -> Result<Option<(Ts, u64)>, StorageError> {
        let Some(dir) = self.dir.clone() else {
            self.checkpoint_skips.fetch_add(1, Ordering::Relaxed);
            return Ok(None);
        };
        if ck.ts == 0 || self.state.lock().checkpoints.iter().any(|c| c.ts == ck.ts) {
            self.checkpoint_skips.fetch_add(1, Ordering::Relaxed);
            return Ok(None);
        }
        let res = self.write_checkpoint_inner(&dir, ck);
        if res.is_err() {
            self.checkpoint_errors.fetch_add(1, Ordering::Relaxed);
        }
        res
    }

    fn write_checkpoint_inner(
        &self,
        dir: &Arc<dyn LogDir>,
        ck: &Checkpoint,
    ) -> Result<Option<(Ts, u64)>, StorageError> {
        let _g = self.rotate_lock.lock();
        let bytes = encode_checkpoint(ck);
        let len = bytes.len() as u64;
        let final_name = checkpoint_name(ck.ts);
        let tmp_name = format!("{final_name}.tmp");
        let mut sink = dir.create(&tmp_name)?;
        sink.write_all(&bytes)?;
        sink.sync()?;
        drop(sink);
        dir.rename(&tmp_name, &final_name)?;
        dir.sync_dir()?;
        // Publish in the manifest, retaining only the newest few. The
        // in-memory list is updated first; if the manifest write below
        // fails, the next successful manifest swap publishes the (already
        // durable, already renamed) file — never a dangling reference.
        let (manifest, dropped) = {
            let mut s = self.state.lock();
            s.checkpoints.push(CheckpointFile {
                name: final_name,
                ts: ck.ts,
                len,
            });
            s.checkpoints.sort_by_key(|c| c.ts);
            // Retention is floor-aware: above the GC floor the live store
            // answers forks directly and a checkpoint only serves
            // recovery, so the newest CHECKPOINTS_KEPT suffice. At or
            // below the floor a checkpoint is the *only* bounded route
            // back into the truncated region (deep fork =
            // nearest-checkpoint + spilled delta), so those form a
            // ladder and are never pruned.
            let floor = s.gc_floor;
            let above = s.checkpoints.iter().filter(|c| c.ts > floor).count();
            let excess = above.saturating_sub(CHECKPOINTS_KEPT);
            let mut dropped = Vec::with_capacity(excess);
            if excess > 0 {
                s.checkpoints.retain(|c| {
                    if c.ts > floor && dropped.len() < excess {
                        dropped.push(c.clone());
                        false
                    } else {
                        true
                    }
                });
            }
            (manifest_of(&s), dropped)
        };
        write_manifest(dir.as_ref(), &manifest)?;
        // Best-effort: the dropped files are unlisted now and recovery
        // deletes them if we crash (or error) here.
        for old in &dropped {
            let _ = dir.delete(&old.name);
        }
        let _ = dir.sync_dir();
        self.checkpoint_writes.fetch_add(1, Ordering::Relaxed);
        self.last_ckpt_lsn.store(self.appended(), Ordering::Relaxed);
        Ok(Some((ck.ts, len)))
    }

    /// Loads the newest manifest-listed checkpoint with `ts <= up_to`,
    /// falling back past corrupt or missing files (counted in
    /// [`WalStats::checkpoint_fallbacks`]). `Ok(None)` when no usable
    /// checkpoint exists at or below `up_to` — the caller falls back to
    /// full replay.
    pub fn load_checkpoint_at_or_before(
        &self,
        up_to: Ts,
    ) -> Result<Option<Checkpoint>, StorageError> {
        let Some(dir) = self.dir.clone() else {
            return Ok(None);
        };
        let mut candidates: Vec<CheckpointFile> = self
            .state
            .lock()
            .checkpoints
            .iter()
            .filter(|c| c.ts <= up_to)
            .cloned()
            .collect();
        candidates.sort_by_key(|c| c.ts);
        for ck in candidates.iter().rev() {
            match dir.read(&ck.name).and_then(|b| decode_checkpoint(&b)) {
                Ok(decoded) if decoded.ts == ck.ts => return Ok(Some(decoded)),
                Ok(_) | Err(_) => {
                    self.checkpoint_fallbacks.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        Ok(None)
    }
}

/// Removes `source_names` from a manifest's sealed and cold lists and
/// inserts `cold` keeping the cold list sorted by `seq_lo`.
fn replace_with_cold(m: &mut Manifest, source_names: &[&str], cold: ColdFile) {
    m.sealed
        .retain(|s| !source_names.contains(&s.name.as_str()));
    m.cold.retain(|c| !source_names.contains(&c.name.as_str()));
    let pos = m.cold.partition_point(|c| c.seq_lo < cold.seq_lo);
    m.cold.insert(pos, cold);
}

fn manifest_of(s: &SegState) -> Manifest {
    Manifest {
        next_seq: s.next_seq,
        cold: s.cold.clone(),
        sealed: s.sealed.clone(),
        active_seq: s.active.seq,
        active_name: s.active.name.clone(),
        checkpoints: s.checkpoints.clone(),
        gc_floor: s.gc_floor,
    }
}

/// Makes a segment durable for sealing: in `Cached` mode buffered bytes
/// are pushed to the sink (the mode never promised power-loss safety); in
/// `Sync`/`Flush` the standard group sync runs to the appended watermark.
fn seal_sync(wal: &Arc<Wal>, mode: SyncMode) -> Result<(), StorageError> {
    match mode {
        SyncMode::Cached => wal.flush(),
        SyncMode::Sync | SyncMode::Flush => wal.sync_to(wal.appended()),
    }
}

/// Strict validation for immutable (cold/sealed) files: every byte must
/// decode, the length must match the manifest, and a torn tail is
/// corruption here — these files were complete and durable before the
/// manifest ever referenced them.
fn decode_strict(
    bytes: &[u8],
    name: &str,
    expect_len: u64,
) -> Result<(Vec<WalRecord>, crate::wal::RecoveryInfo), StorageError> {
    let (records, info) = decode_records(bytes).map_err(|e| prefix_file(e, name))?;
    if info.truncated_bytes != 0 {
        return Err(StorageError::Corrupt {
            offset: info.valid_len,
            detail: format!(
                "{name}: immutable file has {} damaged tail bytes",
                info.truncated_bytes
            ),
        });
    }
    if info.valid_len != expect_len {
        return Err(StorageError::Corrupt {
            offset: info.valid_len,
            detail: format!(
                "{name}: length {} does not match manifest length {expect_len}",
                info.valid_len
            ),
        });
    }
    Ok((records, info))
}

fn prefix_file(e: StorageError, name: &str) -> StorageError {
    match e {
        StorageError::Corrupt { offset, detail } => StorageError::Corrupt {
            offset,
            detail: format!("{name}: {detail}"),
        },
        other => other,
    }
}

/// Migrates a pre-segmentation single-file log at `path` into the
/// directory layout: `path` is renamed aside, a directory is created in
/// its place, and the old file is renamed into it as segment 0 —
/// byte-identical, no copy. Crash-resumable: each step is re-checked on
/// the next open. Returns true when a migration step ran.
fn migrate_legacy_file(path: &Path) -> Result<bool, StorageError> {
    let legacy = path.with_file_name(format!(
        "{}.legacy",
        path.file_name().and_then(|n| n.to_str()).unwrap_or("wal")
    ));
    let mut migrated = false;
    if path.is_file() {
        std::fs::rename(path, &legacy).map_err(|e| io_err("migrate", e))?;
        migrated = true;
    }
    if legacy.is_file() {
        // Resume: move the set-aside file in as segment 0 unless the
        // directory already has a log (a crash after this move but
        // before deleting nothing — rename is the delete).
        std::fs::create_dir_all(path).map_err(|e| io_err("migrate", e))?;
        let seg0 = path.join(segment_name(0));
        let has_log = seg0.exists() || path.join(MANIFEST_NAME).exists();
        if has_log {
            // A log already exists; the stray legacy file is ambiguous —
            // refuse rather than guess.
            return Err(StorageError::Recovery {
                detail: format!(
                    "both a legacy log file ({}) and a segmented log ({}) exist",
                    legacy.display(),
                    path.display()
                ),
            });
        }
        std::fs::rename(&legacy, &seg0).map_err(|e| io_err("migrate", e))?;
        if let Some(parent) = path.parent() {
            #[cfg(unix)]
            {
                let _ = File::open(parent).and_then(|d| d.sync_all());
            }
            let _ = parent;
        }
        migrated = true;
    }
    Ok(migrated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdc::ChangeRecord;
    use crate::row;
    use crate::row::Key;

    fn entry(txn_id: u64, commit_ts: Ts) -> CommittedTxn {
        CommittedTxn {
            txn_id,
            start_ts: commit_ts.saturating_sub(1),
            commit_ts,
            changes: vec![ChangeRecord::insert(
                "t",
                Key::single(txn_id as i64),
                row![txn_id as i64, "v"],
            )],
        }
    }

    fn tiny_opts() -> WalOptions {
        WalOptions {
            segment_bytes: 1, // roll after every synced record
            ..Default::default()
        }
    }

    fn commit_ts_of(records: &[WalRecord]) -> Vec<Ts> {
        records
            .iter()
            .filter_map(|r| match r {
                WalRecord::Commit(e) => Some(e.commit_ts),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn manifest_round_trips() {
        let m = Manifest {
            next_seq: 7,
            cold: vec![ColdFile {
                name: cold_name(0, 2),
                seq_lo: 0,
                seq_hi: 2,
                len: 1234,
                max_ts: 9,
                has_ddl: true,
            }],
            sealed: vec![SealedSeg {
                seq: 3,
                name: segment_name(3),
                len: 88,
                max_ts: 12,
                has_ddl: false,
            }],
            active_seq: 6,
            active_name: segment_name(6),
            checkpoints: vec![CheckpointFile {
                name: checkpoint_name(9),
                ts: 9,
                len: 4096,
            }],
            gc_floor: 7,
        };
        let bytes = encode_manifest(&m);
        assert_eq!(decode_manifest(&bytes).unwrap(), m);
        // Any single bit flip is detected.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(
                decode_manifest(&bad).is_err(),
                "bit flip at byte {i} went undetected"
            );
        }
        // Truncation is detected.
        for cut in 0..bytes.len() {
            assert!(decode_manifest(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn name_parsing() {
        assert_eq!(parse_segment_name("wal-000042.seg"), Some(42));
        assert_eq!(parse_segment_name("wal-.seg"), None);
        assert_eq!(parse_segment_name("wal-00x0.seg"), None);
        assert_eq!(parse_segment_name("cold-000001-000002.seg"), None);
        assert_eq!(parse_cold_name("cold-000001-000002.seg"), Some((1, 2)));
        assert_eq!(parse_cold_name("cold-1-2.seg.tmp"), None);
        assert_eq!(parse_cold_name("wal-000001.seg"), None);
    }

    #[test]
    fn rotation_rolls_and_recovers() {
        let mem = MemDir::new();
        let dir: Arc<dyn LogDir> = Arc::new(mem.clone());
        let wal = SegmentedWal::create_dir(dir.clone(), tiny_opts()).unwrap();
        for i in 1..=5u64 {
            let lsn = wal.append_entry(&entry(i, i)).unwrap();
            wal.sync_to(lsn).unwrap();
        }
        let stats = wal.stats();
        assert!(stats.rotations >= 4, "expected rotations, got {stats:?}");
        assert_eq!(stats.appended, stats.durable);
        drop(wal);

        let (wal2, records, rec) = SegmentedWal::open_dir(dir, tiny_opts()).unwrap();
        assert_eq!(commit_ts_of(&records), vec![1, 2, 3, 4, 5]);
        assert_eq!(rec.truncated_bytes, 0);
        assert!(rec.segments >= 5);
        // The log continues with consistent global offsets.
        let lsn = wal2.append_entry(&entry(6, 6)).unwrap();
        wal2.sync_to(lsn).unwrap();
        assert_eq!(wal2.durable(), lsn);
    }

    #[test]
    fn compaction_moves_prefix_to_cold_and_replays() {
        let mem = MemDir::new();
        let dir: Arc<dyn LogDir> = Arc::new(mem.clone());
        let wal = SegmentedWal::create_dir(dir.clone(), tiny_opts()).unwrap();
        for i in 1..=6u64 {
            let lsn = wal.append_entry(&entry(i, i)).unwrap();
            wal.sync_to(lsn).unwrap();
        }
        let compacted = wal.compact_below(3).unwrap();
        assert!(compacted >= 2, "compacted {compacted} segments");
        let stats = wal.stats();
        assert_eq!(stats.cold_files, 1);
        assert!(stats.last_compaction_unix_ms > 0);
        // Original sealed files below the floor are gone from the dir.
        let names = mem.names();
        assert!(
            names.iter().any(|n| parse_cold_name(n).is_some()),
            "no cold file in {names:?}"
        );
        drop(wal);

        let (_, records, rec) = SegmentedWal::open_dir(dir, tiny_opts()).unwrap();
        assert_eq!(commit_ts_of(&records), vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(rec.cold_files, 1);
    }

    #[test]
    fn compaction_stops_at_floor_boundary() {
        let mem = MemDir::new();
        let dir: Arc<dyn LogDir> = Arc::new(mem.clone());
        let wal = SegmentedWal::create_dir(dir, tiny_opts()).unwrap();
        for i in 1..=4u64 {
            let lsn = wal.append_entry(&entry(i, i)).unwrap();
            wal.sync_to(lsn).unwrap();
        }
        // Floor below every sealed segment: nothing to do.
        assert_eq!(wal.compact_below(0).unwrap(), 0);
        let before = wal.stats();
        wal.compact_below(2).unwrap();
        let after = wal.stats();
        // Segments with max_ts > 2 stay sealed.
        assert!(after.segments >= before.segments - 2);
    }

    #[test]
    fn orphan_successor_is_adopted() {
        let mem = MemDir::new();
        let dir: Arc<dyn LogDir> = Arc::new(mem.clone());
        let wal = SegmentedWal::create_dir(dir.clone(), tiny_opts()).unwrap();
        for i in 1..=3u64 {
            let lsn = wal.append_entry(&entry(i, i)).unwrap();
            wal.sync_to(lsn).unwrap();
        }
        drop(wal);
        // Simulate a crash after the swap but before the manifest write:
        // manufacture an orphan successor holding a commit.
        let listed = decode_manifest(&mem.file(MANIFEST_NAME).unwrap()).unwrap();
        let orphan = segment_name(listed.active_seq + 1);
        let frame = crate::wal::encode_frame(&WalRecord::Commit(entry(9, 9)));
        // The orphan only exists if the previous active was sealed — and
        // sealing means fully synced. Also append a commit to the active
        // so adoption has a clean predecessor.
        mem.put_file(&orphan, frame);
        let (_, records, rec) = SegmentedWal::open_dir(dir, tiny_opts()).unwrap();
        assert_eq!(rec.adopted_orphans, 1);
        assert_eq!(commit_ts_of(&records).last(), Some(&9));
    }

    #[test]
    fn empty_orphan_is_deleted() {
        let mem = MemDir::new();
        let dir: Arc<dyn LogDir> = Arc::new(mem.clone());
        let wal = SegmentedWal::create_dir(dir.clone(), tiny_opts()).unwrap();
        let lsn = wal.append_entry(&entry(1, 1)).unwrap();
        wal.sync_to(lsn).unwrap();
        drop(wal);
        let listed = decode_manifest(&mem.file(MANIFEST_NAME).unwrap()).unwrap();
        mem.put_file(&segment_name(listed.active_seq + 1), Vec::new());
        let (_, records, rec) = SegmentedWal::open_dir(dir, tiny_opts()).unwrap();
        assert_eq!(commit_ts_of(&records), vec![1]);
        assert_eq!(rec.adopted_orphans, 0);
        assert!(rec.removed_files >= 1);
    }

    #[test]
    fn torn_tail_with_data_bearing_orphan_is_corruption() {
        let mem = MemDir::new();
        let dir: Arc<dyn LogDir> = Arc::new(mem.clone());
        // No rotation (default bound): the commit stays in the active
        // segment.
        let wal = SegmentedWal::create_dir(dir.clone(), WalOptions::default()).unwrap();
        let lsn = wal.append_entry(&entry(1, 1)).unwrap();
        wal.sync_to(lsn).unwrap();
        drop(wal);
        let listed = decode_manifest(&mem.file(MANIFEST_NAME).unwrap()).unwrap();
        // Tear the active's tail, then add a data-bearing orphan — a
        // state the rotation protocol can never produce.
        let mut active = mem.file(&listed.active_name).unwrap();
        active.truncate(active.len() - 3);
        mem.put_file(&listed.active_name, active);
        let frame = crate::wal::encode_frame(&WalRecord::Commit(entry(2, 2)));
        mem.put_file(&segment_name(listed.active_seq + 1), frame);
        let err = SegmentedWal::open_dir(dir, tiny_opts())
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, StorageError::Corrupt { .. }), "{err:?}");
    }

    #[test]
    fn sealed_corruption_is_typed() {
        let mem = MemDir::new();
        let dir: Arc<dyn LogDir> = Arc::new(mem.clone());
        let wal = SegmentedWal::create_dir(dir.clone(), tiny_opts()).unwrap();
        for i in 1..=3u64 {
            let lsn = wal.append_entry(&entry(i, i)).unwrap();
            wal.sync_to(lsn).unwrap();
        }
        drop(wal);
        // Flip a byte in the middle of the FIRST sealed segment.
        let name = segment_name(0);
        let mut bytes = mem.file(&name).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        mem.put_file(&name, bytes);
        let err = SegmentedWal::open_dir(dir, tiny_opts())
            .map(|_| ())
            .unwrap_err();
        match err {
            StorageError::Corrupt { detail, .. } => {
                assert!(detail.contains(&name), "detail: {detail}")
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn stale_temp_and_unlisted_files_are_reconciled() {
        let mem = MemDir::new();
        let dir: Arc<dyn LogDir> = Arc::new(mem.clone());
        let wal = SegmentedWal::create_dir(dir.clone(), tiny_opts()).unwrap();
        for i in 1..=2u64 {
            let lsn = wal.append_entry(&entry(i, i)).unwrap();
            wal.sync_to(lsn).unwrap();
        }
        drop(wal);
        mem.put_file("MANIFEST.tmp", b"half-written".to_vec());
        mem.put_file("cold-000000-000000.seg.tmp", b"partial copy".to_vec());
        mem.put_file("cold-000090-000091.seg", b"unpublished".to_vec());
        let (_, records, rec) = SegmentedWal::open_dir(dir, tiny_opts()).unwrap();
        assert_eq!(commit_ts_of(&records), vec![1, 2]);
        assert!(rec.removed_files >= 3, "{rec:?}");
        assert!(mem.file("MANIFEST.tmp").is_none());
        assert!(mem.file("cold-000090-000091.seg").is_none());
    }

    #[test]
    fn single_mode_never_rotates() {
        let sink = crate::wal::MemSink::new();
        let wal = Wal::with_sink(Box::new(sink), WalOptions::default());
        let seg = SegmentedWal::single(wal);
        assert!(!seg.is_segmented());
        for i in 1..=50u64 {
            let lsn = seg.append_entry(&entry(i, i)).unwrap();
            seg.sync_to(lsn).unwrap();
        }
        let stats = seg.stats();
        assert_eq!(stats.segments, 1);
        assert_eq!(stats.rotations, 0);
        assert_eq!(seg.compact_below(100).unwrap(), 0);
    }

    #[test]
    fn failpoint_dir_freezes_at_budget() {
        let mem = MemDir::new();
        let points = DirFailpointHandle::new();
        let dir: Arc<dyn LogDir> =
            Arc::new(FailpointDir::new(Arc::new(mem.clone()), points.clone()));
        // Counting mode: learn the cost of creating a log + one commit.
        let wal = SegmentedWal::create_dir(dir.clone(), WalOptions::default()).unwrap();
        let lsn = wal.append_entry(&entry(1, 1)).unwrap();
        wal.sync_to(lsn).unwrap();
        let total = points.cost();
        assert!(total > 0);
        drop(wal);

        // Crash at cost 0: the very first mutation fails, nothing lands.
        let mem2 = MemDir::new();
        let points2 = DirFailpointHandle::new();
        points2.crash_after(0);
        let dir2: Arc<dyn LogDir> =
            Arc::new(FailpointDir::new(Arc::new(mem2.clone()), points2.clone()));
        assert!(SegmentedWal::create_dir(dir2, WalOptions::default()).is_err());
        assert!(points2.crashed());
        assert!(mem2.names().is_empty());
    }

    #[test]
    fn legacy_file_migrates_byte_identically() {
        let base = std::env::temp_dir().join(format!(
            "trod-segment-migrate-{}-{}",
            std::process::id(),
            unix_ms()
        ));
        std::fs::create_dir_all(&base).unwrap();
        let path = base.join("wal.log");
        // A PR 6-era single-file log.
        let mut raw = Vec::new();
        for i in 1..=3u64 {
            raw.extend_from_slice(&crate::wal::encode_frame(&WalRecord::Commit(entry(i, i))));
        }
        std::fs::write(&path, &raw).unwrap();
        let (wal, records, rec) = SegmentedWal::open_path(&path, WalOptions::default()).unwrap();
        assert!(rec.migrated_legacy);
        assert_eq!(commit_ts_of(&records), vec![1, 2, 3]);
        // Byte-identical adoption: segment 0 is the old file, verbatim.
        let seg0 = std::fs::read(path.join(segment_name(0))).unwrap();
        assert_eq!(seg0, raw);
        drop(wal);
        // Reopen: now a normal segmented log.
        let (_, records2, rec2) = SegmentedWal::open_path(&path, WalOptions::default()).unwrap();
        assert!(!rec2.migrated_legacy);
        assert_eq!(commit_ts_of(&records2), vec![1, 2, 3]);
        std::fs::remove_dir_all(&base).unwrap();
    }
}
