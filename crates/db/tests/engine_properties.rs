//! Property-based and cross-module tests for the storage engine.
//!
//! The central invariants verified here are the ones TROD's replay
//! correctness depends on:
//!
//! 1. **Commit-order serializability**: re-executing the committed
//!    transactions serially, in commit order, against a fresh database
//!    yields exactly the same final state as the concurrent execution.
//! 2. **Log completeness**: replaying only the CDC records of the
//!    transaction log reconstructs the same final state.
//! 3. **Time travel consistency**: the state visible "as of" a commit
//!    timestamp equals the state obtained by replaying the log up to that
//!    timestamp.

use proptest::prelude::*;
use std::collections::BTreeMap;

use trod_db::{row, DataType, Database, IsolationLevel, Key, Predicate, Row, Schema, Value};

fn kv_schema() -> Schema {
    Schema::builder()
        .column("k", DataType::Int)
        .column("v", DataType::Int)
        .primary_key(&["k"])
        .build()
        .unwrap()
}

fn new_db() -> Database {
    let db = Database::new();
    db.create_table("kv", kv_schema()).unwrap();
    db
}

/// A single logical operation in a generated transaction.
#[derive(Debug, Clone)]
enum Op {
    Put { k: i64, v: i64 },
    Delete { k: i64 },
    Read { k: i64 },
    ScanGe { k: i64 },
}

fn op_strategy(key_space: i64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..key_space, 0..1000i64).prop_map(|(k, v)| Op::Put { k, v }),
        (0..key_space).prop_map(|k| Op::Delete { k }),
        (0..key_space).prop_map(|k| Op::Read { k }),
        (0..key_space).prop_map(|k| Op::ScanGe { k }),
    ]
}

fn txn_strategy(key_space: i64) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(op_strategy(key_space), 1..6)
}

/// Applies a transaction's operations through the engine; retries are the
/// caller's responsibility. Returns Ok(committed) or Err for retryable
/// failure.
fn run_txn(db: &Database, ops: &[Op], iso: IsolationLevel) -> Result<bool, trod_db::DbError> {
    let mut txn = db.begin_with(iso);
    for op in ops {
        match op {
            Op::Put { k, v } => {
                let key = Key::single(*k);
                if txn.get("kv", &key)?.is_some() {
                    txn.update("kv", &key, row![*k, *v])?;
                } else {
                    txn.insert("kv", row![*k, *v])?;
                }
            }
            Op::Delete { k } => {
                txn.delete("kv", &Key::single(*k))?;
            }
            Op::Read { k } => {
                let _ = txn.get("kv", &Key::single(*k))?;
            }
            Op::ScanGe { k } => {
                let _ = txn.scan("kv", &Predicate::ge("k", *k))?;
            }
        }
    }
    txn.commit()?;
    Ok(true)
}

/// Applies a transaction to a plain BTreeMap model (the serial oracle).
fn run_model(model: &mut BTreeMap<i64, i64>, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Put { k, v } => {
                model.insert(*k, *v);
            }
            Op::Delete { k } => {
                model.remove(k);
            }
            Op::Read { .. } | Op::ScanGe { .. } => {}
        }
    }
}

fn db_state(db: &Database) -> BTreeMap<i64, i64> {
    db.scan_latest("kv", &Predicate::True)
        .unwrap()
        .into_iter()
        .map(|(_, r)| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sequentially committed transactions match the BTreeMap model.
    #[test]
    fn sequential_execution_matches_model(txns in prop::collection::vec(txn_strategy(16), 1..20)) {
        let db = new_db();
        let mut model = BTreeMap::new();
        for ops in &txns {
            run_txn(&db, ops, IsolationLevel::Serializable).unwrap();
            run_model(&mut model, ops);
        }
        prop_assert_eq!(db_state(&db), model);
    }

    /// Replaying only the transaction log's CDC records into a fresh
    /// database reproduces the final state (log completeness — the
    /// property TROD's replay relies on).
    #[test]
    fn log_replay_reconstructs_state(txns in prop::collection::vec(txn_strategy(16), 1..20)) {
        let db = new_db();
        for ops in &txns {
            run_txn(&db, ops, IsolationLevel::Serializable).unwrap();
        }
        let replica = db.fork_empty().unwrap();
        for entry in db.log_entries() {
            replica.apply_changes(&entry.changes).unwrap();
        }
        prop_assert_eq!(db_state(&replica), db_state(&db));
    }

    /// Time travel to commit timestamp `t` equals replaying the log up to
    /// and including `t`.
    #[test]
    fn time_travel_matches_log_prefix(txns in prop::collection::vec(txn_strategy(8), 2..15)) {
        let db = new_db();
        for ops in &txns {
            run_txn(&db, ops, IsolationLevel::Serializable).unwrap();
        }
        let log = db.log_entries();
        prop_assume!(!log.is_empty());
        // Pick the middle commit as the time-travel point.
        let mid = log[log.len() / 2].commit_ts;

        let replica = db.fork_empty().unwrap();
        for entry in log.iter().filter(|e| e.commit_ts <= mid) {
            replica.apply_changes(&entry.changes).unwrap();
        }
        let as_of: BTreeMap<i64, i64> = db
            .scan_as_of("kv", &Predicate::True, mid)
            .unwrap()
            .into_iter()
            .map(|(_, r)| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
            .collect();
        prop_assert_eq!(db_state(&replica), as_of);
    }

    /// Under concurrent execution with retries, serializable isolation
    /// produces a final state identical to executing the committed
    /// transactions serially in commit order.
    #[test]
    fn concurrent_serializable_equals_commit_order_serial(
        txns in prop::collection::vec(txn_strategy(8), 4..12),
        threads in 2usize..4
    ) {
        let db = new_db();
        // Partition transactions across threads.
        let chunks: Vec<Vec<Vec<Op>>> = txns
            .chunks(txns.len().div_ceil(threads))
            .map(|c| c.to_vec())
            .collect();
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                let db = db.clone();
                std::thread::spawn(move || {
                    for ops in chunk {
                        loop {
                            match run_txn(&db, &ops, IsolationLevel::Serializable) {
                                Ok(_) => break,
                                Err(e) if e.is_retryable() => continue,
                                Err(e) => panic!("unexpected engine error: {e}"),
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        // Serial oracle: replay the log's CDC in commit order.
        let replica = db.fork_empty().unwrap();
        for entry in db.log_entries() {
            replica.apply_changes(&entry.changes).unwrap();
        }
        prop_assert_eq!(db_state(&replica), db_state(&db));

        // Commit timestamps must be strictly increasing.
        let log = db.log_entries();
        for pair in log.windows(2) {
            prop_assert!(pair[0].commit_ts < pair[1].commit_ts);
        }
    }

    /// Forking at a snapshot and continuing divergent work never corrupts
    /// either side.
    #[test]
    fn forks_are_isolated(txns in prop::collection::vec(txn_strategy(8), 1..10)) {
        let db = new_db();
        for ops in &txns {
            run_txn(&db, ops, IsolationLevel::Serializable).unwrap();
        }
        let snap = db.current_ts();
        let state_at_snap = db_state(&db);
        let fork = db.fork_at(snap).unwrap();
        prop_assert_eq!(db_state(&fork), state_at_snap.clone());

        // Diverge both sides.
        run_txn(&db, &[Op::Put { k: 1000, v: 1 }], IsolationLevel::Serializable).unwrap();
        run_txn(&fork, &[Op::Put { k: 2000, v: 2 }], IsolationLevel::Serializable).unwrap();
        prop_assert!(db_state(&db).contains_key(&1000));
        prop_assert!(!db_state(&db).contains_key(&2000));
        prop_assert!(db_state(&fork).contains_key(&2000));
        prop_assert!(!db_state(&fork).contains_key(&1000));
    }
}

#[test]
fn lost_update_prevented_under_serializable_and_si() {
    for iso in [
        IsolationLevel::Serializable,
        IsolationLevel::SnapshotIsolation,
    ] {
        let db = new_db();
        run_txn(
            &db,
            &[Op::Put { k: 1, v: 100 }],
            IsolationLevel::Serializable,
        )
        .unwrap();

        // Two concurrent read-modify-write increments of the same key.
        let mut t1 = db.begin_with(iso);
        let mut t2 = db.begin_with(iso);
        let v1 = t1.get("kv", &Key::single(1i64)).unwrap().unwrap()[1]
            .as_int()
            .unwrap();
        let v2 = t2.get("kv", &Key::single(1i64)).unwrap().unwrap()[1]
            .as_int()
            .unwrap();
        t1.update("kv", &Key::single(1i64), row![1i64, v1 + 1])
            .unwrap();
        t2.update("kv", &Key::single(1i64), row![1i64, v2 + 1])
            .unwrap();
        assert!(t1.commit().is_ok());
        assert!(
            t2.commit().is_err(),
            "second committer must abort under {iso:?}"
        );

        let v = db.get_latest("kv", &Key::single(1i64)).unwrap().unwrap()[1]
            .as_int()
            .unwrap();
        assert_eq!(v, 101);
    }
}

#[test]
fn read_committed_allows_lost_update() {
    let db = new_db();
    run_txn(
        &db,
        &[Op::Put { k: 1, v: 100 }],
        IsolationLevel::Serializable,
    )
    .unwrap();

    let mut t1 = db.begin_with(IsolationLevel::ReadCommitted);
    let mut t2 = db.begin_with(IsolationLevel::ReadCommitted);
    let v1 = t1.get("kv", &Key::single(1i64)).unwrap().unwrap()[1]
        .as_int()
        .unwrap();
    let v2 = t2.get("kv", &Key::single(1i64)).unwrap().unwrap()[1]
        .as_int()
        .unwrap();
    t1.update("kv", &Key::single(1i64), row![1i64, v1 + 1])
        .unwrap();
    t2.update("kv", &Key::single(1i64), row![1i64, v2 + 1])
        .unwrap();
    t1.commit().unwrap();
    t2.commit().unwrap();

    // One increment is lost: the anomaly exists, which is exactly why the
    // paper's case-study bugs are reproducible on this engine.
    let v = db.get_latest("kv", &Key::single(1i64)).unwrap().unwrap()[1]
        .as_int()
        .unwrap();
    assert_eq!(v, 101);
}

#[test]
fn phantom_prevention_under_serializable() {
    let db = new_db();
    // T1 scans for keys >= 100 (none), T2 inserts key 150 and commits,
    // then T1 inserts a summary row based on its empty scan. T1 must abort.
    let mut t1 = db.begin();
    let hits = t1.scan("kv", &Predicate::ge("k", 100i64)).unwrap();
    assert!(hits.is_empty());

    let mut t2 = db.begin();
    t2.insert("kv", row![150i64, 1i64]).unwrap();
    t2.commit().unwrap();

    t1.insert("kv", row![1i64, 0i64]).unwrap();
    let err = t1.commit().unwrap_err();
    assert!(matches!(err, trod_db::DbError::SerializationFailure { .. }));
}

#[test]
fn snapshot_reads_are_stable_within_a_transaction() {
    let db = new_db();
    run_txn(
        &db,
        &[Op::Put { k: 1, v: 10 }],
        IsolationLevel::Serializable,
    )
    .unwrap();

    let mut reader = db.begin_with(IsolationLevel::SnapshotIsolation);
    let before = reader.get("kv", &Key::single(1i64)).unwrap().unwrap();

    run_txn(
        &db,
        &[Op::Put { k: 1, v: 99 }],
        IsolationLevel::Serializable,
    )
    .unwrap();

    let after = reader.get("kv", &Key::single(1i64)).unwrap().unwrap();
    assert_eq!(
        before, after,
        "snapshot read must not observe later commits"
    );

    // Read committed does observe the change.
    let mut rc = db.begin_with(IsolationLevel::ReadCommitted);
    let rc_view = rc.get("kv", &Key::single(1i64)).unwrap().unwrap();
    assert_eq!(rc_view[1], Value::Int(99));
}

#[test]
fn row_macro_interops_with_engine_types() {
    let r: Row = row![1i64, 2i64];
    assert_eq!(r.len(), 2);
    let db = new_db();
    let mut txn = db.begin();
    txn.insert("kv", r).unwrap();
    txn.commit().unwrap();
    assert_eq!(db.stats().live_rows, 1);
}
