//! Decision-equivalence and safety of lock-free serializable readers.
//!
//! The default serializable commit path (SSI) takes no locks for
//! read-only footprint resources: reads are validated at commit time
//! inside the publication window instead. Two escape hatches preserve
//! the old behaviour — `set_read_lock_commit(true)` restores 2PL-style
//! read locking, and `set_serial_commit(true)` +
//! `set_full_scan_validation(true)` is the original serial full-scan
//! oracle. These tests prove:
//!
//! * a 128-case property test drives identical, randomly generated
//!   schedules of overlapping serializable transactions against all
//!   three modes and requires identical per-commit decisions and
//!   identical final table contents (commit *timestamps* are not
//!   compared: an SSI late abort consumes a publication tick);
//! * an 8-thread stress test checks that lock-free readers never
//!   observe a torn multi-table state while writers commit to both
//!   tables atomically;
//! * a write-skew stress test checks that no rw-antidependency abort is
//!   lost: the classic pay-out anomaly that snapshot isolation admits
//!   must still be impossible.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Barrier;

use proptest::prelude::*;

use trod_db::{row, DataType, Database, DbError, IsolationLevel, Key, Predicate, Schema};

fn kv_schema() -> Schema {
    Schema::builder()
        .column("k", DataType::Int)
        .column("v", DataType::Int)
        .primary_key(&["k"])
        .build()
        .unwrap()
}

/// The three serializable commit modes under comparison.
#[derive(Debug, Clone, Copy)]
enum Mode {
    /// Default: lock-free reads, commit-time validation.
    Ssi,
    /// 2PL-style: commit locks every read table.
    ReadLock,
    /// Original oracle: one commit at a time, full version scans.
    SerialFullScan,
}

fn new_db(mode: Mode) -> Database {
    let db = Database::new();
    db.create_table("kv", kv_schema()).unwrap();
    match mode {
        Mode::Ssi => {}
        Mode::ReadLock => db.set_read_lock_commit(true),
        Mode::SerialFullScan => {
            db.set_serial_commit(true);
            db.set_full_scan_validation(true);
        }
    }
    db
}

#[derive(Debug, Clone)]
enum Write {
    Put { k: i64, v: i64 },
    Delete { k: i64 },
}

#[derive(Debug, Clone)]
enum Read {
    Get { k: i64 },
    ScanEqV { v: i64 },
    ScanRange { lo: i64, hi: i64 },
}

/// One generated serializable transaction: reads performed at begin
/// time, writes buffered immediately after.
#[derive(Debug, Clone)]
struct TxnSpec {
    reads: Vec<Read>,
    writes: Vec<Write>,
}

/// One event after the overlapping transactions have begun.
#[derive(Debug, Clone)]
enum Event {
    /// Commit the `i`-th pending transaction (attempted once; index taken
    /// modulo the live set).
    CommitPending(usize),
    /// An independent read-committed transaction commits these writes.
    ConcurrentCommit(Vec<Write>),
}

/// A generated schedule: `history` seeds the table, up to four
/// serializable transactions begin and buffer their reads/writes while
/// all overlapping, then `events` interleaves their commits with
/// concurrent writers.
#[derive(Debug, Clone)]
struct Schedule {
    history: Vec<Write>,
    pending: Vec<TxnSpec>,
    events: Vec<Event>,
}

fn write_strategy(key_space: i64) -> impl Strategy<Value = Write> {
    prop_oneof![
        (0..key_space, 0..100i64).prop_map(|(k, v)| Write::Put { k, v }),
        (0..key_space).prop_map(|k| Write::Delete { k }),
    ]
}

fn read_strategy(key_space: i64) -> impl Strategy<Value = Read> {
    prop_oneof![
        (0..key_space).prop_map(|k| Read::Get { k }),
        (0..100i64).prop_map(|v| Read::ScanEqV { v }),
        (0..key_space, 0..key_space).prop_map(|(a, b)| Read::ScanRange {
            lo: a.min(b),
            hi: a.max(b),
        }),
    ]
}

fn txn_strategy(key_space: i64) -> impl Strategy<Value = TxnSpec> {
    (
        prop::collection::vec(read_strategy(key_space), 1..4),
        prop::collection::vec(write_strategy(key_space), 0..3),
    )
        .prop_map(|(reads, writes)| TxnSpec { reads, writes })
}

fn schedule_strategy() -> impl Strategy<Value = Schedule> {
    let key_space = 10i64;
    let event = prop_oneof![
        (0usize..4).prop_map(Event::CommitPending),
        prop::collection::vec(write_strategy(key_space), 1..3).prop_map(Event::ConcurrentCommit),
    ];
    (
        prop::collection::vec(write_strategy(key_space), 0..8),
        prop::collection::vec(txn_strategy(key_space), 1..5),
        prop::collection::vec(event, 1..10),
    )
        .prop_map(|(history, pending, events)| Schedule {
            history,
            pending,
            events,
        })
}

fn commit_writes(db: &Database, writes: &[Write]) -> Result<(), DbError> {
    let mut txn = db.begin_with(IsolationLevel::ReadCommitted);
    for w in writes {
        match w {
            Write::Put { k, v } => {
                let key = Key::single(*k);
                if txn.get("kv", &key)?.is_some() {
                    txn.update("kv", &key, row![*k, *v])?;
                } else {
                    txn.insert("kv", row![*k, *v])?;
                }
            }
            Write::Delete { k } => {
                txn.delete("kv", &Key::single(*k))?;
            }
        }
    }
    txn.commit()?;
    Ok(())
}

/// Normalised per-commit outcome (timestamps deliberately excluded).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Outcome {
    Committed,
    SerializationFailure,
    WriteConflict,
    OtherError(String),
}

/// Runs the schedule and returns (per-event outcomes, final state).
fn run_schedule(db: &Database, schedule: &Schedule) -> (Vec<Outcome>, BTreeMap<i64, i64>) {
    commit_writes(db, &schedule.history).unwrap();

    // Begin every pending transaction and buffer its reads and writes
    // while all of them overlap. Buffered-write constraint errors (e.g.
    // inserting a key another pending transaction also inserts) surface
    // at commit, identically across modes.
    let mut live: Vec<trod_db::Transaction> = Vec::new();
    for spec in &schedule.pending {
        let mut txn = db.begin_with(IsolationLevel::Serializable);
        for read in &spec.reads {
            match read {
                Read::Get { k } => {
                    let _ = txn.get("kv", &Key::single(*k)).unwrap();
                }
                Read::ScanEqV { v } => {
                    let _ = txn.scan("kv", &Predicate::eq("v", *v)).unwrap();
                }
                Read::ScanRange { lo, hi } => {
                    let pred = Predicate::ge("k", *lo).and(Predicate::le("k", *hi));
                    let _ = txn.scan("kv", &pred).unwrap();
                }
            }
        }
        for w in &spec.writes {
            match w {
                Write::Put { k, v } => {
                    let key = Key::single(*k);
                    if txn.get("kv", &key).unwrap().is_some() {
                        txn.update("kv", &key, row![*k, *v]).unwrap();
                    } else {
                        txn.insert("kv", row![*k, *v]).unwrap();
                    }
                }
                Write::Delete { k } => {
                    txn.delete("kv", &Key::single(*k)).unwrap();
                }
            }
        }
        live.push(txn);
    }

    let mut outcomes = Vec::new();
    for event in &schedule.events {
        match event {
            Event::CommitPending(i) => {
                if live.is_empty() {
                    continue;
                }
                let txn = live.remove(i % live.len());
                outcomes.push(match txn.commit() {
                    Ok(_) => Outcome::Committed,
                    Err(DbError::SerializationFailure { .. }) => Outcome::SerializationFailure,
                    Err(DbError::WriteConflict { .. }) => Outcome::WriteConflict,
                    Err(other) => Outcome::OtherError(other.to_string()),
                });
            }
            Event::ConcurrentCommit(writes) => {
                commit_writes(db, writes).unwrap();
            }
        }
    }

    let state = db
        .scan_latest("kv", &Predicate::True)
        .unwrap()
        .into_iter()
        .map(|(_, r)| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
        .collect();
    (outcomes, state)
}

proptest! {
    // Explicit case count: this suite is the SSI acceptance gate and must
    // not shrink under a CI-wide PROPTEST_CASES override.
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// SSI, 2PL read locking and the serial full-scan oracle accept and
    /// reject exactly the same schedules, leaving identical final states.
    #[test]
    fn ssi_is_decision_equivalent_to_read_locking_and_serial(
        schedule in schedule_strategy()
    ) {
        let ssi = new_db(Mode::Ssi);
        let rl = new_db(Mode::ReadLock);
        let serial = new_db(Mode::SerialFullScan);
        let (ssi_out, ssi_state) = run_schedule(&ssi, &schedule);
        let (rl_out, rl_state) = run_schedule(&rl, &schedule);
        let (serial_out, serial_state) = run_schedule(&serial, &schedule);
        prop_assert_eq!(
            &ssi_out, &rl_out,
            "SSI vs read-locking decisions diverged for {:?}", schedule
        );
        prop_assert_eq!(
            &ssi_out, &serial_out,
            "SSI vs serial-oracle decisions diverged for {:?}", schedule
        );
        prop_assert_eq!(&ssi_state, &rl_state);
        prop_assert_eq!(&ssi_state, &serial_state);
    }
}

/// Lock-free readers under fire: writers atomically update one row in
/// each of two tables to the same value; serializable readers snapshot
/// both and must never see the tables disagree. With pre-publication
/// installs (writes land in storage *before* the publication clock
/// advances) this is exactly the torn-read hazard the clock exists to
/// prevent.
#[test]
fn lock_free_readers_never_see_torn_multi_table_state() {
    const WRITERS: usize = 4;
    const READERS: usize = 4;
    const ROUNDS: i64 = 40;

    let db = new_db(Mode::Ssi);
    db.create_table("mirror", kv_schema()).unwrap();
    let mut seed = db.begin();
    seed.insert("kv", row![0i64, 0i64]).unwrap();
    seed.insert("mirror", row![0i64, 0i64]).unwrap();
    seed.commit().unwrap();

    let barrier = Barrier::new(WRITERS + READERS);
    std::thread::scope(|s| {
        for t in 0..WRITERS {
            let db = db.clone();
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                for i in 0..ROUNDS {
                    let v = (t as i64) * ROUNDS + i + 1;
                    loop {
                        let mut txn = db.begin();
                        let cur = txn.get("kv", &Key::single(0i64)).unwrap().unwrap()[1]
                            .as_int()
                            .unwrap();
                        let mir = txn.get("mirror", &Key::single(0i64)).unwrap().unwrap()[1]
                            .as_int()
                            .unwrap();
                        assert_eq!(cur, mir, "writer snapshot must agree");
                        txn.update("kv", &Key::single(0i64), row![0i64, v]).unwrap();
                        txn.update("mirror", &Key::single(0i64), row![0i64, v])
                            .unwrap();
                        match txn.commit() {
                            Ok(_) => break,
                            Err(e) if e.is_retryable() => continue,
                            Err(e) => panic!("unexpected error: {e}"),
                        }
                    }
                }
            });
        }
        for _ in 0..READERS {
            let db = db.clone();
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                for _ in 0..ROUNDS * 4 {
                    loop {
                        let mut txn = db.begin();
                        let a = txn.get("kv", &Key::single(0i64)).unwrap().unwrap()[1]
                            .as_int()
                            .unwrap();
                        let b = txn.get("mirror", &Key::single(0i64)).unwrap().unwrap()[1]
                            .as_int()
                            .unwrap();
                        assert_eq!(a, b, "reader must never observe a torn state");
                        match txn.commit() {
                            Ok(_) => break,
                            Err(e) if e.is_retryable() => continue,
                            Err(e) => panic!("unexpected error: {e}"),
                        }
                    }
                }
            });
        }
    });

    let a = db.get_latest("kv", &Key::single(0i64)).unwrap().unwrap()[1]
        .as_int()
        .unwrap();
    let b = db
        .get_latest("mirror", &Key::single(0i64))
        .unwrap()
        .unwrap()[1]
        .as_int()
        .unwrap();
    assert_eq!(a, b);
}

/// Write skew: every transaction reads both balances, checks the joint
/// constraint `a + b >= 10`, then decrements only one of them — the
/// canonical anomaly snapshot isolation admits and serializability must
/// reject. If any rw-antidependency abort were lost, two overlapping
/// withdrawals could each see enough balance and drive the sum negative.
#[test]
fn write_skew_is_prevented_under_lock_free_reads() {
    const THREADS: usize = 8;
    const INITIAL: i64 = 200;

    let db = new_db(Mode::Ssi);
    let mut seed = db.begin();
    seed.insert("kv", row![0i64, INITIAL]).unwrap();
    seed.insert("kv", row![1i64, INITIAL]).unwrap();
    seed.commit().unwrap();

    let withdrawals = AtomicI64::new(0);
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let db = db.clone();
            let withdrawals = &withdrawals;
            let barrier = &barrier;
            s.spawn(move || {
                // Each thread drains from one account based on parity, so
                // overlapping transactions write different rows and only
                // the read validation can see the conflict.
                let target = (t % 2) as i64;
                barrier.wait();
                loop {
                    let mut txn = db.begin();
                    let a = txn.get("kv", &Key::single(0i64)).unwrap().unwrap()[1]
                        .as_int()
                        .unwrap();
                    let b = txn.get("kv", &Key::single(1i64)).unwrap().unwrap()[1]
                        .as_int()
                        .unwrap();
                    if a + b < 10 {
                        break;
                    }
                    let own = if target == 0 { a } else { b };
                    txn.update("kv", &Key::single(target), row![target, own - 10])
                        .unwrap();
                    match txn.commit() {
                        Ok(_) => {
                            withdrawals.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(e) if e.is_retryable() => continue,
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
            });
        }
    });

    let a = db.get_latest("kv", &Key::single(0i64)).unwrap().unwrap()[1]
        .as_int()
        .unwrap();
    let b = db.get_latest("kv", &Key::single(1i64)).unwrap().unwrap()[1]
        .as_int()
        .unwrap();
    assert!(
        a + b >= 0,
        "write skew slipped through: a={a} b={b} (sum {})",
        a + b
    );
    assert_eq!(
        a + b,
        INITIAL * 2 - 10 * withdrawals.load(Ordering::SeqCst),
        "every committed withdrawal must be accounted for exactly once"
    );
}

/// SSI aborts and the publication clock: rw-antidependency aborts caught
/// by phase-2 validation (the conflicting commit already published) are
/// *tick-free* — they happen before a timestamp is claimed. Only the
/// in-window late abort burns a tick, and that tick cannot be un-claimed:
/// by the time the re-validation fails, later commits have already
/// claimed higher timestamps and are blocked on the publication clock
/// passing the aborted one, so the claimed timestamp must be published
/// as an empty tick (a fully tick-free abort path is unsound). This test
/// pins the dense-timestamp invariant under abort storms: early aborts
/// move the clock by exactly zero, every burned tick is published
/// exactly once (ticks == commits + late aborts, the clock never skips
/// and never wedges), and the log stays strictly increasing.
#[test]
fn abort_storms_keep_the_publication_clock_dense() {
    let db = Database::new();
    db.create_table("kv", kv_schema()).unwrap();
    db.create_table("watch", kv_schema()).unwrap();
    let mut seed = db.begin();
    seed.insert("kv", row![0i64, 0i64]).unwrap();
    seed.insert("watch", row![0i64, 0i64]).unwrap();
    seed.commit().unwrap();

    // Deterministic storm: each round forces one rw-antidependency abort
    // — the victim's unlocked read of `watch` is invalidated by a commit
    // that fully publishes before the victim reaches validation, so
    // phase 2 vetoes it *before* a timestamp is claimed. These early
    // aborts must be tick-free.
    let mut expected_ts = db.current_ts();
    let mut commits = db.log_entries().len();
    for round in 0..32i64 {
        let mut victim = db.begin();
        let _ = victim.get("watch", &Key::single(0i64)).unwrap();
        victim
            .update("kv", &Key::single(0i64), row![0i64, round])
            .unwrap();

        let mut invalidator = db.begin();
        invalidator
            .update("watch", &Key::single(0i64), row![0i64, round])
            .unwrap();
        invalidator.commit().unwrap();
        expected_ts += 1;
        commits += 1;

        let err = victim.commit().expect_err("rw-antidependency must abort");
        assert!(err.is_retryable(), "round {round}: abort is retryable");
        assert_eq!(
            db.current_ts(),
            expected_ts,
            "round {round}: an early-validation abort burns no tick"
        );
        assert_eq!(
            db.log_entries().len(),
            commits,
            "round {round}: aborts leave no log entry"
        );
    }

    // Strictly increasing log despite the interleaved empty ticks.
    let log_ts: Vec<_> = db.log_entries().iter().map(|e| e.commit_ts).collect();
    assert!(
        log_ts.windows(2).all(|w| w[0] < w[1]),
        "log timestamps must stay strictly increasing: {log_ts:?}"
    );

    // The clock is not wedged: the next commit claims and publishes the
    // very next timestamp.
    let mut txn = db.begin();
    txn.update("kv", &Key::single(0i64), row![0i64, -1i64])
        .unwrap();
    let outcome = txn.commit().unwrap();
    assert_eq!(outcome.commit_ts, expected_ts + 1);
    assert_eq!(db.current_ts(), outcome.commit_ts);

    // Concurrent storm: 8 threads race reader-writers against watch
    // updaters so rw-antidependency aborts also land *inside* the
    // publication window, where each one burns exactly one tick.
    // Completion itself proves no publication waiter wedges on an
    // aborted tick; the accounting below proves the clock moved exactly
    // once per commit plus once per late abort — never more.
    const THREADS: usize = 8;
    const ROUNDS: usize = 50;
    let ts_before = db.current_ts();
    let successes = AtomicI64::new(0);
    let aborts = AtomicI64::new(0);
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let db = db.clone();
            let (successes, aborts, barrier) = (&successes, &aborts, &barrier);
            s.spawn(move || {
                barrier.wait();
                for round in 0..ROUNDS as i64 {
                    let mut txn = db.begin();
                    if t % 2 == 0 {
                        txn.update("watch", &Key::single(0i64), row![0i64, round])
                            .unwrap();
                    } else {
                        let _ = txn.get("watch", &Key::single(0i64)).unwrap();
                        txn.update("kv", &Key::single(0i64), row![0i64, round])
                            .unwrap();
                    }
                    match txn.commit() {
                        Ok(_) => {
                            successes.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(e) if e.is_retryable() => {
                            aborts.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
            });
        }
    });
    let ticks = (db.current_ts() - ts_before) as i64;
    let (successes, aborts) = (
        successes.load(Ordering::SeqCst),
        aborts.load(Ordering::SeqCst),
    );
    assert_eq!(successes + aborts, (THREADS * ROUNDS) as i64);
    assert!(
        ticks >= successes && ticks <= successes + aborts,
        "clock moved {ticks} ticks for {successes} commits + {aborts} aborts: \
         every tick must be one commit or one late abort"
    );
    let final_log: Vec<_> = db.log_entries().iter().map(|e| e.commit_ts).collect();
    assert!(final_log.windows(2).all(|w| w[0] < w[1]));
    let mut txn = db.begin();
    txn.update("kv", &Key::single(0i64), row![0i64, -2i64])
        .unwrap();
    let outcome = txn.commit().unwrap();
    assert_eq!(
        db.current_ts(),
        outcome.commit_ts,
        "post-storm clock catches up to the last published commit"
    );
}
