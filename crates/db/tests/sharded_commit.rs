//! The sharded commit protocol under multi-table schedules and threads.
//!
//! PR 2 replaced the global commit lock with per-table commit locks, a
//! global atomic commit-timestamp allocator, and ordered publication
//! (see the protocol docs on `trod_db::database`). These tests pin the
//! properties that refactor must preserve:
//!
//! * a property test drives randomly generated multi-table schedules
//!   (2–4 tables, reads and writes spread across them, concurrent
//!   committers in between) against three databases — sharded, sharded
//!   with full-scan validation forced, and the serial-commit baseline —
//!   and requires identical commit decisions and identical final states;
//! * stress tests hammer disjoint and overlapping table sets from 8
//!   threads and check that snapshot reads never observe a torn
//!   multi-table commit (a conserved cross-table sum), that commit
//!   timestamps are dense and strictly monotone in the log, and that
//!   per-table change logs stay commit-ordered;
//! * watermark tests pin the active-transaction registry semantics:
//!   GC clamps to `min_active_start_ts`, so an active transaction's
//!   snapshot survives aggressive truncation and its O(Δ) validation
//!   window is never cut.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

use proptest::prelude::*;

use trod_db::{row, DataType, Database, DbError, IsolationLevel, Key, Predicate, Schema};

const TABLES: [&str; 4] = ["t0", "t1", "t2", "t3"];

fn kv_schema() -> Schema {
    Schema::builder()
        .column("k", DataType::Int)
        .column("v", DataType::Int)
        .primary_key(&["k"])
        .build()
        .unwrap()
}

fn new_db(tables: usize, full_scan: bool, serial: bool) -> Database {
    let db = Database::new();
    for name in &TABLES[..tables] {
        db.create_table(*name, kv_schema()).unwrap();
    }
    db.set_full_scan_validation(full_scan);
    db.set_serial_commit(serial);
    db
}

/// One write in a generated transaction: `(table, key, value)`.
#[derive(Debug, Clone)]
enum Write {
    Put { t: usize, k: i64, v: i64 },
    Delete { t: usize, k: i64 },
}

/// One read the pending transaction performs before the concurrent
/// committers run.
#[derive(Debug, Clone)]
enum Read {
    Get { t: usize, k: i64 },
    ScanEqV { t: usize, v: i64 },
    ScanGeK { t: usize, k: i64 },
}

/// A generated multi-table schedule; see `run_schedule`.
#[derive(Debug, Clone)]
struct Schedule {
    tables: usize,
    history: Vec<Vec<Write>>,
    reads: Vec<Read>,
    writes: Vec<Write>,
    concurrent: Vec<Vec<Write>>,
    /// Run watermark-clamped `gc_before(current_ts)` after this many
    /// concurrent commits (if in range).
    gc_after: usize,
}

fn write_strategy(tables: usize, key_space: i64) -> impl Strategy<Value = Write> {
    prop_oneof![
        (0..tables, 0..key_space, 0..50i64).prop_map(|(t, k, v)| Write::Put { t, k, v }),
        (0..tables, 0..key_space).prop_map(|(t, k)| Write::Delete { t, k }),
    ]
}

fn read_strategy(tables: usize, key_space: i64) -> impl Strategy<Value = Read> {
    prop_oneof![
        (0..tables, 0..key_space).prop_map(|(t, k)| Read::Get { t, k }),
        (0..tables, 0..50i64).prop_map(|(t, v)| Read::ScanEqV { t, v }),
        (0..tables, 0..key_space).prop_map(|(t, k)| Read::ScanGeK { t, k }),
    ]
}

fn schedule_strategy() -> impl Strategy<Value = Schedule> {
    // Table indices are generated over the full 0..4 range and reduced
    // modulo the schedule's table count when the schedule runs (the
    // vendored proptest stub has no `prop_flat_map` to thread the count
    // through the sub-strategies).
    let key_space = 8i64;
    (
        2usize..=4,
        prop::collection::vec(
            prop::collection::vec(write_strategy(TABLES.len(), key_space), 1..4),
            0..5,
        ),
        prop::collection::vec(read_strategy(TABLES.len(), key_space), 1..5),
        prop::collection::vec(write_strategy(TABLES.len(), key_space), 0..4),
        prop::collection::vec(
            prop::collection::vec(write_strategy(TABLES.len(), key_space), 1..4),
            0..6,
        ),
        0usize..8,
    )
        .prop_map(|(tables, history, reads, writes, concurrent, gc_after)| {
            let clamp_w = |w: Write| match w {
                Write::Put { t, k, v } => Write::Put {
                    t: t % tables,
                    k,
                    v,
                },
                Write::Delete { t, k } => Write::Delete { t: t % tables, k },
            };
            let clamp_r = |r: Read| match r {
                Read::Get { t, k } => Read::Get { t: t % tables, k },
                Read::ScanEqV { t, v } => Read::ScanEqV { t: t % tables, v },
                Read::ScanGeK { t, k } => Read::ScanGeK { t: t % tables, k },
            };
            let clamp_txn = |txn: Vec<Write>| txn.into_iter().map(clamp_w).collect::<Vec<_>>();
            Schedule {
                tables,
                history: history.into_iter().map(clamp_txn).collect(),
                reads: reads.into_iter().map(clamp_r).collect(),
                writes: writes.into_iter().map(clamp_w).collect(),
                concurrent: concurrent.into_iter().map(clamp_txn).collect(),
                gc_after,
            }
        })
}

fn commit_writes(db: &Database, writes: &[Write]) -> Result<(), DbError> {
    let mut txn = db.begin_with(IsolationLevel::ReadCommitted);
    for w in writes {
        match w {
            Write::Put { t, k, v } => {
                let key = Key::single(*k);
                if txn.get(TABLES[*t], &key)?.is_some() {
                    txn.update(TABLES[*t], &key, row![*k, *v])?;
                } else {
                    txn.insert(TABLES[*t], row![*k, *v])?;
                }
            }
            Write::Delete { t, k } => {
                txn.delete(TABLES[*t], &Key::single(*k))?;
            }
        }
    }
    txn.commit()?;
    Ok(())
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Outcome {
    Committed,
    SerializationFailure,
    WriteConflict,
    OtherError(String),
}

/// Runs the schedule: history commits, then a pending serializable
/// transaction reads and buffers writes across multiple tables, then the
/// concurrent transactions commit (with optional mid-window GC), then the
/// pending transaction attempts to commit. Returns its outcome plus the
/// final per-table states.
fn run_schedule(db: &Database, s: &Schedule) -> (Outcome, Vec<BTreeMap<i64, i64>>) {
    for writes in &s.history {
        commit_writes(db, writes).unwrap();
    }

    let mut pending = db.begin_with(IsolationLevel::Serializable);
    for read in &s.reads {
        match read {
            Read::Get { t, k } => {
                let _ = pending.get(TABLES[*t], &Key::single(*k)).unwrap();
            }
            Read::ScanEqV { t, v } => {
                let _ = pending.scan(TABLES[*t], &Predicate::eq("v", *v)).unwrap();
            }
            Read::ScanGeK { t, k } => {
                let _ = pending.scan(TABLES[*t], &Predicate::ge("k", *k)).unwrap();
            }
        }
    }
    for w in &s.writes {
        match w {
            Write::Put { t, k, v } => {
                let key = Key::single(*k);
                if pending.get(TABLES[*t], &key).unwrap().is_some() {
                    pending.update(TABLES[*t], &key, row![*k, *v]).unwrap();
                } else {
                    pending.insert(TABLES[*t], row![*k, *v]).unwrap();
                }
            }
            Write::Delete { t, k } => {
                pending.delete(TABLES[*t], &Key::single(*k)).unwrap();
            }
        }
    }

    for (i, writes) in s.concurrent.iter().enumerate() {
        commit_writes(db, writes).unwrap();
        if i + 1 == s.gc_after {
            // Aggressive truncation request; the watermark clamps it at
            // the pending transaction's snapshot, so its reads and its
            // O(Δ) validation window survive.
            db.gc_before(db.current_ts());
        }
    }

    let outcome = match pending.commit() {
        Ok(_) => Outcome::Committed,
        Err(DbError::SerializationFailure { .. }) => Outcome::SerializationFailure,
        Err(DbError::WriteConflict { .. }) => Outcome::WriteConflict,
        Err(other) => Outcome::OtherError(other.to_string()),
    };

    let state = TABLES[..s.tables]
        .iter()
        .map(|t| {
            db.scan_latest(t, &Predicate::True)
                .unwrap()
                .into_iter()
                .map(|(_, r)| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
                .collect()
        })
        .collect();
    (outcome, state)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The sharded commit path, the forced full-scan validation path and
    /// the serial-commit baseline accept and reject exactly the same
    /// multi-table schedules, leaving identical final states.
    #[test]
    fn multi_table_commits_are_decision_equivalent_across_modes(
        schedule in schedule_strategy()
    ) {
        let sharded = new_db(schedule.tables, false, false);
        let full_scan = new_db(schedule.tables, true, false);
        let serial = new_db(schedule.tables, false, true);
        let (a, sa) = run_schedule(&sharded, &schedule);
        let (b, sb) = run_schedule(&full_scan, &schedule);
        let (c, sc) = run_schedule(&serial, &schedule);
        prop_assert_eq!(&a, &b, "sharded vs full-scan diverged for {:?}", schedule);
        prop_assert_eq!(&a, &c, "sharded vs serial diverged for {:?}", schedule);
        prop_assert_eq!(&sa, &sb);
        prop_assert_eq!(sa, sc);
    }

    /// Mid-schedule GC with an active multi-table transaction never
    /// forces the full-scan fallback: the watermark keeps every table's
    /// change-log low-water mark at or below the pending snapshot.
    #[test]
    fn watermark_keeps_validation_windows_intact(
        schedule in schedule_strategy()
    ) {
        let db = new_db(schedule.tables, false, false);
        let snapshot_floor = {
            for writes in &schedule.history {
                commit_writes(&db, writes).unwrap();
            }
            let mut pending = db.begin();
            let _ = pending.scan(TABLES[0], &Predicate::True).unwrap();
            let start_ts = pending.start_ts();
            for writes in &schedule.concurrent {
                commit_writes(&db, writes).unwrap();
            }
            db.gc_before(db.current_ts());
            for t in &TABLES[..schedule.tables] {
                let low = db.table(t).unwrap().changelog().low_water();
                prop_assert!(
                    low <= start_ts,
                    "table {} low water {} passed active snapshot {}",
                    t, low, start_ts
                );
            }
            drop(pending);
            start_ts
        };
        // With the transaction gone, the same request truncates freely.
        db.gc_before(db.current_ts());
        let low = db.table(TABLES[0]).unwrap().changelog().low_water();
        prop_assert!(low >= snapshot_floor);
    }
}

/// 8 threads transfer value between per-thread slots of 4 tables —
/// sometimes disjoint pairs, sometimes overlapping — while 2 reader
/// threads take serializable snapshots of everything and assert the
/// cross-table sum is conserved. A torn (half-published) commit would
/// break the sum; a non-atomic multi-table publication would too.
#[test]
fn snapshot_reads_never_see_torn_multi_table_commits() {
    const WRITERS: usize = 8;
    const ROUNDS: usize = 60;
    const SLOT_INIT: i64 = 100;

    let db = new_db(4, false, false);
    for table in TABLES {
        let mut txn = db.begin_with(IsolationLevel::ReadCommitted);
        for slot in 0..WRITERS as i64 {
            txn.insert(table, row![slot, SLOT_INIT]).unwrap();
        }
        txn.commit().unwrap();
    }
    let expected_total = 4 * WRITERS as i64 * SLOT_INIT;

    let done = Arc::new(AtomicBool::new(false));
    // Parties: WRITERS writers + 2 readers + the orchestrating thread.
    let barrier = Arc::new(Barrier::new(WRITERS + 3));

    std::thread::scope(|scope| {
        let mut writers = Vec::new();
        for w in 0..WRITERS {
            let db = db.clone();
            let barrier = barrier.clone();
            writers.push(scope.spawn(move || {
                barrier.wait();
                let slot = Key::single(w as i64);
                for round in 0..ROUNDS {
                    // Rotate over table pairs: some rounds are disjoint
                    // from other threads' pairs, some overlap.
                    let src = (w + round) % 4;
                    let dst = (w + round + 1 + round % 3) % 4;
                    if src == dst {
                        continue;
                    }
                    loop {
                        let mut txn = db.begin();
                        let a = txn.get(TABLES[src], &slot).unwrap().unwrap()[1]
                            .as_int()
                            .unwrap();
                        let b = txn.get(TABLES[dst], &slot).unwrap().unwrap()[1]
                            .as_int()
                            .unwrap();
                        txn.update(TABLES[src], &slot, row![w as i64, a - 1])
                            .unwrap();
                        txn.update(TABLES[dst], &slot, row![w as i64, b + 1])
                            .unwrap();
                        match txn.commit() {
                            Ok(_) => break,
                            Err(e) if e.is_retryable() => continue,
                            Err(e) => panic!("unexpected error: {e}"),
                        }
                    }
                }
            }));
        }
        for _ in 0..2 {
            let db = db.clone();
            let barrier = barrier.clone();
            let done = done.clone();
            scope.spawn(move || {
                barrier.wait();
                while !done.load(Ordering::Relaxed) {
                    // A read-only serializable transaction: all four scans
                    // read the same snapshot.
                    let mut txn = db.begin();
                    let mut total = 0i64;
                    for table in TABLES {
                        for (_, row) in txn.scan(table, &Predicate::True).unwrap() {
                            total += row[1].as_int().unwrap();
                        }
                    }
                    assert_eq!(
                        total, expected_total,
                        "snapshot saw a torn multi-table commit"
                    );
                    txn.commit().unwrap();
                }
            });
        }
        // Release everyone, join the writers, then stop the readers.
        barrier.wait();
        for handle in writers {
            handle.join().unwrap();
        }
        done.store(true, Ordering::Relaxed);
    });

    let final_total: i64 = (0..4)
        .map(|t| {
            db.scan_latest(TABLES[t], &Predicate::True)
                .unwrap()
                .iter()
                .map(|(_, r)| r[1].as_int().unwrap())
                .sum::<i64>()
        })
        .sum();
    assert_eq!(final_total, expected_total, "transfers conserve the total");

    // Commit timestamps in the log are strictly increasing and dense
    // enough to account for every commit exactly once.
    let log = db.log_entries();
    for pair in log.windows(2) {
        assert!(pair[0].commit_ts < pair[1].commit_ts);
    }
}

/// Fully disjoint commit traffic: 4 writer tables, 8 threads (two per
/// table), every commit validates a predicate scan over its own table.
/// All commits must succeed on first attempt or retry cleanly, timestamps
/// must be unique and dense, and each table's change log commit-ordered.
#[test]
fn disjoint_table_committers_make_progress_and_stay_ordered() {
    const PER_THREAD: i64 = 40;

    let db = new_db(4, false, false);
    let barrier = Arc::new(Barrier::new(8));

    std::thread::scope(|scope| {
        for thread in 0..8usize {
            let db = db.clone();
            let barrier = barrier.clone();
            scope.spawn(move || {
                let table = TABLES[thread % 4];
                let base = (thread as i64) * 1_000;
                barrier.wait();
                for i in 0..PER_THREAD {
                    loop {
                        let mut txn = db.begin();
                        let mine = txn
                            .scan(
                                table,
                                &Predicate::ge("k", base).and(Predicate::lt("k", base + 1_000)),
                            )
                            .unwrap()
                            .len();
                        assert_eq!(mine as i64, i, "thread sees exactly its own prefix");
                        txn.insert(table, row![base + i, thread as i64]).unwrap();
                        match txn.commit() {
                            Ok(_) => break,
                            Err(e) if e.is_retryable() => continue,
                            Err(e) => panic!("unexpected error: {e}"),
                        }
                    }
                }
            });
        }
    });

    let total: usize = (0..4)
        .map(|t| db.scan_latest(TABLES[t], &Predicate::True).unwrap().len())
        .sum();
    assert_eq!(total, 8 * PER_THREAD as usize);
    assert_eq!(db.log_len(), 8 * PER_THREAD as usize);

    // Global log: strictly increasing, dense (no holes: every allocated
    // timestamp was published).
    let log = db.log_entries();
    for pair in log.windows(2) {
        assert_eq!(
            pair[0].commit_ts + 1,
            pair[1].commit_ts,
            "commit timestamps are dense"
        );
    }

    // Per-table change logs are commit-ordered.
    for table in TABLES {
        let store = db.table(table).unwrap();
        let mut last = 0;
        store
            .changelog()
            .scan_after(0, |entry| {
                assert!(entry.commit_ts >= last, "change log out of order");
                last = entry.commit_ts;
                None::<()>
            })
            .unwrap();
    }
}

/// The registry tracks begin/commit/abort/drop, and GC clamps to the
/// watermark: an active transaction's snapshot survives `gc_before`
/// called far above it.
#[test]
fn gc_clamps_to_the_active_transaction_watermark() {
    let db = new_db(1, false, false);
    commit_writes(&db, &[Write::Put { t: 0, k: 1, v: 10 }]).unwrap();

    assert_eq!(db.min_active_start_ts(), None);
    let mut reader = db.begin();
    let snap = reader.start_ts();
    assert_eq!(db.min_active_start_ts(), Some(snap));
    assert_eq!(db.active_txn_count(), 1);

    // Later history the reader must not see, plus a deletion of the row
    // version it *must* still see.
    commit_writes(&db, &[Write::Put { t: 0, k: 1, v: 99 }]).unwrap();
    commit_writes(&db, &[Write::Put { t: 0, k: 2, v: 7 }]).unwrap();

    // Aggressive GC request: clamped at the reader's snapshot. History at
    // or below the snapshot is collectable; everything above it is pinned.
    let (versions, logs) = db.gc_before(db.current_ts());
    assert_eq!(versions, 0, "no version visible at the snapshot is dropped");
    assert_eq!(logs, 1, "only the pre-snapshot log entry is collectable");
    assert_eq!(
        db.log_since(snap).len(),
        2,
        "log entries above the snapshot survive"
    );

    let seen = reader.get(TABLES[0], &Key::single(1i64)).unwrap().unwrap();
    assert_eq!(seen[1].as_int(), Some(10), "snapshot read survives GC");
    // The reader's serializable commit validates its read against the
    // intact change log (and aborts, because k=1 changed after snap).
    reader
        .update(TABLES[0], &Key::single(1i64), row![1i64, 11i64])
        .unwrap();
    assert!(matches!(
        reader.commit(),
        Err(DbError::SerializationFailure { .. }) | Err(DbError::WriteConflict { .. })
    ));

    // Transaction finished: registry empty, and the same GC now truncates.
    assert_eq!(db.min_active_start_ts(), None);
    let (versions, _) = db.gc_before(db.current_ts());
    assert!(versions > 0, "GC proceeds once the watermark lifts");

    // Abort and drop also deregister.
    let t1 = db.begin();
    let t2 = db.begin();
    assert_eq!(db.active_txn_count(), 2);
    t1.abort();
    assert_eq!(db.active_txn_count(), 1);
    drop(t2);
    assert_eq!(db.active_txn_count(), 0);
}

/// Read-only transactions pin the watermark too (their snapshot reads
/// depend on it) but publish nothing.
#[test]
fn read_only_transactions_pin_but_do_not_publish() {
    let db = new_db(2, false, false);
    commit_writes(&db, &[Write::Put { t: 0, k: 1, v: 1 }]).unwrap();
    let ts_before = db.current_ts();

    let mut ro = db.begin();
    let _ = ro.scan(TABLES[0], &Predicate::True).unwrap();
    assert_eq!(db.min_active_start_ts(), Some(ts_before));
    let info = ro.commit().unwrap();
    assert!(info.changes.is_empty());
    assert_eq!(db.current_ts(), ts_before, "read-only commit bumps nothing");
    assert_eq!(db.log_len(), 1);
    assert_eq!(db.min_active_start_ts(), None);
}
