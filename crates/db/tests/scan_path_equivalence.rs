//! Decision-equivalence of every scan access path.
//!
//! The scan planner may serve a predicate from a hash-index point probe,
//! an `IN (...)` multi-probe, an ordered range probe, or the full chain
//! walk. Whatever it picks, the result set must be *identical* to the
//! full scan's — at the latest timestamp and at every time-travel
//! timestamp, across updates that move rows away from indexed values,
//! deletes, GC, and predicates (`Or` / `Not`) whose index paths would
//! under-approximate and must therefore be bypassed.
//!
//! Two oracles pin this down:
//!
//! * within one indexed database, `TableStore::scan_at` (planned) must
//!   equal `TableStore::scan_at_full` (forced full scan);
//! * an indexed and an index-free database fed the same history must
//!   answer every `scan_as_of` identically.

use proptest::prelude::*;

use trod_db::{row, DataType, Database, Key, Predicate, ScanPlan, Schema, Ts, Value};

fn schema() -> Schema {
    Schema::builder()
        .column("k", DataType::Int)
        .column("v", DataType::Int)
        .column("g", DataType::Int)
        .primary_key(&["k"])
        .build()
        .unwrap()
}

fn new_db(indexed: bool) -> Database {
    let db = Database::new();
    db.create_table("t", schema()).unwrap();
    if indexed {
        db.create_index("t", "g").unwrap();
        db.create_range_index("t", "v").unwrap();
    }
    db
}

/// One write in a generated batch (one committed transaction per batch).
#[derive(Debug, Clone)]
enum Op {
    Put { k: i64, v: i64, g: i64 },
    Delete { k: i64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Three put arms to one delete arm: histories grow, with enough
    // deletes to tombstone index entries.
    let put = || (0i64..24, 0i64..40, 0i64..6).prop_map(|(k, v, g)| Op::Put { k, v, g });
    prop_oneof![
        put(),
        put(),
        put(),
        (0i64..24).prop_map(|k| Op::Delete { k }),
    ]
}

/// Applies one batch as a single committed transaction; upsert semantics
/// keep generation simple (puts of live keys become updates — the case
/// that moves rows away from indexed values).
fn apply_batch(db: &Database, batch: &[Op]) {
    let mut txn = db.begin_with(trod_db::IsolationLevel::ReadCommitted);
    for op in batch {
        match op {
            Op::Put { k, v, g } => {
                let key = Key::single(*k);
                if txn.get("t", &key).unwrap().is_some() {
                    txn.update("t", &key, row![*k, *v, *g]).unwrap();
                } else {
                    txn.insert("t", row![*k, *v, *g]).unwrap();
                }
            }
            Op::Delete { k } => {
                txn.delete("t", &Key::single(*k)).unwrap();
            }
        }
    }
    txn.commit().unwrap();
}

/// Predicates covering every planner path: hash-index equality and
/// `IN (...)` on `g`, range windows / one-sided bounds / equality on the
/// range-indexed `v`, plus `And`/`Or`/`Not` combinations that force the
/// planner to intersect bounds or bypass indexes entirely.
fn leaf_strategy() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        (0i64..6).prop_map(|g| Predicate::eq("g", g)),
        prop::collection::vec(0i64..6, 0..4)
            .prop_map(|gs| { Predicate::in_list("g", gs.into_iter().map(Value::Int).collect()) }),
        (0i64..40, 0i64..20)
            .prop_map(|(lo, w)| Predicate::ge("v", lo).and(Predicate::lt("v", lo + w))),
        (0i64..40).prop_map(|v| Predicate::le("v", v)),
        (0i64..40).prop_map(|v| Predicate::eq("v", v)),
        (0i64..40).prop_map(|v| Predicate::ne("v", v)),
        Just(Predicate::True),
    ]
}

fn pred_strategy() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        leaf_strategy(),
        (leaf_strategy(), leaf_strategy(), 0u8..4).prop_map(|(a, b, c)| match c {
            0 => a.and(b),
            1 => a.or(b),
            2 => a.negate(),
            _ => a.and(b.negate()),
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn every_planner_path_equals_the_full_scan(
        batches in prop::collection::vec(prop::collection::vec(op_strategy(), 1..8), 1..10),
        preds in prop::collection::vec(pred_strategy(), 1..5),
        gc_after in 0usize..12,
    ) {
        let indexed = new_db(true);
        let plain = new_db(false);
        // Identical single-threaded histories allocate identical commit
        // timestamps, so as-of reads line up across the two databases.
        let mut boundaries: Vec<Ts> = vec![0];
        for (i, batch) in batches.iter().enumerate() {
            apply_batch(&indexed, batch);
            apply_batch(&plain, batch);
            prop_assert_eq!(indexed.current_ts(), plain.current_ts());
            boundaries.push(indexed.current_ts());
            if i + 1 == gc_after {
                // GC purges dead index entries; reads below the horizon
                // are no longer comparable, so drop those boundaries.
                indexed.gc_before(indexed.current_ts());
                plain.gc_before(plain.current_ts());
                boundaries.clear();
                boundaries.push(indexed.current_ts());
            }
        }
        boundaries.push(indexed.current_ts() + 5);

        let table = indexed.table("t").unwrap();
        for pred in &preds {
            for &ts in &boundaries {
                // Oracle 1: planned path vs forced full scan, same store.
                let planned = table.scan_at(pred, ts).unwrap();
                let full = table.scan_at_full(pred, ts).unwrap();
                prop_assert_eq!(&planned, &full, "planned != full for [{}] at ts {}", pred, ts);
                // Oracle 2: indexed vs index-free database.
                let a = indexed.scan_as_of("t", pred, ts).unwrap();
                let b = plain.scan_as_of("t", pred, ts).unwrap();
                prop_assert_eq!(a, b, "indexed != plain for [{}] at ts {}", pred, ts);
            }
        }
    }
}

/// `Or` / `Not` predicates must bypass every index: any probe derived
/// from one branch would under-approximate the other.
#[test]
fn or_and_not_force_the_full_scan_path() {
    let db = new_db(true);
    for i in 0..50i64 {
        let mut txn = db.begin();
        txn.insert("t", row![i, i, i % 5]).unwrap();
        txn.commit().unwrap();
    }
    let table = db.table("t").unwrap();
    for pred in [
        Predicate::eq("g", 1i64).or(Predicate::eq("g", 2i64)),
        Predicate::ge("v", 45i64).or(Predicate::eq("g", 0i64)),
        Predicate::eq("g", 1i64).negate(),
        Predicate::ge("v", 45i64).negate(),
        Predicate::in_list("g", vec![Value::Int(1)]).negate(),
    ] {
        assert_eq!(
            table.plan_scan(&pred),
            ScanPlan::FullScan { rows: 50 },
            "[{pred}] must not use an index"
        );
        assert_eq!(
            table.scan_at(&pred, db.current_ts()).unwrap(),
            table.scan_at_full(&pred, db.current_ts()).unwrap()
        );
    }
    // The same constraints as conjuncts DO use indexes — and agree.
    for pred in [
        Predicate::eq("g", 1i64).and(Predicate::eq("g", 2i64)),
        Predicate::ge("v", 45i64).and(Predicate::eq("g", 0i64)),
    ] {
        assert!(table.plan_scan(&pred).uses_index(), "[{pred}]");
        assert_eq!(
            table.scan_at(&pred, db.current_ts()).unwrap(),
            table.scan_at_full(&pred, db.current_ts()).unwrap()
        );
    }
}

/// Rows updated away from an indexed value stay reachable below the
/// update and invisible at it, through both index kinds.
#[test]
fn updates_away_from_indexed_values_respect_time_travel() {
    let db = new_db(true);
    let mut txn = db.begin();
    txn.insert("t", row![1i64, 10i64, 3i64]).unwrap();
    txn.commit().unwrap();
    let before = db.current_ts();
    let mut txn = db.begin();
    txn.update("t", &Key::single(1i64), row![1i64, 30i64, 4i64])
        .unwrap();
    txn.commit().unwrap();
    let after = db.current_ts();

    let table = db.table("t").unwrap();
    for (pred, hits_before, hits_after) in [
        (Predicate::eq("g", 3i64), 1, 0),
        (Predicate::eq("g", 4i64), 0, 1),
        (Predicate::le("v", 15i64), 1, 0),
        (Predicate::ge("v", 20i64), 0, 1),
    ] {
        for (ts, expected) in [(before, hits_before), (after, hits_after)] {
            let got = db.scan_as_of("t", &pred, ts).unwrap();
            assert_eq!(got.len(), expected, "[{pred}] at ts {ts}");
            assert_eq!(got, table.scan_at_full(&pred, ts).unwrap());
        }
    }
}

/// Planner choices surface through `plan_scan` for every path kind, and
/// in-list probes merge candidates across elements.
#[test]
fn planner_exercises_every_path_kind() {
    let db = new_db(true);
    let mut txn = db.begin();
    for i in 0..200i64 {
        txn.insert("t", row![i, i, i % 10]).unwrap();
    }
    txn.commit().unwrap();
    let table = db.table("t").unwrap();

    let point = Predicate::eq("g", 7i64);
    assert!(matches!(
        table.plan_scan(&point),
        ScanPlan::PointProbe { .. }
    ));
    assert_eq!(table.scan_at(&point, db.current_ts()).unwrap().len(), 20);

    let multi = Predicate::in_list("g", vec![Value::Int(1), Value::Int(2)]);
    assert!(matches!(
        table.plan_scan(&multi),
        ScanPlan::MultiProbe { probes: 2, .. }
    ));
    assert_eq!(table.scan_at(&multi, db.current_ts()).unwrap().len(), 40);

    let range = Predicate::ge("v", 190i64);
    assert!(matches!(
        table.plan_scan(&range),
        ScanPlan::RangeProbe { .. }
    ));
    assert_eq!(table.scan_at(&range, db.current_ts()).unwrap().len(), 10);

    assert_eq!(
        table.plan_scan(&Predicate::True),
        ScanPlan::FullScan { rows: 200 }
    );
}
