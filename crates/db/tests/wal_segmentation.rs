//! Crash-safety of the segmented WAL at the database level.
//!
//! The tentpole contracts under test:
//!
//! * **Crash at every cost unit** — a deterministic sweep runs a
//!   workload that performs many rotations, one compaction, and
//!   (in the checkpoint variant) an environment checkpoint per commit
//!   over a [`FailpointDir`], crashing after `k` cost units for every
//!   `k` from 0 to the full run's cost (one unit per sink byte, one per
//!   metadata operation — create, rename, delete, fsync, directory
//!   fsync). Every crash point must recover into an oracle-equivalent
//!   state containing every acknowledged commit: zero lost durable
//!   commits, no torn state, no panic.
//! * **Recovery equivalence** — a property test drives random workloads
//!   at random segment sizes and checkpoint cadences, crashes by
//!   truncating the persisted image at a random point or flipping a
//!   random bit, and requires recovery to either produce an
//!   oracle-equivalent state or refuse with a typed [`StorageError`] —
//!   never panic, never fabricate state.
//! * **Checkpoint fallback** — a corrupt checkpoint file is skipped in
//!   favour of the next older one, and with all checkpoints damaged
//!   boot degrades to full WAL replay; both paths are counted and
//!   oracle-checked.
//! * **Layout adoption** — a pre-segmentation single-file log migrates
//!   byte-identically into segment 0, and a manifest-less directory of
//!   `wal-*.seg` files is adopted in sequence order.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use trod_db::segment::{DirFailpointHandle, FailpointDir, LogDir, MemDir};
use trod_db::wal::encode_frame;
use trod_db::{
    row, CommittedTxn, DataType, Database, DbError, Schema, StorageError, SyncMode, Ts, WalOptions,
    WalRecord,
};

fn events_schema() -> Schema {
    Schema::builder()
        .column("k", DataType::Int)
        .column("v", DataType::Int)
        .primary_key(&["k"])
        .build()
        .unwrap()
}

fn opts(workload: &Workload) -> WalOptions {
    WalOptions {
        sync_mode: SyncMode::Sync,
        segment_bytes: workload.segment_bytes,
        checkpoint_bytes: workload.checkpoint_bytes,
        ..WalOptions::default()
    }
}

/// One deterministic workload: DDL, `commits` inserts (each one synced
/// commit), and optionally a GC (which compacts sealed segments below
/// the floor into cold files) after commit `gc_after`.
struct Workload {
    segment_bytes: u64,
    commits: i64,
    gc_after: Option<i64>,
    /// Automatic environment-checkpoint cadence in appended WAL bytes
    /// (0 = disabled). `1` forces a checkpoint after every commit, so a
    /// crash sweep crosses every byte of the checkpoint write and its
    /// manifest swap.
    checkpoint_bytes: u64,
}

/// Runs the workload until completion or the first storage failure
/// (= the crash); returns the commit timestamps that were *acknowledged*
/// (fsync succeeded before the crash point).
fn run(workload: &Workload, dir: Arc<dyn LogDir>) -> Vec<Ts> {
    let mut acked = Vec::new();
    let db = match Database::create_durable_in(dir, opts(workload)) {
        Ok(db) => db,
        Err(_) => return acked,
    };
    if db.create_table("events", events_schema()).is_err() {
        return acked;
    }
    for i in 0..workload.commits {
        let mut txn = db.begin();
        txn.insert("events", row![i, i * 10]).unwrap();
        match txn.commit() {
            Ok(outcome) => acked.push(outcome.commit_ts),
            Err(DbError::Storage(_)) => return acked,
            Err(e) => panic!("only storage errors may surface at a crash: {e}"),
        }
        if workload.gc_after == Some(i) {
            // GC truncates the live log and (best-effort) compacts the
            // covered sealed segments; a crash mid-compaction must never
            // lose history.
            let horizon = db.current_ts();
            let _ = db.gc_before(horizon);
        }
    }
    acked
}

/// The same workload against a plain in-memory database (no WAL, no GC):
/// the oracle both the recovered history and the recovered *state* are
/// checked against (its MVCC versions answer `materialize_at` for any
/// horizon).
fn oracle(workload: &Workload) -> (Database, Vec<CommittedTxn>) {
    let db = Database::new();
    db.create_table("events", events_schema()).unwrap();
    for i in 0..workload.commits {
        let mut txn = db.begin();
        txn.insert("events", row![i, i * 10]).unwrap();
        txn.commit().unwrap();
    }
    let log = db.log_entries();
    (db, log)
}

/// Checks a recovered database against the oracle. A boot without a
/// checkpoint recovers a verbatim oracle *prefix*; a checkpoint boot
/// recovers a *tail* (the log below the checkpoint is collapsed into
/// restored state). Both are covered by the same two facts:
///
/// * the recovered log is a contiguous run of oracle entries ending at
///   the recovered clock, and
/// * the recovered table state equals the oracle's state materialised at
///   the recovered clock — so a checkpoint can never smuggle in rows the
///   history does not explain.
///
/// The horizon must cover every acknowledged commit.
fn assert_state_matches_oracle(
    db: &Database,
    oracle_db: &Database,
    oracle_log: &[CommittedTxn],
    acked: &[Ts],
    tag: &str,
) {
    let log = db.log_entries();
    assert!(
        log.len() <= oracle_log.len(),
        "{tag}: recovered more than was ever committed"
    );
    if !log.is_empty() {
        let start = oracle_log
            .iter()
            .position(|e| e.commit_ts == log[0].commit_ts)
            .unwrap_or_else(|| panic!("{tag}: recovered entry not in the oracle history"));
        assert!(
            start + log.len() <= oracle_log.len(),
            "{tag}: recovered log runs past the oracle"
        );
        assert_eq!(
            log[..],
            oracle_log[start..start + log.len()],
            "{tag}: contiguous oracle run"
        );
    }
    let horizon = db.current_ts();
    if let Some(last) = log.last() {
        assert_eq!(horizon, last.commit_ts, "{tag}: clock restored");
    }
    assert!(
        horizon <= oracle_log.last().map(|e| e.commit_ts).unwrap_or(0),
        "{tag}: clock past the oracle"
    );
    if let Some(&max_acked) = acked.iter().max() {
        assert!(
            horizon >= max_acked,
            "{tag}: acknowledged commit {max_acked} lost (recovered to {horizon})"
        );
    }
    let recovered = if db.has_table("events") {
        db.table("events").unwrap().materialize_at(horizon)
    } else {
        Vec::new()
    };
    let expected = oracle_db.table("events").unwrap().materialize_at(horizon);
    assert_eq!(
        recovered.len(),
        expected.len(),
        "{tag}: row count at horizon {horizon}"
    );
    for ((rk, rv), (ek, ev)) in recovered.iter().zip(expected.iter()) {
        assert_eq!(rk, ek, "{tag}: key at horizon {horizon}");
        assert_eq!(**rv, **ev, "{tag}: row for {rk:?} at horizon {horizon}");
    }
}

/// Recovers from `image` and checks it against the oracle: every
/// acknowledged commit covered, history a contiguous oracle run, state
/// oracle-equal at the horizon.
fn assert_recovers(
    image: MemDir,
    oracle_db: &Database,
    oracle_log: &[CommittedTxn],
    acked: &[Ts],
    tag: &str,
) {
    let (db, report) = Database::open_durable_in(Arc::new(image), WalOptions::default())
        .unwrap_or_else(|e| panic!("{tag}: a crash leaves a recoverable image, got {e}"));
    assert_state_matches_oracle(&db, oracle_db, oracle_log, acked, tag);
    assert!(report.segments >= 1, "{tag}: at least the active segment");
}

/// The deterministic sweep: crash after every cost unit of the full run.
fn crash_sweep(workload: &Workload, tag: &str) {
    // Counting pass: the unfaulted run fixes the total cost and proves
    // the workload itself is clean.
    let mem = MemDir::new();
    let points = DirFailpointHandle::new();
    let dir: Arc<dyn LogDir> = Arc::new(FailpointDir::new(Arc::new(mem.clone()), points.clone()));
    let all = run(workload, dir);
    assert_eq!(all.len() as i64, workload.commits, "{tag}: counting pass");
    let total = points.cost();
    let (oracle_db, oracle_log) = oracle(workload);
    if workload.checkpoint_bytes > 0 {
        // The sweep is only meaningful if the clean run actually wrote
        // checkpoints for it to crash inside.
        let (_, report) =
            Database::open_durable_in(Arc::new(mem.snapshot()), WalOptions::default())
                .unwrap_or_else(|e| panic!("{tag}: clean image reopens, got {e}"));
        assert!(
            report.checkpoint_ts.is_some(),
            "{tag}: the clean run wrote a checkpoint"
        );
    }
    assert_recovers(
        mem.snapshot(),
        &oracle_db,
        &oracle_log,
        &all,
        &format!("{tag} full"),
    );

    for k in 0..=total {
        let mem = MemDir::new();
        let points = DirFailpointHandle::new();
        points.crash_after(k);
        let dir: Arc<dyn LogDir> =
            Arc::new(FailpointDir::new(Arc::new(mem.clone()), points.clone()));
        let acked = run(workload, dir);
        assert_recovers(
            mem.snapshot(),
            &oracle_db,
            &oracle_log,
            &acked,
            &format!("{tag} crash@{k}"),
        );
    }
}

/// Tiny segment bound: every synced record rolls the active segment, so
/// the sweep crosses every byte of many rotations (segment pre-sync,
/// successor create, directory fsync, manifest temp write, manifest
/// rename) and of one compaction (cold copy, rename, manifest swap,
/// original deletes).
#[test]
fn crash_at_every_cost_unit_of_rotation_and_compaction() {
    crash_sweep(
        &Workload {
            segment_bytes: 1,
            commits: 6,
            gc_after: Some(3),
            checkpoint_bytes: 0,
        },
        "rot+compact",
    );
}

/// A larger segment bound exercises the crash points of exactly one
/// rotation boundary mid-workload.
#[test]
fn crash_at_every_cost_unit_of_a_single_rotation() {
    crash_sweep(
        &Workload {
            segment_bytes: 200,
            commits: 6,
            gc_after: None,
            checkpoint_bytes: 0,
        },
        "one-rotation",
    );
}

/// `checkpoint_bytes: 1` forces an environment checkpoint after every
/// commit, so the sweep crosses every byte of each checkpoint write
/// (temp-file body, rename, directory fsync) and of the manifest swap
/// that publishes it — plus the retention pruning of superseded
/// checkpoint files and a GC-triggered compaction riding alongside. A
/// crash anywhere inside a checkpoint must leave a boot that either uses
/// an older checkpoint or replays in full — never torn state, never a
/// lost acknowledged commit.
#[test]
fn crash_at_every_cost_unit_of_checkpoint_write_and_manifest_swap() {
    crash_sweep(
        &Workload {
            segment_bytes: 1,
            commits: 5,
            gc_after: Some(2),
            checkpoint_bytes: 1,
        },
        "checkpoint",
    );
}

/// A corrupt checkpoint is detected by its CRC frame and skipped in
/// favour of the next older one; with every checkpoint damaged, boot
/// falls back to full WAL replay. Either way the recovered state is
/// oracle-equal and the fallback is counted — never silently wrong.
#[test]
fn corrupt_checkpoint_falls_back_to_older_or_full_replay() {
    let workload = Workload {
        segment_bytes: 1,
        commits: 6,
        gc_after: None,
        checkpoint_bytes: 1,
    };
    let mem = MemDir::new();
    let dir: Arc<dyn LogDir> = Arc::new(mem.clone());
    let acked = run(&workload, dir);
    assert_eq!(acked.len(), 6);
    let (oracle_db, oracle_log) = oracle(&workload);

    let ckpts = |image: &MemDir| {
        let mut names: Vec<String> = image
            .names()
            .into_iter()
            .filter(|n| n.ends_with(".ckpt"))
            .collect();
        names.sort();
        names
    };
    let names = ckpts(&mem.snapshot());
    assert!(
        names.len() >= 2,
        "workload retains at least two checkpoints, got {names:?}"
    );

    // Baseline: the undamaged image boots from the newest checkpoint.
    let (db, report) = Database::open_durable_in(Arc::new(mem.snapshot()), WalOptions::default())
        .expect("clean image boots");
    let newest = report.checkpoint_ts.expect("boot used a checkpoint");
    assert_eq!(report.checkpoint_fallbacks, 0);
    assert_state_matches_oracle(&db, &oracle_db, &oracle_log, &acked, "clean ckpt boot");

    // Flip a byte mid-file in the newest checkpoint: boot must fall back
    // to the older one, count the fallback, and still match the oracle.
    let image = mem.snapshot();
    let newest_name = names.last().unwrap().clone();
    let mut bytes = image.file(&newest_name).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    image.put_file(&newest_name, bytes);
    let (db, report) =
        Database::open_durable_in(Arc::new(image), WalOptions::default()).expect("fallback boots");
    let older = report
        .checkpoint_ts
        .expect("an older checkpoint takes over");
    assert!(older < newest, "fell back past the damaged checkpoint");
    assert!(report.checkpoint_fallbacks >= 1, "fallback is counted");
    assert_state_matches_oracle(&db, &oracle_db, &oracle_log, &acked, "older ckpt boot");

    // Damage every checkpoint: boot degrades to full WAL replay — the
    // complete oracle history, no checkpoint credited.
    let image = mem.snapshot();
    for name in ckpts(&image) {
        let mut bytes = image.file(&name).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        image.put_file(&name, bytes);
    }
    let (db, report) = Database::open_durable_in(Arc::new(image), WalOptions::default())
        .expect("full replay boots");
    assert_eq!(report.checkpoint_ts, None, "no checkpoint survived");
    assert!(report.checkpoint_fallbacks >= 2, "every fallback counted");
    assert_eq!(db.log_entries()[..], oracle_log[..], "full oracle history");
    assert_state_matches_oracle(&db, &oracle_db, &oracle_log, &acked, "full-replay boot");
}

#[test]
fn sealed_segment_damage_is_a_typed_corruption_error() {
    let workload = Workload {
        segment_bytes: 1,
        commits: 5,
        gc_after: None,
        checkpoint_bytes: 0,
    };
    let mem = MemDir::new();
    let dir: Arc<dyn LogDir> = Arc::new(mem.clone());
    let acked = run(&workload, dir);
    assert_eq!(acked.len(), 5);

    // Damage a byte in the middle of the first (sealed) segment.
    let image = mem.snapshot();
    let mut bytes = image.file("wal-000000.seg").expect("sealed segment 0");
    assert!(!bytes.is_empty());
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    image.put_file("wal-000000.seg", bytes);

    let err = Database::open_durable_in(Arc::new(image), WalOptions::default())
        .map(|_| ())
        .expect_err("sealed damage must refuse recovery");
    match err {
        DbError::Storage(StorageError::Corrupt { offset, detail }) => {
            assert!(
                detail.contains("wal-000000.seg"),
                "error names the damaged file: {detail}"
            );
            assert!(offset <= mid as u64 + 12, "offset points into the damage");
        }
        other => panic!("expected Corrupt, got {other}"),
    }

    // Truncating a sealed segment is mid-file corruption too (its length
    // is pinned by the manifest), not a torn tail.
    let image = mem.snapshot();
    let bytes = image.file("wal-000000.seg").unwrap();
    image.put_file("wal-000000.seg", bytes[..bytes.len() - 1].to_vec());
    let err = Database::open_durable_in(Arc::new(image), WalOptions::default())
        .map(|_| ())
        .expect_err("short sealed segment must refuse recovery");
    assert!(
        matches!(
            err,
            DbError::Storage(StorageError::Corrupt { .. })
                | DbError::Storage(StorageError::Recovery { .. })
        ),
        "typed error, got {err}"
    );
}

#[test]
fn manifest_less_directory_of_segments_is_adopted_in_order() {
    // Build a multi-segment image, then drop its manifest: the layout a
    // crash before the very first manifest write (or a foreign copy of
    // just the segment files) leaves behind.
    let workload = Workload {
        segment_bytes: 1,
        commits: 5,
        gc_after: None,
        checkpoint_bytes: 0,
    };
    let mem = MemDir::new();
    let dir: Arc<dyn LogDir> = Arc::new(mem.clone());
    let acked = run(&workload, dir);
    let image = mem.snapshot();
    image.delete("MANIFEST").unwrap();
    let (oracle_db, oracle_log) = oracle(&workload);
    assert_recovers(image, &oracle_db, &oracle_log, &acked, "manifest-less");
}

fn scratch_path(tag: &str) -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "trod_wal_segmentation_{tag}_{}_{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

/// A pre-segmentation single-file WAL opens transparently: the old file
/// becomes segment 0 byte for byte, and the recovered history is intact.
#[test]
fn legacy_single_file_log_migrates_transparently() {
    let path = scratch_path("legacy");
    let workload = Workload {
        segment_bytes: 0,
        commits: 4,
        gc_after: None,
        checkpoint_bytes: 0,
    };
    let (_, oracle_log) = oracle(&workload);
    let mut raw = Vec::new();
    raw.extend_from_slice(&encode_frame(&WalRecord::CreateTable {
        name: "events".into(),
        schema: events_schema(),
    }));
    for entry in &oracle_log {
        raw.extend_from_slice(&encode_frame(&WalRecord::Commit(entry.clone())));
    }
    std::fs::write(&path, &raw).unwrap();

    let (db, report) = Database::open_durable(&path, WalOptions::default()).unwrap();
    assert_eq!(db.log_entries()[..], oracle_log[..]);
    assert_eq!(report.segments, 1);
    assert!(path.is_dir(), "the file became a directory layout");
    assert_eq!(
        std::fs::read(path.join("wal-000000.seg")).unwrap(),
        raw,
        "segment 0 is the old file, byte for byte"
    );

    // The migrated log keeps accepting commits and reopens again.
    let mut txn = db.begin();
    txn.insert("events", row![100i64, 100i64]).unwrap();
    txn.commit().unwrap();
    drop(db);
    let (db, _) = Database::open_durable(&path, WalOptions::default()).unwrap();
    assert_eq!(db.log_entries().len(), oracle_log.len() + 1);
    let _ = std::fs::remove_dir_all(&path);
}

#[derive(Debug, Clone)]
enum Damage {
    /// Truncate the whole persisted image of one file at a fraction.
    Truncate { file: usize, frac: f64 },
    /// Flip one bit of one file.
    BitFlip { file: usize, frac: f64, bit: u8 },
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random workloads at random segment sizes and checkpoint cadences,
    /// damaged at a random point of a random file (checkpoints
    /// included): recovery yields an oracle-equivalent state — a
    /// contiguous oracle history run plus state equal to the oracle's at
    /// the recovered clock — or a typed storage error. Never a panic,
    /// never fabricated state.
    #[test]
    fn recovery_equals_oracle_or_refuses_with_a_typed_error(
        commits in 1i64..16,
        segment_bytes in prop_oneof![Just(0u64), Just(1u64), Just(120u64), Just(4096u64)],
        gc in prop_oneof![Just(None), (0i64..16).prop_map(Some)],
        checkpoint_bytes in prop_oneof![Just(0u64), Just(1u64), Just(200u64)],
        damage in prop_oneof![
            (0usize..8, 0.0f64..1.0).prop_map(|(file, frac)| Damage::Truncate { file, frac }),
            (0usize..8, 0.0f64..1.0, 0u8..8)
                .prop_map(|(file, frac, bit)| Damage::BitFlip { file, frac, bit }),
        ],
    ) {
        let workload = Workload {
            segment_bytes,
            commits,
            gc_after: gc.filter(|g| *g < commits),
            checkpoint_bytes,
        };
        let mem = MemDir::new();
        let dir: Arc<dyn LogDir> = Arc::new(mem.clone());
        let acked = run(&workload, dir);
        prop_assert_eq!(acked.len() as i64, commits);
        let (oracle_db, oracle_log) = oracle(&workload);

        let image = mem.snapshot();
        let mut names = image.names();
        names.sort();
        let (name, mut bytes) = {
            let pick = match &damage {
                Damage::Truncate { file, .. } | Damage::BitFlip { file, .. } => {
                    names[file % names.len()].clone()
                }
            };
            let bytes = image.file(&pick).unwrap();
            (pick, bytes)
        };
        if bytes.is_empty() {
            return Ok(());
        }
        match &damage {
            Damage::Truncate { frac, .. } => {
                let cut = ((bytes.len() as f64) * frac) as usize;
                bytes.truncate(cut);
            }
            Damage::BitFlip { frac, bit, .. } => {
                let i = (((bytes.len() - 1) as f64) * frac) as usize;
                bytes[i] ^= 1 << bit;
            }
        }
        image.put_file(&name, bytes);

        match Database::open_durable_in(Arc::new(image), WalOptions::default()) {
            // Damage may legally lose acknowledged commits (it destroys
            // durable bytes), so the acked floor is not enforced here —
            // only oracle equivalence of whatever state recovery accepts.
            Ok((db, _)) => assert_state_matches_oracle(&db, &oracle_db, &oracle_log, &[], "prop"),
            Err(DbError::Storage(_)) => {} // typed refusal is the other legal outcome
            Err(e) => prop_assert!(false, "untyped error: {e}"),
        }
    }
}
