//! Decision-equivalence of the two serializable validation paths.
//!
//! The commit path validates predicate reads against the per-table change
//! log (O(Δ) in the writes since the transaction began). The original
//! implementation re-scanned every version of every row (O(total
//! versions)). These tests prove the two paths accept and reject exactly
//! the same transactions:
//!
//! * a property test drives an identical, randomly generated interleaved
//!   schedule against two databases — one forced onto the full-scan path —
//!   and requires identical commit outcomes and identical final states,
//!   including schedules that truncate history mid-flight, both through
//!   watermark-clamped GC (validation window survives) and through raw
//!   change-log truncation (exercising the full-scan fallback);
//! * a multi-threaded stress test hammers one database with concurrent
//!   read-modify-write committers and checks the serializability
//!   invariants the validator exists to protect.

use std::collections::BTreeMap;

use proptest::prelude::*;

use trod_db::{row, DataType, Database, DbError, IsolationLevel, Key, Predicate, Schema};

fn kv_schema() -> Schema {
    Schema::builder()
        .column("k", DataType::Int)
        .column("v", DataType::Int)
        .primary_key(&["k"])
        .build()
        .unwrap()
}

fn new_db(full_scan: bool) -> Database {
    let db = Database::new();
    db.create_table("kv", kv_schema()).unwrap();
    db.set_full_scan_validation(full_scan);
    db
}

/// One write in a generated transaction.
#[derive(Debug, Clone)]
enum Write {
    Put { k: i64, v: i64 },
    Delete { k: i64 },
}

/// One read performed by the pending transaction before the concurrent
/// writers commit.
#[derive(Debug, Clone)]
enum Read {
    Get { k: i64 },
    ScanEqV { v: i64 },
    ScanGeK { k: i64 },
    ScanRange { lo: i64, hi: i64 },
}

/// A full generated schedule:
/// 1. `history` transactions commit;
/// 2. the pending transaction begins and performs `reads` then `writes`;
/// 3. `concurrent` transactions commit (with optional mid-flight GC);
/// 4. the pending transaction attempts to commit.
#[derive(Debug, Clone)]
struct Schedule {
    history: Vec<Vec<Write>>,
    reads: Vec<Read>,
    writes: Vec<Write>,
    concurrent: Vec<Vec<Write>>,
    /// Truncate history after this many concurrent commits (if in range).
    gc_after: usize,
    /// How to truncate: `false` runs `gc_before(current_ts)`, which the
    /// active-transaction watermark clamps at the pending transaction's
    /// snapshot (its validation window survives); `true` truncates the
    /// table's change log directly, past the pending snapshot, forcing
    /// the O(Δ) validator onto the full-scan fallback mid-window.
    raw_truncate: bool,
}

fn write_strategy(key_space: i64) -> impl Strategy<Value = Write> {
    prop_oneof![
        (0..key_space, 0..100i64).prop_map(|(k, v)| Write::Put { k, v }),
        (0..key_space).prop_map(|k| Write::Delete { k }),
    ]
}

fn read_strategy(key_space: i64) -> impl Strategy<Value = Read> {
    prop_oneof![
        (0..key_space).prop_map(|k| Read::Get { k }),
        (0..100i64).prop_map(|v| Read::ScanEqV { v }),
        (0..key_space).prop_map(|k| Read::ScanGeK { k }),
        (0..key_space, 0..key_space).prop_map(|(a, b)| Read::ScanRange {
            lo: a.min(b),
            hi: a.max(b),
        }),
    ]
}

fn schedule_strategy() -> impl Strategy<Value = Schedule> {
    let key_space = 12i64;
    (
        prop::collection::vec(prop::collection::vec(write_strategy(key_space), 1..4), 0..6),
        prop::collection::vec(read_strategy(key_space), 1..5),
        prop::collection::vec(write_strategy(key_space), 0..3),
        prop::collection::vec(prop::collection::vec(write_strategy(key_space), 1..4), 0..8),
        0usize..10,
        prop_oneof![Just(false), Just(true)],
    )
        .prop_map(
            |(history, reads, writes, concurrent, gc_after, raw_truncate)| Schedule {
                history,
                reads,
                writes,
                concurrent,
                gc_after,
                raw_truncate,
            },
        )
}

/// Applies one committed write-set transaction (upsert semantics).
fn commit_writes(db: &Database, writes: &[Write]) -> Result<(), DbError> {
    let mut txn = db.begin_with(IsolationLevel::ReadCommitted);
    for w in writes {
        match w {
            Write::Put { k, v } => {
                let key = Key::single(*k);
                if txn.get("kv", &key)?.is_some() {
                    txn.update("kv", &key, row![*k, *v])?;
                } else {
                    txn.insert("kv", row![*k, *v])?;
                }
            }
            Write::Delete { k } => {
                txn.delete("kv", &Key::single(*k))?;
            }
        }
    }
    txn.commit()?;
    Ok(())
}

/// Normalised outcome of the pending transaction's commit, for comparison
/// across the two validation modes.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Outcome {
    Committed,
    SerializationFailure,
    WriteConflict,
    OtherError(String),
}

/// Runs the schedule and returns (outcome, final state).
fn run_schedule(db: &Database, schedule: &Schedule) -> (Outcome, BTreeMap<i64, i64>) {
    for writes in &schedule.history {
        commit_writes(db, writes).unwrap();
    }

    let mut pending = db.begin_with(IsolationLevel::Serializable);
    for read in &schedule.reads {
        match read {
            Read::Get { k } => {
                let _ = pending.get("kv", &Key::single(*k)).unwrap();
            }
            Read::ScanEqV { v } => {
                let _ = pending.scan("kv", &Predicate::eq("v", *v)).unwrap();
            }
            Read::ScanGeK { k } => {
                let _ = pending.scan("kv", &Predicate::ge("k", *k)).unwrap();
            }
            Read::ScanRange { lo, hi } => {
                let pred = Predicate::ge("k", *lo).and(Predicate::le("k", *hi));
                let _ = pending.scan("kv", &pred).unwrap();
            }
        }
    }
    // Buffer the pending writes; constraint errors (e.g. deleting a key
    // that was never visible) are fine to ignore — the scheduled writes
    // are best-effort and identical across both databases.
    for w in &schedule.writes {
        match w {
            Write::Put { k, v } => {
                let key = Key::single(*k);
                let exists = pending.get("kv", &key).unwrap().is_some();
                let result = if exists {
                    pending.update("kv", &key, row![*k, *v]).map(|_| ())
                } else {
                    pending.insert("kv", row![*k, *v]).map(|_| ())
                };
                result.unwrap();
            }
            Write::Delete { k } => {
                pending.delete("kv", &Key::single(*k)).unwrap();
            }
        }
    }

    for (i, writes) in schedule.concurrent.iter().enumerate() {
        commit_writes(db, writes).unwrap();
        if i + 1 == schedule.gc_after {
            if schedule.raw_truncate {
                // Cut the change log (versions untouched) past the pending
                // snapshot: the O(Δ) validator must detect the truncation
                // and fall back to the full version scan.
                db.table("kv")
                    .unwrap()
                    .changelog()
                    .truncate_before(db.current_ts());
            } else {
                // GC request at the current clock; the active-transaction
                // watermark clamps it at the pending snapshot, so the
                // validation window survives and the fast path stays on.
                db.gc_before(db.current_ts());
            }
        }
    }

    let outcome = match pending.commit() {
        Ok(_) => Outcome::Committed,
        Err(DbError::SerializationFailure { .. }) => Outcome::SerializationFailure,
        Err(DbError::WriteConflict { .. }) => Outcome::WriteConflict,
        Err(other) => Outcome::OtherError(other.to_string()),
    };

    let state = db
        .scan_latest("kv", &Predicate::True)
        .unwrap()
        .into_iter()
        .map(|(_, r)| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
        .collect();
    (outcome, state)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The change-log validator and the full-scan validator accept and
    /// reject exactly the same schedules, leaving identical final states.
    #[test]
    fn changelog_validation_is_decision_equivalent_to_full_scan(
        schedule in schedule_strategy()
    ) {
        let fast = new_db(false);
        let slow = new_db(true);
        let (fast_outcome, fast_state) = run_schedule(&fast, &schedule);
        let (slow_outcome, slow_state) = run_schedule(&slow, &schedule);
        prop_assert_eq!(
            &fast_outcome, &slow_outcome,
            "validation decision diverged for {:?}", schedule
        );
        prop_assert_eq!(fast_state, slow_state);
    }

    /// A transaction whose predicates are untouched by concurrent writes
    /// always commits under the O(Δ) path (no spurious aborts from the
    /// change log seeing unrelated rows).
    #[test]
    fn unrelated_concurrent_writes_never_abort(
        touched in prop::collection::vec(0i64..6, 1..6)
    ) {
        let db = new_db(false);
        commit_writes(&db, &[Write::Put { k: 100, v: 1 }]).unwrap();

        let mut pending = db.begin();
        // Reads confined to the high key range.
        let _ = pending.scan("kv", &Predicate::ge("k", 100i64)).unwrap();
        // Concurrent writes confined to the low key range.
        for k in touched {
            commit_writes(&db, &[Write::Put { k, v: 0 }]).unwrap();
        }
        pending.update("kv", &Key::single(100i64), row![100i64, 2i64]).unwrap();
        prop_assert!(pending.commit().is_ok());
    }
}

/// Concurrent committers under the default (change-log) validator: the
/// classic counter increment must never lose an update, and commit
/// timestamps must stay strictly monotone.
#[test]
fn concurrent_increments_never_lose_updates() {
    const THREADS: i64 = 8;
    const INCREMENTS: i64 = 30;

    let db = new_db(false);
    commit_writes(&db, &[Write::Put { k: 0, v: 0 }]).unwrap();

    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let db = db.clone();
            std::thread::spawn(move || {
                for _ in 0..INCREMENTS {
                    loop {
                        let mut txn = db.begin();
                        let current = txn.get("kv", &Key::single(0i64)).unwrap().unwrap()[1]
                            .as_int()
                            .unwrap();
                        txn.update("kv", &Key::single(0i64), row![0i64, current + 1])
                            .unwrap();
                        match txn.commit() {
                            Ok(_) => break,
                            Err(e) if e.is_retryable() => continue,
                            Err(e) => panic!("unexpected error: {e}"),
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let final_value = db.get_latest("kv", &Key::single(0i64)).unwrap().unwrap()[1]
        .as_int()
        .unwrap();
    assert_eq!(
        final_value,
        THREADS * INCREMENTS,
        "no increment may be lost"
    );

    let log = db.log_entries();
    for pair in log.windows(2) {
        assert!(pair[0].commit_ts < pair[1].commit_ts);
    }
}

/// Concurrent committers with *predicate* reads: threads insert into
/// disjoint key ranges while each transaction validates a scan over its
/// own range, so every commit exercises the change-log path under
/// contention for the commit lock. Mid-run GC exercises the fallback.
#[test]
fn concurrent_predicate_committers_with_gc() {
    const THREADS: i64 = 6;
    const PER_THREAD: i64 = 25;

    let db = new_db(false);
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let db = db.clone();
            std::thread::spawn(move || {
                let base = t * 1000;
                for i in 0..PER_THREAD {
                    loop {
                        let mut txn = db.begin();
                        // Predicate read over this thread's own range: the
                        // count must equal the rows inserted so far, which
                        // no other thread can disturb.
                        let seen = txn
                            .scan(
                                "kv",
                                &Predicate::ge("k", base).and(Predicate::lt("k", base + 1000)),
                            )
                            .unwrap()
                            .len();
                        assert_eq!(seen as i64, i, "thread {t} sees its own prefix");
                        txn.insert("kv", row![base + i, t]).unwrap();
                        match txn.commit() {
                            Ok(_) => break,
                            Err(e) if e.is_retryable() => continue,
                            Err(e) => panic!("unexpected error: {e}"),
                        }
                    }
                    if i == PER_THREAD / 2 && t == 0 {
                        // Raise every table's change-log low-water mark in
                        // the middle of the run.
                        db.gc_before(db.current_ts());
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    assert_eq!(
        db.scan_latest("kv", &Predicate::True).unwrap().len() as i64,
        THREADS * PER_THREAD
    );
}
