//! Crash-point and corruption recovery: the WAL's robustness contract.
//!
//! The invariant under test (ISSUE 6): *every acknowledged commit is
//! recovered, no torn commit is ever visible, corruption yields a typed
//! error — never a panic or silently wrong state.* The harness runs a
//! workload against a WAL whose byte stream is captured in memory
//! ([`MemSink`]), then materialises a "crashed" log file from **every**
//! prefix of that stream — each record boundary and each mid-record cut —
//! reopens it with [`Database::open_durable`], and compares the recovered
//! database against an in-memory oracle truncated to the commits whose
//! bytes the crash preserved. A property test drives random workloads,
//! random crash offsets and random single-byte corruptions through the
//! same check.

use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use trod_db::wal::encode_frame;
use trod_db::{
    row, DataType, Database, DbError, MemSink, Predicate, Schema, StorageError, SyncMode, Wal,
    WalOptions,
};

fn table_schema() -> Schema {
    Schema::builder()
        .column("k", DataType::Int)
        .column("v", DataType::Int)
        .primary_key(&["k"])
        .build()
        .unwrap()
}

/// A workload step: a single-row upsert/delete on one of two tables, or a
/// mid-stream DDL statement.
#[derive(Debug, Clone)]
enum Step {
    Put { table: u8, k: i64, v: i64 },
    Delete { table: u8, k: i64 },
    CreateIndex { table: u8 },
}

fn table_name(idx: u8) -> &'static str {
    if idx == 0 {
        "alpha"
    } else {
        "beta"
    }
}

/// Unique scratch path; the crate has no tempfile dependency.
fn scratch_path(tag: &str) -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "trod_wal_recovery_{tag}_{}_{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Materialises a crashed log at `path`: a fresh directory holding
/// `bytes` as segment 0 — the manifest-less layout recovery adopts
/// (and the layout a pre-segmentation file migrates into).
fn write_log_dir(path: &std::path::Path, bytes: &[u8]) {
    let _ = std::fs::remove_dir_all(path);
    std::fs::create_dir_all(path).unwrap();
    std::fs::write(path.join("wal-000000.seg"), bytes).unwrap();
}

struct WorkloadRun {
    /// The full WAL byte stream the workload produced.
    bytes: Vec<u8>,
    /// End offset of every record; a crash at `boundaries[i]` preserves
    /// exactly the first `i + 1` records.
    boundaries: Vec<u64>,
    /// The in-memory oracle that executed the same workload.
    oracle: Database,
}

/// Runs `steps` against a WAL-backed database (capturing the exact byte
/// stream) and against a plain in-memory oracle.
fn run_workload(steps: &[Step]) -> WorkloadRun {
    let sink = MemSink::new();
    let captured = sink.contents();
    let wal = Wal::with_sink(Box::new(sink), WalOptions::default());
    let db = Database::new();
    db.attach_wal(wal);
    let oracle = Database::new();
    for target in [&db, &oracle] {
        target.create_table("alpha", table_schema()).unwrap();
        target.create_table("beta", table_schema()).unwrap();
    }
    for step in steps {
        match step {
            Step::Put { table, k, v } => {
                for target in [&db, &oracle] {
                    let mut txn = target.begin();
                    let table = table_name(*table);
                    if txn.get(table, &trod_db::Key::single(*k)).unwrap().is_some() {
                        txn.update(table, &trod_db::Key::single(*k), row![*k, *v])
                            .unwrap();
                    } else {
                        txn.insert(table, row![*k, *v]).unwrap();
                    }
                    txn.commit().unwrap();
                }
            }
            Step::Delete { table, k } => {
                for target in [&db, &oracle] {
                    let mut txn = target.begin();
                    txn.delete(table_name(*table), &trod_db::Key::single(*k))
                        .unwrap();
                    txn.commit().unwrap();
                }
            }
            Step::CreateIndex { table } => {
                // Idempotence is not required of the workload: only index
                // once per table per run.
                for target in [&db, &oracle] {
                    let _ = target.create_index(table_name(*table), "v");
                }
            }
        }
    }
    let bytes = captured.lock().clone();
    // Recompute record boundaries by re-framing the decoded records —
    // encoding is deterministic, so the frames match byte-for-byte.
    let (records, info) = trod_db::wal::decode_records(&bytes).unwrap();
    assert_eq!(info.truncated_bytes, 0, "live log must be clean");
    let mut boundaries = Vec::with_capacity(records.len());
    let mut at = 0u64;
    for record in &records {
        at += encode_frame(record).len() as u64;
        boundaries.push(at);
    }
    assert_eq!(at, bytes.len() as u64);
    WorkloadRun {
        bytes,
        boundaries,
        oracle,
    }
}

/// Every table row visible at `ts`, sorted, as plain data.
fn state_at(db: &Database, ts: u64) -> Vec<(String, Vec<trod_db::Value>)> {
    let everything = Predicate::ge("k", i64::MIN);
    let mut out = Vec::new();
    for table in db.table_names() {
        for (key, row) in db.scan_as_of(&table, &everything, ts).unwrap() {
            let _ = key;
            out.push((table.clone(), row.values().to_vec()));
        }
    }
    out.sort_by(|a, b| {
        a.0.cmp(&b.0)
            .then_with(|| format!("{:?}", a.1).cmp(&format!("{:?}", b.1)))
    });
    out
}

/// Writes `prefix` to a fresh file, reopens it, and asserts the recovered
/// database equals the oracle truncated to the commits the prefix
/// preserves in full.
fn check_crash_prefix(run: &WorkloadRun, cut: usize, tag: &str) {
    let path = scratch_path(tag);
    write_log_dir(&path, &run.bytes[..cut]);
    let (db, report) = Database::open_durable(&path, WalOptions::default())
        .unwrap_or_else(|e| panic!("cut at {cut}: recovery must succeed, got {e}"));
    // Acknowledged prefix: commits whose full frame fits below the cut.
    let preserved = run.boundaries.iter().filter(|&&b| b <= cut as u64).count();
    let torn_bytes = cut as u64
        - run
            .boundaries
            .iter()
            .rev()
            .find(|&&b| b <= cut as u64)
            .copied()
            .unwrap_or(0);
    assert_eq!(report.truncated_bytes, torn_bytes, "cut at {cut}");

    // The recovered aligned history is verbatim the durable prefix of the
    // oracle's: same ids, same timestamps, same change records.
    let oracle_log = run.oracle.log_entries();
    let recovered_log = db.log_entries();
    let expected_commits: Vec<_> = oracle_log
        .iter()
        .filter(|e| {
            // The i-th record overall may be DDL; count commits among the
            // preserved records via the log itself: a commit is preserved
            // iff its position in the full record stream is < preserved.
            // Commit entries appear in the WAL in commit order, so the
            // recovered log length identifies the prefix.
            e.commit_ts > 0
        })
        .take(recovered_log.len())
        .cloned()
        .collect();
    assert_eq!(
        recovered_log, expected_commits,
        "cut at {cut}: recovered history must be the acked prefix, verbatim"
    );
    assert_eq!(recovered_log.len(), report.commits, "cut at {cut}");
    let _ = preserved;

    // State equivalence: the recovered state equals the oracle as of the
    // last recovered commit (no torn commit visible, none lost).
    let horizon = recovered_log.last().map(|e| e.commit_ts).unwrap_or(0);
    assert_eq!(
        state_at(&db, db.current_ts()),
        state_at(&run.oracle, horizon),
        "cut at {cut}: state must equal the oracle at ts {horizon}"
    );
    assert_eq!(db.current_ts(), horizon, "cut at {cut}: clock restored");
    let _ = std::fs::remove_dir_all(&path);
}

#[test]
fn crash_at_every_byte_of_a_fixed_workload_recovers_the_acked_prefix() {
    let steps = vec![
        Step::Put {
            table: 0,
            k: 1,
            v: 10,
        },
        Step::Put {
            table: 1,
            k: 1,
            v: 20,
        },
        Step::CreateIndex { table: 0 },
        Step::Put {
            table: 0,
            k: 1,
            v: 11,
        },
        Step::Delete { table: 1, k: 1 },
        Step::Put {
            table: 1,
            k: 2,
            v: 22,
        },
    ];
    let run = run_workload(&steps);
    // Every record boundary AND every intermediate byte: torn tails at
    // arbitrary offsets must all land on the last full record.
    for cut in 0..=run.bytes.len() {
        check_crash_prefix(&run, cut, "fixed");
    }
}

#[test]
fn recovered_database_accepts_new_commits_after_the_recovered_prefix() {
    let run = run_workload(&[
        Step::Put {
            table: 0,
            k: 1,
            v: 1,
        },
        Step::Put {
            table: 0,
            k: 2,
            v: 2,
        },
    ]);
    let path = scratch_path("resume");
    write_log_dir(&path, &run.bytes);
    let commit_ts = {
        let (db, report) = Database::open_durable(&path, WalOptions::default()).unwrap();
        assert_eq!(report.commits, 2);
        let mut txn = db.begin();
        txn.insert("alpha", row![3i64, 3i64]).unwrap();
        txn.commit().unwrap().commit_ts
    };
    // A second recovery sees the post-crash commit too — the attached WAL
    // appended it after the recovered prefix.
    let (db, report) = Database::open_durable(&path, WalOptions::default()).unwrap();
    assert_eq!(report.commits, 3);
    assert_eq!(db.current_ts(), commit_ts);
    assert_eq!(
        db.get_latest("alpha", &trod_db::Key::single(3i64))
            .unwrap()
            .unwrap()
            .values()[1],
        trod_db::Value::Int(3)
    );
    let _ = std::fs::remove_dir_all(&path);
}

#[test]
fn corruption_yields_a_typed_error_or_a_clean_prefix_never_a_panic() {
    let run = run_workload(&[
        Step::Put {
            table: 0,
            k: 1,
            v: 1,
        },
        Step::Put {
            table: 1,
            k: 2,
            v: 2,
        },
        Step::Put {
            table: 0,
            k: 3,
            v: 3,
        },
    ]);
    let path = scratch_path("corrupt");
    for i in 0..run.bytes.len() {
        let mut damaged = run.bytes.clone();
        damaged[i] ^= 0xFF;
        write_log_dir(&path, &damaged);
        match Database::open_durable(&path, WalOptions::default()) {
            // Mid-file damage: typed, positioned, retryable=false.
            Err(DbError::Storage(StorageError::Corrupt { offset, .. })) => {
                assert!(offset <= i as u64, "byte {i}");
            }
            Err(e) => panic!("byte {i}: unexpected error kind {e}"),
            // Tail damage: recovered as a strict prefix of the oracle.
            Ok((db, _)) => {
                let log = db.log_entries();
                let oracle_log = run.oracle.log_entries();
                assert!(log.len() < oracle_log.len(), "byte {i}");
                assert_eq!(log[..], oracle_log[..log.len()], "byte {i}");
            }
        }
    }
    let _ = std::fs::remove_dir_all(&path);
}

#[test]
fn ddl_is_durable_in_all_sync_modes() {
    for mode in [SyncMode::Sync, SyncMode::Flush] {
        let path = scratch_path("ddl");
        {
            let db = Database::create_durable(&path, WalOptions::with_sync_mode(mode)).unwrap();
            db.create_table("alpha", table_schema()).unwrap();
            db.create_index("alpha", "v").unwrap();
            db.create_range_index("alpha", "k").unwrap();
            let mut txn = db.begin();
            txn.insert("alpha", row![1i64, 5i64]).unwrap();
            txn.commit().unwrap();
        }
        let (db, report) = Database::open_durable(&path, WalOptions::default()).unwrap();
        assert_eq!((report.tables, report.indexes, report.commits), (1, 2, 1));
        assert_eq!(db.schema_of("alpha").unwrap(), table_schema());
        // The recovered indexes serve reads.
        assert_eq!(
            db.scan_latest("alpha", &Predicate::eq("v", 5i64))
                .unwrap()
                .len(),
            1
        );
        let _ = std::fs::remove_dir_all(&path);
    }
}

#[test]
fn cached_mode_loses_only_the_unflushed_tail() {
    let path = scratch_path("cached");
    {
        let db =
            Database::create_durable(&path, WalOptions::with_sync_mode(SyncMode::Cached)).unwrap();
        db.create_table("alpha", table_schema()).unwrap();
        let mut txn = db.begin();
        txn.insert("alpha", row![1i64, 1i64]).unwrap();
        txn.commit().unwrap();
        // Make the buffered bytes reach the file, then commit one more
        // that stays in the process buffer (the simulated crash drops it).
        db.wal().unwrap().flush().unwrap();
        let mut txn = db.begin();
        txn.insert("alpha", row![2i64, 2i64]).unwrap();
        txn.commit().unwrap();
    }
    let (db, report) = Database::open_durable(&path, WalOptions::default()).unwrap();
    assert_eq!(report.commits, 1, "unflushed cached tail is lost");
    assert!(db
        .get_latest("alpha", &trod_db::Key::single(2i64))
        .unwrap()
        .is_none());
    let _ = std::fs::remove_dir_all(&path);
}

// ---------------------------------------------------------------------
// Property: random workloads × random crash/corruption points
// ---------------------------------------------------------------------

fn step_strategy() -> impl Strategy<Value = Step> {
    // Three put arms to one delete and one DDL arm: histories grow.
    let put = || (0u8..2, 0i64..6, 0i64..100).prop_map(|(table, k, v)| Step::Put { table, k, v });
    prop_oneof![
        put(),
        put(),
        put(),
        (0u8..2, 0i64..6).prop_map(|(table, k)| Step::Delete { table, k }),
        (0u8..2).prop_map(|table| Step::CreateIndex { table }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Crash anywhere: reopen recovers exactly the acknowledged prefix.
    #[test]
    fn recovery_equals_oracle_at_every_crash_point(
        steps in proptest::collection::vec(step_strategy(), 1..14),
        cuts in proptest::collection::vec(0.0f64..1.0, 1..6),
    ) {
        let run = run_workload(&steps);
        // Every record boundary, plus random mid-record offsets.
        for &b in &run.boundaries {
            check_crash_prefix(&run, b as usize, "prop");
        }
        for f in cuts {
            let cut = (f * run.bytes.len() as f64) as usize;
            check_crash_prefix(&run, cut.min(run.bytes.len()), "prop");
        }
    }

    /// Flip any byte: typed error or clean prefix — never a panic, never
    /// a wrong state.
    #[test]
    fn corruption_never_panics_and_never_fabricates_state(
        steps in proptest::collection::vec(step_strategy(), 1..10),
        flips in proptest::collection::vec((0.0f64..1.0, 0u8..8), 1..5),
    ) {
        let run = run_workload(&steps);
        prop_assume!(!run.bytes.is_empty());
        let path = scratch_path("propcorrupt");
        for (pos, bit) in flips {
            let mut damaged = run.bytes.clone();
            let i = ((pos * damaged.len() as f64) as usize).min(damaged.len() - 1);
            damaged[i] ^= 1 << bit;
            write_log_dir(&path, &damaged);
            match Database::open_durable(&path, WalOptions::default()) {
                Err(DbError::Storage(StorageError::Corrupt { .. })) => {}
                Err(e) => panic!("unexpected error kind {e}"),
                Ok((db, _)) => {
                    let log = db.log_entries();
                    let oracle_log = run.oracle.log_entries();
                    prop_assert!(log.len() <= oracle_log.len());
                    prop_assert_eq!(&log[..], &oracle_log[..log.len()]);
                }
            }
        }
        let _ = std::fs::remove_dir_all(&path);
    }
}
