//! # trod
//!
//! Facade crate for the TROD reproduction (*Transactions Make Debugging
//! Easy*, CIDR 2023). It re-exports every component crate under one
//! dependency and provides a [`prelude`] with the items most programs
//! need:
//!
//! * [`db`] — the transactional storage engine (MVCC, strict
//!   serializability, transaction log, CDC, time travel).
//! * [`kv`] — the versioned key-value store and cross-data-store
//!   transaction manager with aligned logs (paper §5).
//! * [`query`] — the SQL engine used for declarative debugging.
//! * [`trace`] — the always-on tracing interposition layer.
//! * [`provenance`] — the provenance database.
//! * [`runtime`] — the serverless-style application runtime.
//! * [`core`] — the TROD debugger: declarative debugging, bug replay,
//!   retroactive programming, security forensics.
//! * [`apps`] — the paper's case-study applications (Moodle, MediaWiki,
//!   e-commerce, user profiles) and workload generators.
//! * [`server`] — the HTTP/1.1 + JSON-RPC network front-end with remote
//!   forkable debug sessions, dump/load, and fork-from-instance.
//!
//! ```
//! use trod::prelude::*;
//! use trod::apps::moodle;
//!
//! // Reproduce the paper's running example end to end.
//! let scenario = moodle::toctou_scenario();
//! let error = scenario.run();
//! assert!(error.is_some(), "the Moodle bug manifests under the racy schedule");
//! scenario.sync_provenance();
//!
//! // Declarative debugging: the paper's §3.3 query.
//! let result = scenario
//!     .provenance
//!     .query(
//!         "SELECT Timestamp, ReqId, HandlerName \
//!          FROM Executions as E, ForumEvents as F ON E.TxnId = F.TxnId \
//!          WHERE F.user_id = 'U1' AND F.forum = 'F2' AND F.Type = 'Insert' \
//!          ORDER BY Timestamp ASC",
//!     )
//!     .unwrap();
//! assert_eq!(result.len(), 2);
//! ```

pub use trod_apps as apps;
pub use trod_core as core;
pub use trod_db as db;
pub use trod_db::{TrodError, TrodResult};
pub use trod_kv as kv;
pub use trod_provenance as provenance;
pub use trod_query as query;
pub use trod_runtime as runtime;
pub use trod_server as server;
pub use trod_trace as trace;

/// The most commonly used items, re-exported for convenience.
pub mod prelude {
    pub use trod_core::{
        Declarative, Invariant, Perf, Quality, QualityRule, Reenactor, ReplaySession,
        RetroactiveBuilder, RetroactiveReport, Security, Trod,
    };
    pub use trod_db::{
        row, DataType, Database, DbError, IsolationLevel, Key, Predicate, Row, Schema,
        StorageProfile, Value,
    };
    pub use trod_kv::{KvStore, Session, Txn, TxnCommit, TxnOptions};
    pub use trod_provenance::ProvenanceStore;
    pub use trod_query::{QueryEngine, ResultSet};
    pub use trod_runtime::{
        Args, HandlerContext, HandlerError, HandlerRegistry, Runtime, Scheduler,
    };
    pub use trod_trace::{Tracer, TxnContext};
}
